#!/usr/bin/env python3
"""Chain-length sweep: what fault-tolerance costs a sequencer (§7.1).

The paper's Figure 3 argument in one runnable story: making a *sequencer*
fault-tolerant means chain replication, and every request then traverses
every node of the chain — so the penalty grows with the chain and reaches
~33% at the standard 3-node deployment.  Making *Eunomia* fault-tolerant
(Algorithm 4) costs ~9% regardless of replica count, because replicas
never coordinate: partitions stream to all of them and the leader's only
extra work is acknowledgements.

This example sweeps ``chain_length`` over the chain-replicated sequencer
rig (1 = plain sequencer), prints the saturated-throughput curve next to
the Eunomia FT comparison, and *asserts* the paper shapes:

* the 3-node chain pays a ~33% penalty (asserted within 20–45%);
* the penalty lands as soon as the sequencer is chained and *plateaus*
  with further nodes — chain stages pipeline, so extra nodes add
  assignment latency rather than more throughput loss;
* FT-Eunomia's penalty stays under a third of the chain's.

Run:
    python examples/chain_penalty.py
"""

from repro import Calibration, EunomiaConfig
from repro.harness.loadgen import build_eunomia_rig, build_sequencer_rig

N_CLIENTS = 60          # enough closed-loop drivers to saturate the service
DURATION = 1.5          # seconds at saturation (overhead only shows there)
SEED = 31
CHAIN_LENGTHS = (1, 2, 3, 4)


def sequencer_sweep(cal: Calibration) -> dict[int, float]:
    results = {}
    for length in CHAIN_LENGTHS:
        rig = build_sequencer_rig(N_CLIENTS, chain_length=length,
                                  calibration=cal, seed=SEED)
        rig.run(DURATION)
        results[length] = rig.throughput()
    return results


def eunomia_pair(cal: Calibration) -> tuple[float, float]:
    base = build_eunomia_rig(N_CLIENTS, config=EunomiaConfig(),
                             calibration=cal, seed=SEED)
    base.run(DURATION)
    ft = build_eunomia_rig(
        N_CLIENTS,
        config=EunomiaConfig(fault_tolerant=True, n_replicas=3),
        calibration=cal, seed=SEED)
    ft.run(DURATION)
    return base.throughput(), ft.throughput()


def main() -> None:
    cal = Calibration()
    sweep = sequencer_sweep(cal)
    plain = sweep[1]

    print(f"sequencer chain-length sweep ({N_CLIENTS} clients, "
          f"{DURATION:.1f}s at saturation):")
    print(f"  {'chain':>5}  {'ops/s':>10}  {'vs plain':>8}")
    for length, thpt in sweep.items():
        ratio = thpt / plain
        bar = "#" * int(ratio * 40)
        label = "plain" if length == 1 else f"{length}-FT"
        print(f"  {label:>5}  {thpt:10.0f}  {ratio:7.1%}  {bar}")

    penalty3 = 1.0 - sweep[3] / plain
    print(f"\n3-node chain penalty    : {penalty3:.1%} (paper §7.1: ~33%)")

    eun_base, eun_ft = eunomia_pair(cal)
    eun_penalty = 1.0 - eun_ft / eun_base
    print(f"Eunomia 3-replica FT    : {eun_penalty:.1%} of its own non-FT "
          "baseline (paper: ~9%, replica-count independent)")

    # Paper shapes, asserted so CI catches a regression in either rig.
    assert 0.20 < penalty3 < 0.45, (
        f"3-node chain penalty {penalty3:.1%} outside the ~33% paper band")
    for length in CHAIN_LENGTHS[1:]:
        penalty = 1.0 - sweep[length] / plain
        # every chained variant pays the full replication toll, and the
        # stages pipeline: lengthening the chain must not cost more
        # throughput (it costs assignment latency instead)
        assert abs(penalty - penalty3) < 0.05, (
            f"{length}-node chain penalty {penalty:.1%} should plateau "
            f"near the 3-node {penalty3:.1%}")
    assert eun_penalty < penalty3 / 3, (
        f"FT-Eunomia penalty {eun_penalty:.1%} should be a small fraction "
        f"of the chain's {penalty3:.1%}")
    print("\npaper shapes held: ~33% penalty from the first chained node "
          "(pipelined stages plateau), cheap Eunomia FT")


if __name__ == "__main__":
    main()
