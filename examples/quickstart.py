#!/usr/bin/env python3
"""Quickstart: a 3-datacenter EunomiaKV deployment in ~20 lines.

Builds the paper's deployment (3 DCs over the Virginia/Oregon/Ireland RTT
matrix, 8 partitions and a handful of client sessions per DC), runs a
read-heavy workload for a few simulated seconds, and prints throughput,
remote-update visibility, and the convergence check.

Run:
    python examples/quickstart.py
"""

from repro import GeoSystemSpec, WorkloadSpec, build_system
from repro.metrics import percentile


def main() -> None:
    spec = GeoSystemSpec(n_dcs=3, partitions_per_dc=8, clients_per_dc=8,
                         seed=2026)
    workload = WorkloadSpec(read_ratio=0.9, n_keys=1000, value_bytes=100)

    system = build_system("eunomia", spec, workload)
    print("running 5 simulated seconds of EunomiaKV ...")
    system.run(duration=5.0)

    print(f"aggregate throughput : {system.total_throughput():8.0f} ops/s "
          f"(x{spec.calibration.throughput_scale():.0f} for paper scale)")
    for dc in range(spec.n_dcs):
        print(f"  dc{dc + 1} throughput    : "
              f"{system.dc_throughput(dc):8.0f} ops/s")

    extras = system.visibility_extra_ms(0, 1)
    print(f"visibility dc1->dc2  : p50 {percentile(extras, 50):5.1f} ms, "
          f"p95 {percentile(extras, 95):5.1f} ms extra "
          f"(paper: ~95% within 15 ms)")

    print("quiescing and checking convergence ...")
    system.quiesce(drain=3.0)
    print(f"all datacenters converged: {system.converged()}")


if __name__ == "__main__":
    main()
