#!/usr/bin/env python3
"""Failover drill: killing Eunomia replicas under live traffic.

Deploys EunomiaKV with a 3-replica fault-tolerant Eunomia in every
datacenter, then crashes dc1's leader replica — twice — while clients keep
writing.  The drill shows the paper's §3.3 story end to end:

* partitions keep streaming updates to *all* replicas (prefix property),
  so nothing is lost when a leader dies;
* the Ω failure detector elects the next replica, which resumes the site
  stabilization procedure from its own state;
* remote datacenters deduplicate the overlap the new leader re-ships;
* after quiescence, every datacenter converges to identical data and the
  recorded history passes the causal-consistency checker.

Act 2 repeats the drill for the *sharded* composition (Alg. 4 × K): each
datacenter runs a K=4-sharded stabilizer replicated across 3
ShardedReplicaGroups, and dc1's whole leader group (coordinator + 4
shards) is killed mid-run.  The drill then *asserts* that no stable op
was lost or duplicated at any remote site: every remote receiver must
have applied exactly one copy of every update committed elsewhere — a
duplicate apply would push the count over, a lost op would leave it
under — on top of convergence and the causal checker.

Act 3 goes beyond crash-stop: the K=4 × R=3 leader group is killed with
**state loss** (`crash(lose_state=True)`) — its unstable buffers,
PartitionTime, and merge queues are gone — and later *rejoins* through
the durability subsystem (`durability="wal"`): checkpoint + WAL-suffix
replay rebuilds each shard, a peer state transfer adopts the survivors'
shipped floors, and only then does the group re-enter the Ω election and
reclaim leadership.  The drill asserts the deduplicated stable stream is
**op-for-op identical** to a crash-free run of the same workload.

Run:
    python examples/failover_drill.py
"""

from repro import Calibration, EunomiaConfig, GeoSystemSpec, WorkloadSpec
from repro.checker import CausalChecker, SessionHistory
from repro.geo import build_geo_system
from repro.harness.loadgen import build_eunomia_rig
from repro.metrics import windowed_rate


def act1_unsharded() -> None:
    config = EunomiaConfig(
        fault_tolerant=True, n_replicas=3,
        replica_alive_interval=0.25, replica_suspect_timeout=0.8,
    )
    spec = GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=6,
                         seed=1717)
    history = SessionHistory()
    system = build_geo_system("eunomia", spec,
                              WorkloadSpec(read_ratio=0.75),
                              config=config, history=history)
    system.start()

    replicas = system.datacenters[0].eunomia_replicas
    print(f"dc1 Eunomia group: {[r.name for r in replicas]}")
    system.env.loop.schedule_at(4.0, replicas[0].crash)
    system.env.loop.schedule_at(10.0, replicas[1].crash)
    print("crashing dc1's leader at t=4s and its successor at t=10s ...\n")

    system.run(16.0)
    system.quiesce(4.0)

    marks = system.metrics.mark_times(replicas[0].stable_mark)
    print("dc1 stabilization throughput (2 s windows):")
    for t, rate in windowed_rate(marks, 0.0, 16.0, 2.0):
        leader = "r0" if t < 4 else ("r1" if t < 10 else "r2")
        bar = "#" * int(rate / 40)
        print(f"  t={t:5.1f}s  {rate:7.1f} ops/s  [{leader}] {bar}")

    survivor = replicas[2]
    print(f"\nfinal dc1 leader        : {survivor.name} "
          f"(is_leader={survivor.is_leader()})")
    print(f"ops stabilized by group : "
          f"{sum(r.ops_stabilized for r in replicas)}")
    print(f"datacenters converged   : {system.converged()}")
    violations = CausalChecker(history).check()
    print(f"causal violations       : {len(violations)} "
          f"over {history.total_ops} client ops")


def act2_sharded() -> None:
    """Alg. 4 × K: kill a whole K=4-sharded leader replica group."""
    config = EunomiaConfig(
        n_shards=4, n_replicas=3, fault_tolerant=True,
        replica_alive_interval=0.25, replica_suspect_timeout=0.8,
    )
    spec = GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=6,
                         seed=2727)
    history = SessionHistory()
    system = build_geo_system("eunomia", spec,
                              WorkloadSpec(read_ratio=0.75),
                              config=config, history=history)
    system.start()

    dc0 = system.datacenters[0]
    groups = dc0.replica_groups
    print(f"dc1 sharded Eunomia groups: {[g.name for g in groups]} "
          f"(K=4 shards each)")
    system.env.loop.schedule_at(4.0, groups[0].crash)
    print("crashing dc1's whole leader group (coordinator + 4 shards) "
          "at t=4s ...\n")

    system.run(10.0)
    system.quiesce(4.0)

    marks = system.metrics.mark_times(groups[0].stable_mark)
    print("dc1 stabilization throughput (2 s windows):")
    for t, rate in windowed_rate(marks, 0.0, 10.0, 2.0):
        leader = "g0" if t < 4 else "g1"
        bar = "#" * int(rate / 40)
        print(f"  t={t:5.1f}s  {rate:7.1f} ops/s  [{leader}] {bar}")

    print(f"\nfinal dc1 leader        : {dc0.leader().name} "
          f"(group 1 leads: {groups[1].is_leader()})")
    print(f"datacenters converged   : {system.converged()}")
    violations = CausalChecker(history).check()
    print(f"causal violations       : {len(violations)} "
          f"over {history.total_ops} client ops")

    # The drill's contract: exactly-once delivery of the stable stream.
    # Every remote receiver must have applied each update committed in the
    # other datacenters exactly once, leader crash or not.
    for dc in system.datacenters:
        expected = sum(p.local_updates
                       for other in system.datacenters if other is not dc
                       for p in other.partitions)
        applied = dc.receiver.applied
        status = "ok" if applied == expected else "MISMATCH"
        print(f"dc{dc.dc_id + 1} remote applies     : {applied} "
              f"(expected {expected}, "
              f"{dc.receiver.duplicates_dropped} re-shipped dups dropped) "
              f"[{status}]")
        assert applied == expected, (
            f"dc{dc.dc_id}: {applied} applied vs {expected} committed "
            "remotely — a stable op was lost or duplicated")
    assert system.converged() and not violations
    print("exactly-once contract held: no stable op lost or duplicated")


def act3_amnesia_rejoin() -> None:
    """Kill the K=4 x R=3 leader group *with state loss*, then rejoin it.

    Two runs of the same seeded workload on the §7.1 rig: a crash-free
    reference, and one where the leader group suffers an amnesia crash at
    t=0.6s and rejoins at t=1.4s via WAL replay + peer state transfer.
    The contract asserted: the deduplicated delivered stable stream is
    op-for-op identical to the reference — durable recovery changes
    availability, never the serialization.
    """
    config = EunomiaConfig(
        n_shards=4, n_replicas=3, fault_tolerant=True,
        durability="wal", checkpoint_interval=0.25,
        replica_alive_interval=0.1, replica_suspect_timeout=0.35,
        state_transfer_timeout=0.3,
    )
    cal = Calibration()

    def collect(crash: bool):
        rig = build_eunomia_rig(8, config=config, calibration=cal, seed=4747)
        rig.sink.record = True
        if crash:
            group = rig.groups[0]
            rig.env.loop.schedule_at(
                0.6, lambda: group.crash(lose_state=True))
            rig.env.loop.schedule_at(1.4, group.rejoin)
        rig.run(2.4)
        for driver in rig.drivers:
            driver.stop()
        rig.env.run(until=rig.env.now + 1.6)   # drain + heartbeats stabilize
        return rig

    reference = collect(False)
    rig = collect(True)

    group = rig.groups[0]
    print("dc1 leader group: amnesia crash at t=0.6s, rejoin at t=1.4s")
    for report in rig.groups[0].recovery.reports:
        print(f"  restored {report.name}: {report.records_replayed} WAL "
              f"records -> {report.ops_rebuilt} buffered ops, floor "
              f"{report.floor} (checkpoint: {report.had_checkpoint})")
    shard = group.shards[0]
    print(f"  {shard.name} WAL: {shard.wal.commits} group commits, "
          f"{shard.wal.records_truncated} records truncated at checkpoints, "
          f"{shard.checkpoints.writes} checkpoints")

    seen, deduped = set(), []
    for uid in rig.sink.collected:            # Alg. 5 dedup, first copy wins
        if uid not in seen:
            seen.add(uid)
            deduped.append(uid)
    dups = len(rig.sink.collected) - len(deduped)
    print(f"\nstable stream: {len(deduped)} unique ops delivered "
          f"({dups} re-shipped duplicates dropped)")
    print(f"restored group leads    : {group.is_leader()}")
    assert group.is_leader(), "rejoined lowest-id group must reclaim Omega"
    assert deduped == reference.sink.collected, (
        "amnesia crash + rejoin changed the stable serialization")
    print("op-for-op contract held: deduplicated stable output identical "
          "to the crash-free run")


def act4_partition_and_gray_disk() -> None:
    """Chaos-style drill: isolate the Ω leader group (no crash — it keeps
    believing it leads), and degrade a survivor shard's WAL disk 20× for
    the same window.  The partitioned leader ships nothing; the survivors
    elect group 1, which stabilizes on through stalled group commits; the
    drivers' at-least-once uplinks re-deliver everything the old leader
    missed once the partition heals, and Ω's min-id tie-break hands
    leadership back.  Asserted: failover is bounded (stabilization resumes
    well inside one suspect window after the cut) and the deduplicated
    stable stream is op-for-op identical to a fault-free run.
    """
    from repro.sim.failure import FailureSchedule

    config = EunomiaConfig(
        n_shards=4, n_replicas=3, fault_tolerant=True,
        durability="wal", checkpoint_interval=0.25,
        replica_alive_interval=0.1, replica_suspect_timeout=0.35,
        state_transfer_timeout=0.3,
    )
    cal = Calibration()
    CUT, HEAL = 0.6, 1.4

    def collect(faulty: bool):
        rig = build_eunomia_rig(8, config=config, calibration=cal, seed=5757)
        rig.sink.record = True
        if faulty:
            leader = rig.groups[0]
            rest = [p for g in rig.groups[1:] for p in g.processes()]
            rest += list(rig.drivers) + [rig.sink]
            gray = rig.groups[1].shards[0].wal.disk
            fs = FailureSchedule(rig.env)
            fs.partition_at(CUT, leader.processes(), rest)
            fs.degrade_disk_at(CUT, gray, factor=20.0)
            fs.heal_at(HEAL, leader.processes(), rest)
            fs.restore_disk_at(HEAL, gray)
            fs.arm()
        rig.run(2.4)
        for driver in rig.drivers:
            driver.stop()
        rig.env.run(until=rig.env.now + 1.6)
        return rig

    reference = collect(False)
    rig = collect(True)
    leader = rig.groups[0]

    print(f"dc1 leader group isolated on [{CUT}s, {HEAL}s); "
          f"{rig.groups[1].shards[0].wal.name} disk 20x slower meanwhile")
    # Bounded failover: the longest stabilization stall anywhere in the
    # fault window (the isolated leader drains its buffer, then the site
    # is silent until the survivors' Ω suspects it and group 1 takes over).
    marks = [t for t in rig.metrics.mark_times("eunomia_stable:dc0")
             if CUT <= t <= HEAL]
    stall = max(b - a for a, b in zip([CUT] + marks, marks + [HEAL]))
    print(f"longest stabilization stall in the window: {stall:.3f}s "
          f"(suspect timeout {config.replica_suspect_timeout}s)")
    assert stall < 2 * config.replica_suspect_timeout, (
        "failover after leader isolation was not bounded")

    seen, deduped = set(), []
    for uid in rig.sink.collected:
        if uid not in seen:
            seen.add(uid)
            deduped.append(uid)
    dups = len(rig.sink.collected) - len(deduped)
    print(f"stable stream           : {len(deduped)} unique ops "
          f"({dups} re-shipped duplicates dropped)")
    print(f"healed group leads      : {leader.is_leader()}")
    assert leader.is_leader(), "healed min-id group must reclaim Omega"
    assert deduped == reference.sink.collected, (
        "partition + gray disk changed the stable serialization")
    print("exactly-once contract held: stream identical to the "
          "fault-free run")


def main() -> None:
    print("=== Act 1: Algorithm 4 failover (K=1, 3 replicas) ===")
    act1_unsharded()
    print("\n=== Act 2: sharded failover (Alg. 4 x K=4, 3 replica groups) "
          "===")
    act2_sharded()
    print("\n=== Act 3: amnesia crash -> WAL/checkpoint rejoin "
          "(K=4 x R=3, durability='wal') ===")
    act3_amnesia_rejoin()
    print("\n=== Act 4: leader-group partition + gray disk "
          "(chaos-style, no crash) ===")
    act4_partition_and_gray_disk()


if __name__ == "__main__":
    main()
