#!/usr/bin/env python3
"""Failover drill: killing Eunomia replicas under live traffic.

Deploys EunomiaKV with a 3-replica fault-tolerant Eunomia in every
datacenter, then crashes dc1's leader replica — twice — while clients keep
writing.  The drill shows the paper's §3.3 story end to end:

* partitions keep streaming updates to *all* replicas (prefix property),
  so nothing is lost when a leader dies;
* the Ω failure detector elects the next replica, which resumes the site
  stabilization procedure from its own state;
* remote datacenters deduplicate the overlap the new leader re-ships;
* after quiescence, every datacenter converges to identical data and the
  recorded history passes the causal-consistency checker.

Run:
    python examples/failover_drill.py
"""

from repro import EunomiaConfig, GeoSystemSpec, WorkloadSpec
from repro.checker import CausalChecker, SessionHistory
from repro.geo import build_eunomia_system
from repro.metrics import windowed_rate


def main() -> None:
    config = EunomiaConfig(
        fault_tolerant=True, n_replicas=3,
        replica_alive_interval=0.25, replica_suspect_timeout=0.8,
    )
    spec = GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=6,
                         seed=1717)
    history = SessionHistory()
    system = build_eunomia_system(spec, WorkloadSpec(read_ratio=0.75),
                                  config=config, history=history)
    system.start()

    replicas = system.datacenters[0].eunomia_replicas
    print(f"dc1 Eunomia group: {[r.name for r in replicas]}")
    system.env.loop.schedule_at(4.0, replicas[0].crash)
    system.env.loop.schedule_at(10.0, replicas[1].crash)
    print("crashing dc1's leader at t=4s and its successor at t=10s ...\n")

    system.run(16.0)
    system.quiesce(4.0)

    marks = system.metrics.mark_times(replicas[0].stable_mark)
    print("dc1 stabilization throughput (2 s windows):")
    for t, rate in windowed_rate(marks, 0.0, 16.0, 2.0):
        leader = "r0" if t < 4 else ("r1" if t < 10 else "r2")
        bar = "#" * int(rate / 40)
        print(f"  t={t:5.1f}s  {rate:7.1f} ops/s  [{leader}] {bar}")

    survivor = replicas[2]
    print(f"\nfinal dc1 leader        : {survivor.name} "
          f"(is_leader={survivor.is_leader()})")
    print(f"ops stabilized by group : "
          f"{sum(r.ops_stabilized for r in replicas)}")
    print(f"datacenters converged   : {system.converged()}")
    violations = CausalChecker(history).check()
    print(f"causal violations       : {len(violations)} "
          f"over {history.total_ops} client ops")


if __name__ == "__main__":
    main()
