#!/usr/bin/env python3
"""Protocol shootout: every system from the paper on one workload.

Runs the identical deployment and 90:10 workload under all six protocols —
eventual consistency, EunomiaKV, GentleRain, Cure, S-Seq, and A-Seq — and
prints the throughput / visibility / client-latency triangle the paper's
evaluation revolves around.  One table, the whole tradeoff space.

Every protocol is a :class:`~repro.core.protocols.ProtocolSpec` plugin
deployed through the one ``build_geo_system`` spine, so the comparison is
protocol-only by construction.  Self-asserting (runs as a CI smoke job):
the simulation is deterministic, so the paper's qualitative shapes —
Eunomia within a few % of eventual, the sequencer tax, GentleRain's
far-DC visibility floor vs S-Seq's near-optimal shipping — must hold
exactly on every machine.

Run:
    python examples/protocol_shootout.py
"""

from repro import GeoSystemSpec, WorkloadSpec, build_system
from repro.core.protocols import PROTOCOL_ORDER, available_protocols
from repro.harness.report import format_table
from repro.metrics import percentile

#: eventual goes first: it is the normalization baseline.
ORDER = PROTOCOL_ORDER


def main() -> None:
    assert set(ORDER) == set(available_protocols()), \
        "a registered protocol is missing from the shootout"
    spec = GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=8,
                         seed=4242)
    workload = WorkloadSpec(read_ratio=0.9, n_keys=1000)
    print(f"3 DCs x {spec.partitions_per_dc} partitions, "
          f"{workload.ratio_label()} uniform workload, 6 s runs\n")

    rows = []
    baseline = None
    thpt_by, vis_by = {}, {}
    for protocol in ORDER:
        system = build_system(protocol, spec, workload)
        system.run(6.0)
        thpt = system.total_throughput()
        if protocol == "eventual":
            baseline = thpt
        extras = system.visibility_extra_ms(0, 1)
        update_lat = system.metrics.sample_values("latency_ms:update")
        system.quiesce(3.0)
        thpt_by[protocol] = thpt
        vis_by[protocol] = extras
        assert system.converged(), f"{protocol} failed to converge"
        rows.append([
            protocol,
            round(thpt),
            f"{(thpt - baseline) / baseline * 100:+.1f}%",
            round(percentile(extras, 90), 1) if extras else "-",
            round(percentile(update_lat, 50), 2),
            "yes" if system.converged() else "NO",
        ])

    # The paper's qualitative shapes, asserted (deterministic simulation:
    # these hold bit-identically on every machine or not at all):
    assert thpt_by["eunomia"] > 0.85 * thpt_by["eventual"], \
        "Eunomia must stay within a few % of the eventual yardstick"
    assert thpt_by["sseq"] < thpt_by["eunomia"], \
        "the synchronous sequencer must pay its critical-path tax"
    assert thpt_by["aseq"] > thpt_by["sseq"], \
        "A-Seq exists to show S-Seq's tax is the waiting"
    assert min(vis_by["gentlerain"]) > 30.0, \
        "GentleRain's GST must be floored by the farthest DC"
    assert percentile(vis_by["sseq"], 90) < 10.0, \
        "sequencer shipping must stay near-optimal in visibility"
    assert percentile(vis_by["cure"], 90) < percentile(vis_by["gentlerain"],
                                                       90), \
        "Cure's vector must beat the scalar GST on the near pair"

    print(format_table(
        ["system", "ops/s", "vs eventual", "vis p90 (ms)",
         "update p50 (ms)", "converged"],
        rows,
    ))
    print(
        "\nreading the table:"
        "\n  * eventual    — fastest, but promises nothing about ordering"
        "\n  * eunomia     — within a few % of eventual AND near-best"
        " visibility: the paper's headline"
        "\n  * gentlerain  — cheap metadata, visibility floored by the"
        " farthest DC (~40 ms false dependencies)"
        "\n  * cure        — better visibility than GentleRain, paid for"
        " in per-op vector overhead"
        "\n  * sseq        — near-optimal visibility, but the synchronous"
        " sequencer taxes every update"
        "\n  * aseq        — shows S-Seq's tax is purely the waiting"
        " (same work, off the critical path; not causally safe)"
    )


if __name__ == "__main__":
    main()
