#!/usr/bin/env python3
"""Straggler analysis: the cost of Eunomia's minimum, visualized.

Eunomia ships an update only when *every* local partition has reported a
higher timestamp — so one partition that contacts the service rarely drags
the whole datacenter's visibility down (the paper's §7.2.3).  A sequencer
has no such minimum, but pays differently: the straggling partition's own
clients wait on the sequencer round-trip in their critical path.

This script injects a straggler into dc3 for the middle third of the run
and plots (as ASCII) the p90 visibility of dc3's updates at dc2, plus the
client-side update latency at the straggler partition under S-Seq.

Run:
    python examples/straggler_analysis.py
"""

from repro import GeoSystemSpec, WorkloadSpec, build_system
from repro.metrics import windowed_points
from repro.sim.failure import FailureSchedule, Straggler

PHASE = 8.0          # healthy / straggling / healed, seconds each
STRAGGLE = 0.25      # the sick partition reports every 250 ms, not 1 ms
ORIGIN, DEST = 2, 1  # measure dc3-origin updates at dc2


def ascii_plot(series, width=60, height_label="ms"):
    if not series:
        print("  (no samples)")
        return
    top = max(v for _, v in series)
    for t, v in series:
        bar = "#" * max(1, int(v / top * width)) if top else ""
        print(f"  t={t:5.1f}s {v:8.1f} {height_label} {bar}")


def healthy_visibility(system, n_partitions):
    """dc3→dc2 visibility of updates born on the *healthy* partitions.

    The straggler's own updates are late under any protocol (their metadata
    is, by definition, reported late); the paper's claim is about collateral
    damage to everyone else's updates.
    """
    merged = []
    for index in range(1, n_partitions):
        merged.extend(system.metrics.point_series(
            f"vis_extra_ms:{ORIGIN}->{DEST}:p{index}"))
    merged.sort(key=lambda tv: tv[0])
    return merged


def main() -> None:
    spec = GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=6,
                         seed=99)
    workload = WorkloadSpec(read_ratio=0.9, n_keys=500)
    duration = 3 * PHASE

    print(f"EunomiaKV: dc3 partition 0 straggles "
          f"(reports every {STRAGGLE * 1e3:.0f} ms) "
          f"for t in [{PHASE:.0f}s, {2 * PHASE:.0f}s)\n")
    system = build_system("eunomia", spec, workload)
    schedule = FailureSchedule(system.env)
    straggler = system.datacenters[ORIGIN].partitions[0]
    Straggler(straggler, start=PHASE, end=2 * PHASE,
              straggle_interval=STRAGGLE).arm(schedule)
    schedule.arm()
    system.run(duration)

    series = healthy_visibility(system, spec.partitions_per_dc)
    print("p90 extra visibility of healthy-partition dc3 updates at dc2:")
    ascii_plot(windowed_points(series, 0, duration, 1.0, agg="p90"))

    print("\nS-Seq under the same fault (slow partition->sequencer link):")
    system = build_system("sseq", spec, workload)
    partition = system.datacenters[ORIGIN].partitions[0]
    network = system.env.network
    schedule = FailureSchedule(system.env)
    schedule.at(PHASE, lambda: network.set_link_extra_delay(
        partition, partition.sequencer, STRAGGLE), "straggle link")
    schedule.at(2 * PHASE, lambda: network.set_link_extra_delay(
        partition, partition.sequencer, 0.0), "heal link")
    schedule.arm()
    system.run(duration)

    vis = healthy_visibility(system, spec.partitions_per_dc)
    print("p90 extra visibility of healthy-partition updates "
          "(unaffected — no datacenter minimum):")
    ascii_plot(windowed_points(vis, 0, duration, 1.0, agg="p90"))

    lat = system.metrics.point_series(f"latency_ms:update:dc{ORIGIN}")
    print("\np90 dc3 client update latency (the sequencer tax):")
    ascii_plot(windowed_points(lat, 0, duration, 1.0, agg="p90"))

    print("\ntakeaway: Eunomia degrades gracefully and invisibly to clients;"
          "\na sequencer keeps remote visibility pristine but makes the"
          "\nstraggler's own clients wait — in their critical path.")


if __name__ == "__main__":
    main()
