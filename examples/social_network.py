#!/usr/bin/env python3
"""Why causality matters: a geo-replicated social feed.

The classic three-datacenter anomaly (COPS' motivating example):

* **Alice** (dc2) posts.
* **Bob** (dc1) sees the post ~40 ms later and replies.
* **Carol** (dc3) is 100 ms from Alice but only 40 ms from Bob — so under
  eventual consistency Bob's *reply* arrives at Carol's datacenter tens of
  milliseconds **before** the post it answers.  Carol sees an orphaned
  comment.

EunomiaKV's receiver (Alg. 5) holds Bob's comment until its causal
dependency — Alice's post, named in the comment's vector timestamp — has
been applied locally, so the anomaly is impossible by construction.

This script drives both systems through the same scenario and counts
orphaned comments Carol actually observes.

Run:
    python examples/social_network.py
"""

from repro import GeoSystemSpec, WorkloadSpec, build_system
from repro.core.messages import ClientRead, ClientUpdate
from repro.sim.latency import RttMatrix
from repro.sim.process import Process

#: dc1<->dc2 and dc1<->dc3 are 80 ms apart; dc2<->dc3 is a slow 200 ms path.
TRIANGLE = RttMatrix([[0.0, 80.0, 80.0],
                      [80.0, 0.0, 200.0],
                      [80.0, 200.0, 0.0]])

ALICE_DC, BOB_DC, CAROL_DC = 1, 0, 2
PAIR_INTERVAL = 0.15  # a new post every 150 ms


class Session(Process):
    """Minimal causal client session shared by the three actors."""

    def __init__(self, env, name, dc, partitions, ring, width):
        super().__init__(env, name, site=dc)
        self.partitions = partitions
        self.ring = ring
        self.vclock = (0,) * width
        self._req = 0

    def read(self, key):
        self._req += 1
        self.send(self.partitions[self.ring.partition_for(key)],
                  ClientRead(key, request_id=self._req))

    def write(self, key, value):
        self._req += 1
        self.send(self.partitions[self.ring.partition_for(key)],
                  ClientUpdate(key, value, self.vclock,
                               request_id=self._req))

    def merge(self, vts):
        if vts:
            self.vclock = tuple(max(a, b) for a, b in zip(self.vclock, vts))

    def on_client_update_reply(self, msg, src):
        self.merge(msg.vts)
        self.after(0.0, self.on_write_done)

    def on_client_read_reply(self, msg, src):
        self.merge(msg.vts)
        self.on_value(msg.key, msg.value)

    def on_write_done(self):  # pragma: no cover - overridden
        pass

    def on_value(self, key, value):  # pragma: no cover - overridden
        pass


class Alice(Session):
    """Posts every PAIR_INTERVAL seconds."""

    def __init__(self, *args):
        super().__init__(*args)
        self.pair = 0

    def start(self):
        self.write(f"post:{self.pair}", f"alice's post #{self.pair}")

    def on_write_done(self):
        self.pair += 1
        self.after(PAIR_INTERVAL, self.start)


class Bob(Session):
    """Replies to each post the moment he sees it."""

    def __init__(self, *args):
        super().__init__(*args)
        self.pair = 0

    def start(self):
        self.read(f"post:{self.pair}")

    def on_value(self, key, value):
        if value is None:
            self.after(0.005, self.start)  # not replicated yet, poll again
        else:
            # The read merged the post's vector into Bob's session clock,
            # so the comment causally depends on the post.
            self.write(f"comment:{self.pair}", f"bob replies to #{self.pair}")

    def on_write_done(self):
        self.pair += 1
        self.start()


class Carol(Session):
    """Checks: whenever a comment is visible, its post must be too."""

    def __init__(self, *args):
        super().__init__(*args)
        self.pair = 0
        self.checked = 0
        self.orphans = 0
        self._stage = "comment"

    def start(self):
        self._stage = "comment"
        self.read(f"comment:{self.pair}")

    def on_value(self, key, value):
        if self._stage == "comment":
            if value is None:
                self.after(0.002, self.start)
                return
            self._stage = "post"
            self.read(f"post:{self.pair}")
        else:
            self.checked += 1
            if value is None:
                self.orphans += 1  # comment without its post!
            self.pair += 1
            self.after(0.0, self.start)


def run_scenario(protocol: str) -> tuple[int, int]:
    spec = GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=1,
                         seed=7, rtt=TRIANGLE)
    system = build_system(protocol, spec, WorkloadSpec(read_ratio=1.0))
    for client in system.clients:
        client.stop()  # the actors below replace the generic workload
    ring = system.clients[0].ring
    width = len(system.clients[0].vclock)

    def actor(cls, name, dc):
        return cls(system.env, name, dc,
                   system.datacenters[dc].partitions, ring, width)

    alice = actor(Alice, "alice", ALICE_DC)
    bob = actor(Bob, "bob", BOB_DC)
    carol = actor(Carol, "carol", CAROL_DC)
    system.start()
    alice.start()
    bob.start()
    carol.start()
    system.env.run(until=30.0)
    return carol.checked, carol.orphans


def main() -> None:
    print(__doc__.split("Run:")[0])
    for protocol in ("eventual", "eunomia"):
        checked, orphans = run_scenario(protocol)
        verdict = ("CAUSALITY VIOLATED" if orphans
                   else "no anomalies")
        print(f"{protocol:>9}: Carol checked {checked:3d} comment/post "
              f"pairs, {orphans:3d} orphaned comments -> {verdict}")


if __name__ == "__main__":
    main()
