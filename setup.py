"""Legacy-path shim: all metadata lives in pyproject.toml (PEP 621).

Kept so that ``pip install -e . --no-use-pep517`` works on machines without
the ``wheel`` package (PEP 660 editable installs need it; setup.py develop
does not).
"""

from setuptools import setup

setup()
