#!/usr/bin/env python3
"""Per-DC × op-type SLO report for any ProtocolSpec protocol.

Builds a geo deployment, attaches the full observability surface
(repro.obs: sampled causal tracing, streaming SLO sketches, stage-lag
gauges), runs it, and prints the SLO table: operation latency p50/p99/p999
per DC × op kind, remote visibility latency per DC pair, and
stabilization lag per DC.  Optionally writes the sampled spans + gauges
as a Chrome-trace-event JSON (load it in Perfetto / chrome://tracing):

    PYTHONPATH=src python scripts/slo_report.py --protocol eunomia
    PYTHONPATH=src python scripts/slo_report.py --protocol gentlerain \
        --duration 1.0 --export trace.json
    PYTHONPATH=src python scripts/slo_report.py --protocol eunomia --check

``--check`` self-asserts the report shape (used by the CI examples-smoke
step): every DC × op-kind row must be present with a positive count and
monotone p50 <= p99 <= p999.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.baselines import build_system                       # noqa: E402
from repro.geo.system import GeoSystemSpec                     # noqa: E402
from repro.obs import render_slo_report, write_chrome_trace    # noqa: E402
from repro.workload.generator import WorkloadSpec              # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python scripts/slo_report.py",
        description="SLO-grade latency report over a small geo run")
    parser.add_argument("--protocol", default="eunomia",
                        help="any registered protocol (default eunomia)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--duration", type=float, default=2.0,
                        help="load-generation seconds (default 2.0)")
    parser.add_argument("--drain", type=float, default=2.0,
                        help="post-load drain seconds (default 2.0)")
    parser.add_argument("--dcs", type=int, default=3)
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--clients", type=int, default=8,
                        help="client sessions per DC (default 8)")
    parser.add_argument("--read-ratio", type=float, default=0.9)
    parser.add_argument("--sample-every", type=int, default=16,
                        help="trace 1 op in N (default 16)")
    parser.add_argument("--export", type=Path, default=None,
                        help="write a Chrome-trace-event JSON here")
    parser.add_argument("--check", action="store_true",
                        help="self-assert the table shape (CI smoke)")
    args = parser.parse_args(argv)

    spec = GeoSystemSpec(n_dcs=args.dcs, partitions_per_dc=args.partitions,
                         clients_per_dc=args.clients, seed=args.seed)
    workload = WorkloadSpec(read_ratio=args.read_ratio, n_keys=500)
    system = build_system(args.protocol, spec, workload)
    obs = system.observe(sample_every=args.sample_every)
    system.run(args.duration)
    system.quiesce(args.drain)

    report = render_slo_report(system.metrics, tracer=obs.tracer)
    print(f"# {args.protocol}, {args.dcs} DCs x {args.partitions} "
          f"partitions x {args.clients} clients, seed {args.seed}, "
          f"{args.duration}s\n")
    print(report)

    if args.export is not None:
        trace = write_chrome_trace(args.export, tracer=obs.tracer,
                                   metrics=system.metrics)
        print(f"chrome trace ({len(trace['traceEvents'])} events) "
              f"written to {args.export}")

    if args.check:
        slo = obs.slo
        for dc in range(args.dcs):
            for kind in ("read", "update"):
                sketch = slo.op_latency.get((kind, dc))
                assert sketch is not None and sketch.n > 0, \
                    f"missing SLO row for ({kind}, dc{dc})"
                p50, p99, p999 = (sketch.quantile(q)
                                  for q in (50.0, 99.0, 99.9))
                assert 0.0 < p50 <= p99 <= p999, \
                    f"non-monotone quantiles for ({kind}, dc{dc}): " \
                    f"{p50}/{p99}/{p999}"
        assert len(obs.tracer) > 0, "no spans sampled"
        assert "operation latency" in report
        print("--check: SLO table well-formed "
              f"({len(obs.tracer)} spans, "
              f"{sum(s.n for s in slo.op_latency.values())} ops sketched)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
