#!/usr/bin/env python3
"""Record golden fingerprints for every protocol builder.

Writes ``tests/golden/baseline_goldens.json``: one
:func:`repro.harness.goldens.capture_golden` digest per
(protocol, seed).  The committed copy was captured against the
*pre-refactor* builders (the ``baselines/common.py`` frame) immediately
before the single-spine deployment refactor;
``tests/test_protocol_goldens.py`` asserts the ``ProtocolSpec`` spine
reproduces each digest bit-for-bit.  Re-run only after an *intentional*
protocol-behaviour change, and say so in the commit:

    PYTHONPATH=src python scripts/capture_goldens.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.harness.goldens import GOLDEN_SEEDS, capture_golden  # noqa: E402

PROTOCOLS = ("eventual", "gentlerain", "cure", "sseq", "aseq", "eunomia")
OUT = REPO / "tests" / "golden" / "baseline_goldens.json"

#: per-protocol capture pins, mirrored by test_protocol_goldens.py: Cure
#: goldens are captured with the classic scan backend (what the original
#: pre-refactor capture ran), because the strict ordered digest
#: (stable_sha) is sensitive to intra-round install order and the "runs"
#: default may legally reorder within a round.  The "runs" default is
#: pinned transitively by test_cure_pending_backends_equivalent.
CAPTURE_KWARGS = {"cure": {"pending_backend": "scan"}}


def main() -> int:
    goldens = []
    for protocol in PROTOCOLS:
        for seed in GOLDEN_SEEDS:
            golden = capture_golden(protocol, seed,
                                    **CAPTURE_KWARGS.get(protocol, {}))
            goldens.append(golden)
            print(f"{protocol:>10} seed={seed}: dc fingerprints "
                  f"{golden['fingerprints']} ops={golden['ops']} "
                  f"converged={golden['converged']}")
            if not golden["converged"]:
                print(f"capture_goldens: {protocol} did not converge — "
                      "refusing to record a broken golden", file=sys.stderr)
                return 1
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(json.dumps(goldens, indent=1) + "\n")
    print(f"wrote {len(goldens)} goldens to {OUT.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
