#!/usr/bin/env python3
"""Hot-path profiling harness: where do the benchmark scenarios spend time?

Runs the repository's end-to-end benchmark scenarios (the small geo
deployment and the update-heavy fault-tolerant deployment from
``benchmarks/bench_geo_e2e.py``, plus the sim-core ping-pong workload from
``benchmarks/bench_sim_core.py``) under :mod:`cProfile` and reports the
top-N hotspots per scenario, keyed ``relative/path.py:function``.

The point is *drift visibility*, not gating: wall-clock gates
(``scripts/bench_gate.py``) catch "it got slower", this harness answers
"what got slower".  Each hotspot's **share** of its scenario's total profile
time is machine-independent enough to diff across runs, so the committed
snapshot (``benchmarks/PROFILE_baseline.json``) doubles as a profile
regression reference:

    python scripts/profile_hotpath.py                  # profile + report
    python scripts/profile_hotpath.py --diff           # + compare shares
    python scripts/profile_hotpath.py --write-baseline # refresh snapshot

``--diff`` is advisory by default (exit 0, report only) — profiles shift
with interpreter version and hardware; it flags hotspots whose share grew
past ``--grow-threshold`` percentage points and functions newly in the
top-N.  ``--strict`` turns those advisories into a nonzero exit for local
use.  CI runs the advisory form so the profile story lands in the logs of
every smoke-bench run without flaking the build.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "PROFILE_baseline.json"


# ----------------------------------------------------------------------
# Scenarios (mirroring the committed benchmark workloads)
# ----------------------------------------------------------------------
def scenario_geo_small() -> None:
    """The bench_geo_small_e2e deployment: 3x4x8 EunomiaKV, 2 sim-seconds."""
    import bench_geo_e2e as bench
    from repro.geo.system import build_geo_system

    system = build_geo_system("eunomia", bench.SPEC, bench.WL)
    system.run(2.0)


def scenario_geo_update_heavy() -> None:
    """The bench_geo_update_heavy_e2e deployment: 90:10 writes, FT R=2."""
    import bench_geo_e2e as bench
    from repro.core.config import EunomiaConfig
    from repro.geo.system import build_geo_system

    config = EunomiaConfig(fault_tolerant=True, n_replicas=2)
    system = build_geo_system("eunomia", bench.UPDATE_SPEC, bench.UPDATE_WL,
                              config=config)
    system.run(2.0)


def scenario_sim_core_pingpong() -> None:
    """bench_network_message_round's 20k-round FIFO ping-pong workload."""
    from repro.sim import ConstantLatency, Environment, Network, Process

    class Pong:
        size_bytes = 16

    class Peer(Process):
        def __init__(self, env, name, rounds):
            super().__init__(env, name)
            self.rounds = rounds
            self.other = None

        def on_pong(self, msg, src):
            if self.rounds > 0:
                self.rounds -= 1
                self.send(self.other, Pong())

    env = Environment(seed=1)
    Network(env, ConstantLatency(0.0001))
    a, b = Peer(env, "a", 10_000), Peer(env, "b", 10_000)
    a.other, b.other = b, a
    a.send(b, Pong())
    env.run()


SCENARIOS = {
    "geo_small": scenario_geo_small,
    "geo_update_heavy": scenario_geo_update_heavy,
    "sim_core_pingpong": scenario_sim_core_pingpong,
}


def _warm_imports() -> None:
    """Import everything the scenarios touch before profiling starts.

    Module import (compile + exec) otherwise lands inside the first
    profiled scenario as `builtins.compile` noise that diffs as a phantom
    hotspot on cold caches.
    """
    import bench_geo_e2e                    # noqa: F401
    from repro.core.config import EunomiaConfig          # noqa: F401
    from repro.geo.system import build_geo_system        # noqa: F401
    from repro.sim import (                              # noqa: F401
        ConstantLatency, Environment, Network, Process)


# ----------------------------------------------------------------------
# Profiling + hotspot extraction
# ----------------------------------------------------------------------
def _func_key(func: tuple) -> str:
    """Stable machine-independent key for a pstats function tuple."""
    filename, _lineno, name = func
    if filename.startswith("~") or filename.startswith("<"):
        return f"{filename}:{name}"       # builtins / C functions
    path = Path(filename)
    try:
        rel = path.resolve().relative_to(REPO_ROOT)
        return f"{rel.as_posix()}:{name}"
    except ValueError:
        return f"{path.name}:{name}"      # stdlib / site-packages


def profile_scenario(fn, top_n: int) -> dict:
    """Run ``fn`` under cProfile; return total time + top-N by tottime.

    Same-key entries (e.g. a function compiled at two line numbers across
    reloads) are merged before ranking so the key space stays diffable.
    """
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    fn()
    profiler.disable()
    wall = time.perf_counter() - start

    stats = pstats.Stats(profiler)
    total = stats.total_tt
    merged: dict[str, dict] = {}
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
        key = _func_key(func)
        row = merged.setdefault(
            key, {"func": key, "ncalls": 0, "tottime_s": 0.0,
                  "cumtime_s": 0.0})
        row["ncalls"] += nc
        row["tottime_s"] += tt
        # cumtime of a merged pair is not additive in general, but for
        # display/ranking the max of the variants is the honest figure
        row["cumtime_s"] = max(row["cumtime_s"], ct)
    hotspots = sorted(merged.values(), key=lambda r: -r["tottime_s"])[:top_n]
    for row in hotspots:
        row["share_pct"] = round(100.0 * row["tottime_s"] / total, 2) \
            if total else 0.0
        row["tottime_s"] = round(row["tottime_s"], 4)
        row["cumtime_s"] = round(row["cumtime_s"], 4)
    return {"wall_s": round(wall, 3), "profile_total_s": round(total, 3),
            "hotspots": hotspots}


def render(name: str, result: dict) -> str:
    lines = [f"{name}: {result['wall_s']:.2f}s wall "
             f"({result['profile_total_s']:.2f}s profiled)"]
    lines.append(f"  {'share':>6}  {'tottime':>8}  {'cumtime':>8}  "
                 f"{'ncalls':>9}  function")
    for row in result["hotspots"]:
        lines.append(f"  {row['share_pct']:5.1f}%  {row['tottime_s']:7.3f}s"
                     f"  {row['cumtime_s']:7.3f}s  {row['ncalls']:>9}"
                     f"  {row['func']}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Baseline diff
# ----------------------------------------------------------------------
def diff_scenario(name: str, fresh: dict, base: dict,
                  grow_threshold: float,
                  churn_floor: float = 2.5) -> list[str]:
    """Advisory findings for one scenario (empty list = no drift).

    Entering/leaving the top-N is only reported above ``churn_floor``
    percent: the bottom of the list churns run to run on noise alone,
    while a function arriving at (or vanishing from) a >2.5% share is a
    real shift in where the time goes.
    """
    findings = []
    base_shares = {r["func"]: r["share_pct"] for r in base["hotspots"]}
    fresh_shares = {r["func"]: r["share_pct"] for r in fresh["hotspots"]}
    for func, share in fresh_shares.items():
        old = base_shares.get(func)
        if old is None:
            if share > churn_floor:
                findings.append(
                    f"{name}: NEW hotspot {func} at {share:.1f}% "
                    "(absent from baseline top-N)")
        elif share - old > grow_threshold:
            findings.append(
                f"{name}: {func} grew {old:.1f}% -> {share:.1f}% of profile "
                f"(+{share - old:.1f} points)")
    for func, old in base_shares.items():
        if func not in fresh_shares and old > churn_floor:
            findings.append(
                f"{name}: {func} left the top-N (was {old:.1f}%) — "
                "shrunk or renamed")
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", choices=sorted(SCENARIOS),
                        action="append",
                        help="profile only these scenarios (default: all)")
    parser.add_argument("--top", type=int, default=15,
                        help="hotspots per scenario (default 15)")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="committed profile snapshot "
                             "(default: benchmarks/PROFILE_baseline.json)")
    parser.add_argument("--diff", action="store_true",
                        help="compare hotspot shares against the baseline "
                             "(advisory: reports drift, exits 0)")
    parser.add_argument("--grow-threshold", type=float, default=3.0,
                        help="share growth in percentage points that "
                             "counts as drift under --diff (default 3.0)")
    parser.add_argument("--churn-floor", type=float, default=2.5,
                        help="minimum share (percent) for top-N "
                             "entry/exit to be reported — the list tail "
                             "churns on noise (default 2.5)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when --diff finds drift (local use; "
                             "CI stays advisory)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the fresh profile to --baseline")
    parser.add_argument("--json", type=Path,
                        help="also dump the fresh profile JSON here")
    args = parser.parse_args(argv)

    names = args.scenario or sorted(SCENARIOS)
    _warm_imports()
    results = {}
    for name in names:
        results[name] = profile_scenario(SCENARIOS[name], args.top)
        print(render(name, results[name]))
        print()

    payload = {
        "note": "hotspot shares of cProfile total per scenario; diffed by "
                "scripts/profile_hotpath.py (advisory in CI)",
        "top_n": args.top,
        "scenarios": results,
    }
    if args.json:
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
    if args.write_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"profile_hotpath: baseline written to {args.baseline}")
        return 0

    if args.diff:
        if not args.baseline.exists():
            print(f"profile_hotpath: no baseline at {args.baseline}; run "
                  "with --write-baseline first", file=sys.stderr)
            return 2
        base = json.loads(args.baseline.read_text())
        findings = []
        for name in names:
            if name in base.get("scenarios", {}):
                findings.extend(diff_scenario(
                    name, results[name], base["scenarios"][name],
                    args.grow_threshold, args.churn_floor))
            else:
                findings.append(f"{name}: not in baseline (new scenario)")
        if findings:
            print(f"profile_hotpath: {len(findings)} drift finding(s) vs "
                  f"{args.baseline.name}:")
            for finding in findings:
                print(f"  {finding}")
            if args.strict:
                return 1
        else:
            print("profile_hotpath: no hotspot drift vs baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
