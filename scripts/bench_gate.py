#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a fresh ``pytest --benchmark-json`` run against the committed
baseline (``benchmarks/BENCH_baseline.json``) and fails when any benchmark's
median slows down by more than the threshold (default 25%).  Run from CI
after the smoke benchmarks:

    pytest benchmarks/bench_sim_core.py benchmarks/bench_trees.py \
        --benchmark-json=bench-results.json
    python scripts/bench_gate.py --fresh bench-results.json --normalize

``--normalize`` judges each benchmark relative to the run's overall
machine-speed factor so heterogeneous CI runners do not trip the gate;
omit it when comparing runs from the same machine.  Only benchmarks
matching ``--gate`` (default: the sim-core hot paths and the op-buffer
ingestion path) can fail the run at the tight threshold; ``--gate-wide``
benchmarks (default: the end-to-end op-buffer overload rig, whose
wall-clock medians were measured at ~±10% run-to-run before gating it)
fail only past the looser ``--wide-threshold``; everything else (e.g.
the raw tree micro-benches) is compared and reported as informational.

Benchmarks present in only one of the two files are reported but do not
fail the gate (new benchmarks land before their baseline; retired ones
linger in the baseline until it is refreshed).  To refresh after an
intentional change:

    python scripts/bench_gate.py --fresh bench-results.json --write-baseline

Lingering has a limit, though: a baseline entry whose benchmark no longer
*exists* (renamed, retired, or its file deleted) is dead weight that hides
coverage loss — the gate would silently stop judging a path that used to be
gated.  ``--check-stale`` collects the benchmark suite (``pytest
--collect-only``) and fails if the baseline carries entries no collected
benchmark can produce; ``--prune`` rewrites the baseline with those
orphans removed instead of failing.  Neither needs ``--fresh``:

    python scripts/bench_gate.py --check-stale
    python scripts/bench_gate.py --prune
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "BENCH_baseline.json"


def load_medians(path: Path) -> dict[str, float]:
    """Map benchmark fullname -> median seconds from a --benchmark-json file."""
    with open(path) as fh:
        data = json.load(fh)
    medians = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("fullname") or bench["name"]
        medians[name] = bench["stats"]["median"]
    return medians


def speed_factor(baseline: dict[str, float], fresh: dict[str, float]) -> float:
    """Median fresh/baseline ratio over shared benchmarks.

    Approximates how much faster/slower this machine is than the one that
    recorded the baseline.  Judging each benchmark *relative* to this factor
    makes the gate robust across heterogeneous CI runners: a single hot path
    regressing stands out against its unregressed peers, while a uniformly
    slower runner does not fail every benchmark at once.  (The blind spot —
    every gated benchmark regressing by the same factor — is the price of
    not pinning CI to one hardware generation.)
    """
    ratios = sorted(fresh[name] / baseline[name]
                    for name in set(baseline) & set(fresh)
                    if baseline[name] > 0)
    if not ratios:
        return 1.0
    mid = len(ratios) // 2
    if len(ratios) % 2:
        return ratios[mid]
    return (ratios[mid - 1] + ratios[mid]) / 2


def compare(baseline: dict[str, float], fresh: dict[str, float],
            threshold: float, normalize: bool,
            gate_pattern: str, wide_pattern: str = "",
            wide_threshold: float = 0.5) -> tuple[list[str], list[str]]:
    """Return (failures, report_lines).

    Only benchmarks whose fullname matches ``gate_pattern`` (regex search;
    empty string matches all) can *fail* the gate at ``threshold``;
    ``wide_pattern`` names benchmarks gated at the looser
    ``wide_threshold`` — end-to-end wall-clock suites whose run-to-run
    variance (measured ~±10%, >20% peak-to-peak for the overload rig on
    one otherwise-idle machine) would trip the tight gate on noise alone.
    Everything else is compared and reported as informational.  The speed
    factor is still computed over every shared benchmark — more samples,
    steadier estimate.
    """
    factor = speed_factor(baseline, fresh) if normalize else 1.0
    gate_re = re.compile(gate_pattern) if gate_pattern else None
    wide_re = re.compile(wide_pattern) if wide_pattern else None
    failures = []
    lines = []
    if normalize:
        lines.append(f"  machine speed factor: {factor:.3f}x "
                     "(medians judged relative to it)")
    for name in sorted(set(baseline) | set(fresh)):
        base = baseline.get(name)
        new = fresh.get(name)
        if base is None:
            lines.append(f"  NEW       {name}: {new * 1e3:.3f} ms "
                         "(no baseline yet)")
            continue
        if new is None:
            lines.append(f"  MISSING   {name}: in baseline but not in the "
                         "fresh run")
            continue
        if gate_re is None or gate_re.search(name):
            gate_threshold = threshold
        elif wide_re is not None and wide_re.search(name):
            gate_threshold = wide_threshold
        else:
            gate_threshold = None   # informational only
        ratio = (new / factor) / base if base > 0 else float("inf")
        delta = (ratio - 1.0) * 100
        verdict = "ok"
        if ratio > 1.0 + threshold:
            if gate_threshold is not None and ratio > 1.0 + gate_threshold:
                verdict = "REGRESSED"
                failures.append(
                    f"{name}: median {base * 1e3:.3f} ms -> "
                    f"{new * 1e3:.3f} ms ({delta:+.1f}% relative, "
                    f"threshold +{gate_threshold * 100:.0f}%)")
            else:
                verdict = "info-slow"   # outside its gate: report, don't fail
        elif ratio < 1.0 - threshold:
            verdict = "improved"
        lines.append(f"  {verdict:<9} {name}: {base * 1e3:.3f} ms -> "
                     f"{new * 1e3:.3f} ms ({delta:+.1f}%)")
    return failures, lines


def collect_bench_ids(bench_dir: Path) -> set[str]:
    """Node ids of every currently collectable benchmark (pytest collection).

    Collection — not a run: ``--collect-only -q`` prints one node id per
    line in exactly the ``fullname`` format the ``--benchmark-json`` stats
    carry (``benchmarks/bench_x.py::bench_fn[param]``), including
    parametrized variants a static scan of the files could not know about.
    """
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", str(bench_dir), "--collect-only",
         "-q", "-p", "no:cacheprovider"],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    if proc.returncode not in (0, 5):   # 5 = no tests collected
        raise RuntimeError(
            f"benchmark collection failed (exit {proc.returncode}):\n"
            f"{proc.stdout}\n{proc.stderr}")
    ids = set()
    for line in proc.stdout.splitlines():
        line = line.strip()
        if "::" in line and not line.startswith("="):
            ids.add(line)
    return ids


def stale_entries(baseline_path: Path, bench_dir: Path) -> list[str]:
    """Baseline fullnames no collected benchmark produces (sorted)."""
    baseline = load_medians(baseline_path)
    collected = collect_bench_ids(bench_dir)
    return sorted(name for name in baseline if name not in collected)


def prune_baseline(baseline_path: Path, orphans: list[str]) -> None:
    """Rewrite the baseline file with the orphaned entries removed."""
    with open(baseline_path) as fh:
        data = json.load(fh)
    dead = set(orphans)
    data["benchmarks"] = [
        bench for bench in data.get("benchmarks", [])
        if (bench.get("fullname") or bench["name"]) not in dead
    ]
    baseline_path.write_text(json.dumps(data, indent=2, sort_keys=True)
                             + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="committed baseline JSON "
                             "(default: benchmarks/BENCH_baseline.json)")
    parser.add_argument("--fresh", type=Path,
                        help="fresh --benchmark-json output to check "
                             "(required except with --check-stale/--prune)")
    parser.add_argument("--bench-dir", type=Path,
                        default=REPO_ROOT / "benchmarks",
                        help="benchmark suite to collect for the staleness "
                             "check (default: benchmarks/)")
    parser.add_argument("--check-stale", action="store_true",
                        help="fail if the baseline carries entries no "
                             "collected benchmark produces (renamed or "
                             "retired benches whose baseline rows would "
                             "otherwise hide coverage loss forever)")
    parser.add_argument("--prune", action="store_true",
                        help="like --check-stale, but rewrite the baseline "
                             "with the orphaned entries removed and exit 0")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed median slowdown as a fraction "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--normalize", action="store_true",
                        help="divide every fresh median by the machine "
                             "speed factor (median fresh/baseline ratio) "
                             "before comparing — use on CI, where runner "
                             "hardware differs from the baseline machine")
    parser.add_argument("--gate",
                        default="bench_sim_core|bench_opbuffer_ingestion",
                        help="regex: only matching benchmarks can fail the "
                             "gate; the rest are informational (default: "
                             "the sim-core hot paths every experiment rides "
                             "on plus the op-buffer ingestion path the "
                             "stabilizers ride on; pass '' to gate all)")
    parser.add_argument("--gate-wide",
                        default="bench_opbuffer_backend_overload_rig"
                                "|bench_geo_small_e2e"
                                "|bench_geo_update_heavy_e2e"
                                "|bench_fig1_motivation_tradeoff_full"
                                "|bench_fig5_geo_throughput_full"
                                "|bench_fig7_straggler_full"
                                "|bench_placement_sweep"
                                "|bench_obs_overhead",
                        help="regex: benchmarks gated at the wide "
                             "threshold — the end-to-end suites (overload "
                             "rig: ~±10%% run-to-run; small geo e2e run: "
                             "±1.7%% stdev / 4.8%% peak-to-peak; placement "
                             "sweep grid: ±5.4%% stdev / 14%% peak-to-peak "
                             "on an idle machine, but CI runners are far "
                             "noisier; all measured before gating, per the "
                             "ROADMAP; the update-heavy FT run rides the "
                             "same rig) plus the full-grid Figure 1/5/7 "
                             "runs the batched sim core and dataplane made "
                             "affordable in CI (single-round wall clock, "
                             "so only the wide threshold is meaningful) "
                             "plus the paired "
                             "observability-overhead run, whose real check "
                             "— the enabled/disabled wall ratio — is "
                             "asserted in-bench where machine noise "
                             "cancels; pass '' to disable")
    parser.add_argument("--wide-threshold", type=float, default=0.5,
                        help="max allowed median slowdown for --gate-wide "
                             "benchmarks (default 0.5 = 50%%, sized to the "
                             "measured >20%% peak-to-peak runner variance)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="replace the baseline with the fresh run and "
                             "exit 0 (use after intentional perf changes)")
    args = parser.parse_args(argv)

    if args.check_stale or args.prune:
        if not args.baseline.exists():
            print(f"bench gate: no baseline at {args.baseline}",
                  file=sys.stderr)
            return 2
        orphans = stale_entries(args.baseline, args.bench_dir)
        if not orphans:
            print("bench gate: baseline is fresh — every entry matches a "
                  "collected benchmark")
            return 0
        if args.prune:
            prune_baseline(args.baseline, orphans)
            print(f"bench gate: pruned {len(orphans)} stale baseline "
                  "entr(y/ies):")
            for name in orphans:
                print(f"  {name}")
            return 0
        print(f"bench gate: STALE — {len(orphans)} baseline entr(y/ies) "
              "match no collected benchmark:", file=sys.stderr)
        for name in orphans:
            print(f"  {name}", file=sys.stderr)
        print("  (rerun with --prune to drop them, or restore the "
              "benchmarks)", file=sys.stderr)
        return 1

    if args.fresh is None:
        parser.error("--fresh is required unless --check-stale/--prune")
    if not args.fresh.exists():
        print(f"bench gate: fresh results {args.fresh} not found",
              file=sys.stderr)
        return 2

    if args.write_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_bytes(args.fresh.read_bytes())
        print(f"bench gate: baseline refreshed at {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"bench gate: no baseline at {args.baseline}; "
              "run with --write-baseline to create one", file=sys.stderr)
        return 2

    baseline = load_medians(args.baseline)
    fresh = load_medians(args.fresh)
    failures, lines = compare(baseline, fresh, args.threshold,
                              args.normalize, args.gate,
                              wide_pattern=args.gate_wide,
                              wide_threshold=args.wide_threshold)

    print(f"bench gate: {len(fresh)} fresh vs {len(baseline)} baseline "
          f"benchmarks (threshold +{args.threshold * 100:.0f}% median)")
    for line in lines:
        print(line)
    if failures:
        print(f"\nbench gate: FAILED — {len(failures)} regression(s):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nbench gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
