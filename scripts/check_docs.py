#!/usr/bin/env python3
"""Docs lint for CI: link integrity + example-header sync.

Checks, with zero dependencies beyond the stdlib:

1. every relative markdown link in README.md and docs/*.md points at a
   file or directory that exists (external ``scheme://`` links and
   GitHub-web-relative links that escape the repo are skipped), and every
   ``#fragment`` on an intra-repo markdown link names a real heading
   (GitHub anchor slugs);
2. every ``examples/*.py`` opens with a module docstring whose ``Run:``
   stanza names its own file (``python examples/<name>.py``), so headers
   cannot drift when examples are renamed or copied;
3. every protocol module — ``src/repro/baselines/*.py`` and
   ``src/repro/core/protocols.py`` — opens with a module docstring (the
   plugin modules *are* the protocol documentation);
4. every protocol name in the ``core/protocols.py`` registry table is
   documented in both README.md and docs/ARCHITECTURE.md, so a newly
   registered plugin cannot ship undocumented (and a renamed one cannot
   leave stale docs behind);
5. every recognized value of the ablation-knob name tuples — the
   scheduler backends (``sim/env.py``), WAL codecs
   (``durability/wal.py``), chaos fault classes (``harness/chaos.py``),
   placement policies (``core/placement.py``), and tracing pipeline
   stages (``obs/trace.py``) — is documented in both README.md and
   docs/ARCHITECTURE.md, same rationale as the protocol registry.
6. every behavioural config-field knob in ``CONFIG_FIELD_KNOBS``
   (currently ``receiver_pipeline``, the batched-dataplane apply depth)
   still exists on its dataclass and is documented code-formatted in
   both README.md and docs/ARCHITECTURE.md.

Exit code 0 when clean; prints every violation and exits 1 otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces → dashes."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(md_path: Path) -> set[str]:
    text = md_path.read_text(encoding="utf-8")
    return {github_slug(h) for h in HEADING_RE.findall(text)}


def check_links() -> list[str]:
    errors = []
    for doc in DOC_FILES:
        if not doc.exists():
            errors.append(f"{doc.relative_to(REPO)}: file missing")
            continue
        text = doc.read_text(encoding="utf-8")
        for link in LINK_RE.findall(text):
            if "://" in link or link.startswith("mailto:"):
                continue
            path_part, _, fragment = link.partition("#")
            if path_part:
                target = (doc.parent / path_part).resolve()
                try:
                    target.relative_to(REPO)
                except ValueError:
                    continue  # GitHub-web-relative (e.g. ../../actions/...)
                if not target.exists():
                    errors.append(
                        f"{doc.relative_to(REPO)}: broken link -> {link}")
                    continue
            else:
                target = doc
            if fragment and target.suffix == ".md" and target.is_file():
                if fragment not in anchors_of(target):
                    errors.append(
                        f"{doc.relative_to(REPO)}: dead anchor -> {link}")
    return errors


def check_example_headers() -> list[str]:
    errors = []
    for example in sorted((REPO / "examples").glob("*.py")):
        rel = example.relative_to(REPO)
        text = example.read_text(encoding="utf-8")
        match = re.search(r'"""(.*?)"""', text, re.DOTALL)
        if not match:
            errors.append(f"{rel}: no module docstring")
            continue
        doc = match.group(1)
        run_line = f"python examples/{example.name}"
        if "Run:" not in doc or run_line not in doc:
            errors.append(
                f"{rel}: docstring must carry a 'Run:' stanza naming "
                f"'{run_line}'")
    return errors


PROTOCOL_MODULES = [
    REPO / "src" / "repro" / "core" / "protocols.py",
    *sorted((REPO / "src" / "repro" / "baselines").glob("*.py")),
]

#: the registry's lazy table is the source of truth for protocol names
REGISTRY_RE = re.compile(r'^\s*"(\w+)":\s*"repro\.[\w.]+",\s*$', re.MULTILINE)


def check_protocol_modules() -> list[str]:
    errors = []
    for module in PROTOCOL_MODULES:
        rel = module.relative_to(REPO)
        text = module.read_text(encoding="utf-8")
        if not re.match(r'^(#![^\n]*\n)?("""|\'\'\')', text):
            errors.append(f"{rel}: protocol module must open with a "
                          "module docstring")
    return errors


def registered_protocols() -> list[str]:
    text = (REPO / "src" / "repro" / "core" / "protocols.py").read_text(
        encoding="utf-8")
    return REGISTRY_RE.findall(text)


def check_protocols_documented() -> list[str]:
    errors = []
    protocols = registered_protocols()
    if not protocols:
        return ["core/protocols.py: no protocol registry entries found "
                "(_LAZY_MODULES table missing or reshaped?)"]
    for doc in (REPO / "README.md", REPO / "docs" / "ARCHITECTURE.md"):
        text = doc.read_text(encoding="utf-8")
        for protocol in protocols:
            # Require the code-formatted name: a plain substring match
            # would let incidental prose ("obscure", "GST machinery")
            # satisfy the guard for short names.
            if f"`{protocol}`" not in text:
                errors.append(
                    f"{doc.relative_to(REPO)}: registered protocol "
                    f"{protocol!r} is undocumented (expected `{protocol}` "
                    "in code format)")
    return errors


#: knob-name tuples whose every value must appear (code-formatted) in the
#: docs: (source file, tuple variable name)
KNOB_TUPLES = [
    (REPO / "src" / "repro" / "sim" / "env.py", "SCHEDULER_BACKENDS"),
    (REPO / "src" / "repro" / "durability" / "wal.py", "WAL_CODECS"),
    (REPO / "src" / "repro" / "harness" / "chaos.py", "FAULT_CLASSES"),
    (REPO / "src" / "repro" / "core" / "placement.py", "PLACEMENT_POLICIES"),
    (REPO / "src" / "repro" / "obs" / "trace.py", "STAGES"),
]


def knob_values(path: Path, var: str) -> list[str]:
    text = path.read_text(encoding="utf-8")
    match = re.search(rf'^{var}\s*=\s*\(([^)]*)\)', text, re.MULTILINE)
    if not match:
        return []
    return re.findall(r'"(\w+)"', match.group(1))


#: behavioural config-field knobs that must stay documented: every field
#: listed here must exist on its dataclass and appear code-formatted in
#: both README.md and docs/ARCHITECTURE.md (same rationale as the name
#: tuples above; these are single typed fields rather than value tuples)
CONFIG_FIELD_KNOBS = [
    (REPO / "src" / "repro" / "core" / "config.py", "receiver_pipeline"),
]


def check_config_fields_documented() -> list[str]:
    errors = []
    for path, field in CONFIG_FIELD_KNOBS:
        text = path.read_text(encoding="utf-8")
        if not re.search(rf'^\s+{field}\s*:', text, re.MULTILINE):
            errors.append(f"{path.relative_to(REPO)}: config field "
                          f"{field!r} not found (renamed or removed?)")
            continue
        for doc in (REPO / "README.md", REPO / "docs" / "ARCHITECTURE.md"):
            # accept `receiver_pipeline` or `EunomiaConfig(receiver_pipeline=…)`
            if not re.search(rf'`[^`\n]*{field}[^`\n]*`',
                             doc.read_text(encoding="utf-8")):
                errors.append(
                    f"{doc.relative_to(REPO)}: config knob {field!r} is "
                    f"undocumented (expected `{field}` in code format)")
    return errors


def check_knobs_documented() -> list[str]:
    errors = []
    for path, var in KNOB_TUPLES:
        values = knob_values(path, var)
        if not values:
            errors.append(f"{path.relative_to(REPO)}: knob tuple {var} not "
                          "found (renamed or reshaped?)")
            continue
        for doc in (REPO / "README.md", REPO / "docs" / "ARCHITECTURE.md"):
            text = doc.read_text(encoding="utf-8")
            for value in values:
                if f'`"{value}"`' not in text and f"`{value}`" not in text:
                    errors.append(
                        f"{doc.relative_to(REPO)}: {var} value "
                        f"{value!r} is undocumented (expected `\"{value}\"` "
                        "in code format)")
    return errors


def main() -> int:
    errors = (check_links() + check_example_headers()
              + check_protocol_modules() + check_protocols_documented()
              + check_knobs_documented() + check_config_fields_documented())
    for error in errors:
        print(f"check_docs: {error}", file=sys.stderr)
    if errors:
        print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    checked = ", ".join(str(d.relative_to(REPO)) for d in DOC_FILES)
    n_knobs = sum(len(knob_values(path, var)) for path, var in KNOB_TUPLES)
    print(f"check_docs: links ok ({checked}); "
          f"{len(list((REPO / 'examples').glob('*.py')))} example headers ok; "
          f"{len(PROTOCOL_MODULES)} protocol modules ok; "
          f"{len(registered_protocols())} registered protocols documented; "
          f"{n_knobs} knob values + {len(CONFIG_FIELD_KNOBS)} config field "
          "knob(s) documented")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
