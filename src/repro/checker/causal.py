"""Causal-consistency checking over recorded histories.

Causal consistency is exactly the conjunction of the four session
guarantees (Terry et al., PDIS'94) plus eventual convergence; the checker
verifies each against a :class:`repro.checker.history.SessionHistory`:

* **monotonic writes / writes-follow-reads** — every update's returned
  vector must strictly dominate the client's session clock at issue time
  (the §4 update rule makes this the partition's obligation);
* **read-your-writes / monotonic reads** — a read of key k must never
  return a version *strictly causally dominated* by a version of k the
  session has already observed.  (Under last-writer-wins a concurrent
  version may legitimately replace an observed one, so the check is
  dominance, not equality.)
* **convergence** — after quiescence all datacenters hold identical data
  (checked via store fingerprints by :meth:`repro.geo.system.GeoSystem.converged`).

The checks are vector-based, so they apply to every protocol that returns
genuine causal metadata (EunomiaKV, Cure, S-Seq; GentleRain returns scalars
= 1-vectors).  The eventually consistent baseline returns empty vectors and
is exempt — it makes no causal promises to violate.

Under **partial geo-replication** the session checks apply unchanged: the
guarantees are per-*client*, and a forwarded operation merges the serving
DC's reply vector into the same session clock, so monotonic writes/reads
hold across forwarding targets by construction (the very property the
forwarding path must preserve).  What changes is scope — an update is only
required to become visible at DCs that *store* its partition (convergence
is checked per partition across its resident DCs by
:meth:`repro.geo.system.GeoSystem.converged`), and
:meth:`CausalChecker.check_placement_routing` asserts every operation was
in fact served by a resident DC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..clocks.vector import vc_leq, vc_lt, vc_merge
from .history import OpRecord, SessionHistory

__all__ = ["Violation", "CausalChecker"]


@dataclass(slots=True)
class Violation:
    """One detected consistency breach."""

    guarantee: str
    client: str
    record: OpRecord
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (f"[{self.guarantee}] client={self.client} key={self.record.key} "
                f"t={self.record.time:.6f}: {self.detail}")


class CausalChecker:
    """Replays sessions and reports every guarantee violation."""

    def __init__(self, history: SessionHistory):
        self.history = history

    def check(self) -> list[Violation]:
        """All violations across all clients (empty list = pass)."""
        violations: list[Violation] = []
        for client in self.history.clients():
            violations.extend(self._check_session(client))
        return violations

    def _check_session(self, client: str) -> list[Violation]:
        violations: list[Violation] = []
        # key -> antichain of maximal version vectors this session observed.
        # Comparing against single observed versions (not their merge!) is
        # essential: the merge of two concurrent versions dominates both,
        # and would wrongly flag a legitimate re-read of either.
        observed: dict[Any, list[Tuple[int, ...]]] = {}
        for record in self.history.session(client):
            if not record.vts:
                continue  # protocol exposes no causal metadata (eventual)
            vts = tuple(record.vts)
            if record.kind == "update":
                if not vc_lt(record.session_vts, vts):
                    violations.append(Violation(
                        "monotonic-writes", client, record,
                        f"update vector {vts} does not dominate "
                        f"session clock {record.session_vts}",
                    ))
            else:
                for prior in observed.get(record.key, ()):
                    if vc_lt(vts, prior):
                        violations.append(Violation(
                            "monotonic-reads", client, record,
                            f"read returned {vts}, strictly older than "
                            f"previously observed {prior}",
                        ))
                        break
            chain = observed.setdefault(record.key, [])
            chain[:] = [prior for prior in chain if not vc_leq(prior, vts)]
            chain.append(vts)
        return violations

    # ------------------------------------------------------------------
    # Cross-client spot check
    # ------------------------------------------------------------------
    def check_write_read_pairs(self) -> list[Violation]:
        """Reads that returned a written value must carry its vector.

        Client values are unique strings (``name#reqid``), so any read can
        be matched to the update that produced its value; the read's vector
        must equal the update's.  Catches metadata corruption in transit.
        """
        by_value = {r.value: r for r in self.history.all_updates()}
        violations: list[Violation] = []
        for client in self.history.clients():
            for record in self.history.session(client):
                if record.kind != "read" or record.value is None:
                    continue
                source = by_value.get(record.value)
                if source is None or not record.vts:
                    continue
                if tuple(record.vts) != tuple(source.vts):
                    violations.append(Violation(
                        "metadata-integrity", client, record,
                        f"read vector {record.vts} != writer's {source.vts}",
                    ))
        return violations

    # ------------------------------------------------------------------
    # Partial geo-replication
    # ------------------------------------------------------------------
    def check_placement_routing(self, placement, ring) -> list[Violation]:
        """Every operation must have been served by a resident DC.

        ``placement`` is a :class:`repro.core.placement.PlacementMap` and
        ``ring`` the deployment's hash ring; records without a
        ``served_by`` annotation (hand-built histories) are skipped.
        A violation here means the forwarding tables routed an operation
        to a DC that does not store the key's partition — such a write
        would never replicate and such a read could never see one.
        """
        violations: list[Violation] = []
        for client in self.history.clients():
            for record in self.history.session(client):
                if record.served_by is None:
                    continue
                index = ring.partition_for(record.key)
                if not placement.is_resident(record.served_by, index):
                    violations.append(Violation(
                        "placement-routing", client, record,
                        f"op on partition {index} served by "
                        f"dc{record.served_by}, which is not among its "
                        f"resident DCs {placement.residents(index)}",
                    ))
        return violations
