"""Execution histories for consistency checking.

A :class:`SessionHistory` collects the per-client sequence of completed
operations, each annotated with the vector timestamp the system returned
*and* the client's session clock immediately before the operation.  The
checker (:mod:`repro.checker.causal`) replays these sequences against the
formal session guarantees.  Because the simulator is deterministic, a
violation found here is a protocol bug, not a flake.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

__all__ = ["OpRecord", "SessionHistory"]


@dataclass(slots=True)
class OpRecord:
    """One completed client operation."""

    time: float
    client: str
    kind: str                    # "read" | "update"
    key: Any
    value: Any
    vts: Tuple[int, ...]         # vector returned by the system
    session_vts: Tuple[int, ...]  # client's clock *before* the op
    #: DC that served the op (differs from the client's DC when partial
    #: placement forwarded it); None for histories that predate the field
    served_by: Optional[int] = None


class SessionHistory:
    """Ordered per-client operation logs."""

    def __init__(self) -> None:
        self._by_client: dict[str, list[OpRecord]] = {}
        self.total_ops = 0

    def record(self, record: OpRecord) -> None:
        self._by_client.setdefault(record.client, []).append(record)
        self.total_ops += 1

    def clients(self) -> list[str]:
        return sorted(self._by_client)

    def session(self, client: str) -> list[OpRecord]:
        """The client's operations in completion order."""
        return self._by_client.get(client, [])

    def all_updates(self) -> list[OpRecord]:
        """Every update in the history (all clients), time-ordered."""
        updates = [
            record
            for session in self._by_client.values()
            for record in session
            if record.kind == "update"
        ]
        updates.sort(key=lambda r: r.time)
        return updates
