"""Consistency checking: session-guarantee verification over recorded
client histories, plus convergence assertions (the simulator is
deterministic, so any violation is a reproducible protocol bug)."""

from .causal import CausalChecker, Violation
from .history import OpRecord, SessionHistory

__all__ = ["SessionHistory", "OpRecord", "CausalChecker", "Violation"]
