"""Fault-tolerant Eunomia (Algorithm 4).

Each replica runs the full Algorithm 3 state machine over the batches it
receives; partitions retransmit unacknowledged suffixes to every replica
(see :mod:`repro.core.uplink`), which gives the *prefix property*: a replica
holding an update from partition p also holds every earlier update from p.
Replicas therefore never need to coordinate — their ``PartitionTime`` and
buffers converge independently of delivery order, which is why the paper
measures only ~9% overhead regardless of replica count (Figure 3), versus
~33% for a chain-replicated sequencer whose replicas must agree on every
sequence number.

Only the leader (Ω election, :mod:`repro.core.election`) runs
PROCESS_STABLE and ships stable runs to remote datacenters; it then gossips
``StableTime`` so followers can prune (Alg. 4 lines 12–15).  Leader failure
loses nothing: every op the dead leader had was either announced stable
(followers pruned it *after* it reached remote sites) or is still held by
every surviving replica, and remote receivers deduplicate the overlap a new
leader re-ships.

This is the K=1 replica; the sharded composition (Alg. 4 × K, the same
machinery distributed over each replica's K shards and a
:class:`~repro.core.shard.ReplicatedShardCoordinator`) lives in
:mod:`repro.core.shard`.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..metrics.collector import MetricsHub
from ..sim.env import Environment
from ..sim.process import CostModel, Process
from .config import EunomiaConfig
from .election import OmegaElection
from .messages import (
    ReplicaAlive,
    StableAnnounce,
    StateTransferReply,
    StateTransferRequest,
)
from .service import EunomiaService

__all__ = ["EunomiaReplica"]


class EunomiaReplica(EunomiaService):
    """One member of a replicated Eunomia service."""

    def __init__(self, env: Environment, name: str, site: int,
                 n_partitions: int, config: EunomiaConfig,
                 replica_id: int,
                 ack_cost: float = 0.0,
                 propagate_op_cost: float = 0.0,
                 stab_round_cost: float = 0.0,
                 insert_op_cost: float = 0.0,
                 batch_cost: float = 0.0,
                 heartbeat_cost: float = 0.0,
                 metrics: Optional[MetricsHub] = None,
                 cost_model: Optional[CostModel] = None,
                 tree_factory: Optional[Callable] = None,
                 stable_mark: Optional[str] = None):
        super().__init__(env, name, site, n_partitions, config,
                         propagate_op_cost=propagate_op_cost,
                         stab_round_cost=stab_round_cost,
                         insert_op_cost=insert_op_cost,
                         batch_cost=batch_cost,
                         heartbeat_cost=heartbeat_cost,
                         ack_cost=ack_cost,
                         metrics=metrics, cost_model=cost_model,
                         tree_factory=tree_factory, stable_mark=stable_mark)
        self.replica_id = replica_id
        self.peers: list["EunomiaReplica"] = []
        self.election = OmegaElection(
            self, replica_id,
            alive_interval=config.replica_alive_interval,
            suspect_timeout=config.replica_suspect_timeout,
            on_change=self._leadership_changed,
        )
        self.leadership_log: list[tuple[float, int]] = []
        #: True between an amnesia-crash restore and state-transfer
        #: completion: the replica neither leads nor broadcasts until then
        self._rejoining = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_peers(self, peers: list["EunomiaReplica"]) -> None:
        """Register the other replicas of this Eunomia group."""
        self.peers = [p for p in peers if p is not self]
        self.election.set_peers({p.replica_id: p for p in self.peers})

    def start(self) -> None:
        super().start()
        if not self._rejoining:
            self.election.start()

    # ------------------------------------------------------------------
    # Crash recovery (durability="wal"; see repro.durability)
    # ------------------------------------------------------------------
    def rejoin(self) -> None:
        """Restart after a crash, restoring lost state from the WAL.

        Crash-stop (state intact): equivalent to ``recover() + start()`` —
        the uplinks' Alg. 4 retransmission backfills what was missed.
        Amnesia crash (``crash(lose_state=True)``): the
        :class:`~repro.durability.recovery.RecoveryManager` replays
        checkpoint + log suffix, then a peer state-transfer round adopts
        the survivors' shipped StableTime before the replica re-enters the
        Ω election — so it resumes from a correct floor, not a stale one.
        """
        self.recover()
        if self.state_lost:
            if self.recovery is None:
                raise RuntimeError(
                    f"{self.name}: state was lost in the crash and no "
                    "durable state is attached — rejoin requires "
                    "EunomiaConfig(durability='wal')"
                )
            self.recovery.restore(self)
            self._rejoining = True
        if not self._rejoining:
            self.start()
            return
        # Drive (or re-drive) the state-transfer handshake: a crash that
        # interrupted an earlier transfer window left _rejoining set and
        # killed the pending timeout via the epoch bump, so the handshake
        # must be re-armed here or the replica would never re-enter the
        # election.
        self.start()
        request = StateTransferRequest(self.replica_id)
        for peer in self.peers:
            self.send(peer, request)
        self.after(self.config.state_transfer_timeout,
                   self._state_transfer_timeout)

    def on_state_transfer_request(self, msg: StateTransferRequest,
                                  src: Process) -> None:
        if self._rejoining:
            return  # both down: neither side has floors worth adopting
        self.send(src, StateTransferReply(self.replica_id,
                                          (self.shipped_stable,)))

    def on_state_transfer_reply(self, msg: StateTransferReply,
                                src: Process) -> None:
        if not self._rejoining:
            return
        floor = msg.stable_times[0]
        if floor > self.stable_time:
            self.stable_time = floor
        if floor > self.shipped_stable:
            self.shipped_stable = floor
        # Everything at or below the survivors' shipped floor was delivered
        # remotely while this replica was down — prune instead of re-ship.
        self.buffer.drop_stable(self.stable_time)
        self._complete_rejoin()

    def _state_transfer_timeout(self) -> None:
        # No surviving peer answered: local (checkpoint + WAL) state is the
        # best available — rejoin on it; remote dedup absorbs the re-ships.
        if self._rejoining:
            self._complete_rejoin()

    def _complete_rejoin(self) -> None:
        self._rejoining = False
        # Refresh the failure detector (stale pre-crash sightings would
        # otherwise linger) and resume ReplicaAlive broadcasts.
        self.election.set_peers({p.replica_id: p for p in self.peers})
        self.election.start()

    # ------------------------------------------------------------------
    # Algorithm 4 behaviour (acks + follower pruning are inherited from
    # StabilizerBase._post_batch / on_stable_announce, shared with the
    # sharded replica shape)
    # ------------------------------------------------------------------
    def _should_stabilize(self) -> bool:
        return not self._rejoining and self.election.is_leader()

    def _post_stabilize(self, stable_ts: int, ops: list) -> None:
        # Alg. 4 line 12: tell followers what is stable so they prune.
        if not ops:
            return
        announce = StableAnnounce(stable_ts)
        for peer in self.peers:
            self.send(peer, announce)

    def on_replica_alive(self, msg: ReplicaAlive, src: Process) -> None:
        self.election.on_alive(msg)

    def _leadership_changed(self, leader_id: int) -> None:
        self.leadership_log.append((self.now, leader_id))

    def is_leader(self) -> bool:
        """Whether this replica currently believes it leads the group."""
        return not self._rejoining and self.election.is_leader()
