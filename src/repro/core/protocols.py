"""The protocol registry: one deployment spine, pluggable protocols.

The paper's whole measurement argument is that GentleRain and Cure "are
implemented using the codebase of EunomiaKV", so every measured difference
is protocol, not plumbing.  This module is where that promise lives in
code: a :class:`ProtocolSpec` is a *thin plugin* that contributes only the
protocol-specific pieces of a datacenter —

* its per-partition storage processes,
* its stabilizer/sequencer complex (Eunomia stacks, per-DC sequencers,
  GST aggregation — whatever orders or gates updates), and
* its remote receiver (when the protocol ships an ordered metadata
  stream; ``None`` for the all-to-all designs),

while the shared spine — :class:`repro.geo.datacenter.Datacenter`,
:func:`repro.geo.system.build_geo_system`, and
:func:`repro.core.assembly.build_stabilizer_stack` — owns everything
protocols have in common: the WAN topology, NTP-disciplined clocks, the
consistent-hash ring, closed-loop clients, uplink/relay wiring, metrics,
and failure injection.  Every cross-protocol axis (``buffer_backend``,
:class:`~repro.sim.failure.FailureSchedule`, workload specs, crash
schedules) therefore applies to every protocol by construction.

Plugins register themselves at import time via :func:`register_protocol`;
:func:`get_protocol` lazily imports the module that owns a name, so this
module never imports upward into :mod:`repro.geo` or
:mod:`repro.baselines` at load time (layering stays acyclic).

Registered protocols (the paper's full evaluation matrix):

==============  ========================================================
``eunomia``     EunomiaKV — all four stabilizer shapes of
                :func:`repro.core.assembly.build_stabilizer_stack`
``eventual``    eventually consistent yardstick (zero causal metadata)
``gentlerain``  scalar global stable time (Du et al., SoCC'14)
``cure``        vector global stable time (Akkoorath et al., ICDCS'16)
``sseq``        synchronous per-DC sequencer (plain, or chain-replicated
                via ``chain_length=N``)
``aseq``        the paper's asynchronous-sequencer ablation
==============  ========================================================
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

from ..calibration import Calibration
from ..clocks.physical import PhysicalClock
from ..metrics.collector import MetricsHub
from ..sim.env import Environment
from ..sim.process import Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..clocks.ntp import NtpSynchronizer
    from ..kvstore.ring import ConsistentHashRing
    from .placement import PlacementMap

__all__ = [
    "SiteContext",
    "SitePlan",
    "ProtocolSpec",
    "register_protocol",
    "get_protocol",
    "available_protocols",
    "PROTOCOL_ORDER",
]


@dataclass
class SiteContext:
    """Everything the spine provides a plugin to build one datacenter.

    Created by :class:`repro.geo.datacenter.Datacenter`; plugins consume
    it in :meth:`ProtocolSpec.build_site`.  ``options`` is the normalized
    per-system option dict returned by :meth:`ProtocolSpec.prepare` —
    protocol tunables (``config``, ``timings``, ``pending_backend``,
    ``chain_length``, …) travel through it uniformly.
    """

    env: Environment
    dc_id: int
    n_dcs: int
    n_partitions: int
    ring: "ConsistentHashRing"
    calibration: Calibration
    metrics: MetricsHub
    ntp: Optional["NtpSynchronizer"] = None
    options: dict = field(default_factory=dict)
    #: which partition indices this DC stores (None = full replication)
    placement: Optional["PlacementMap"] = None

    def clock(self) -> PhysicalClock:
        """Draw the next NTP-disciplined physical clock for this site.

        All protocols draw from the same per-DC stream in partition-index
        order, so identical seeds give identical clock ensembles across
        protocols — the frame-sharing guarantee the goldens pin down.
        """
        rng = self.env.rng.stream(f"clocks/dc{self.dc_id}")
        clock = PhysicalClock.random(self.env, rng)
        if self.ntp is not None:
            self.ntp.manage(clock)
        return clock

    def pname(self, index: int) -> str:
        """Canonical partition process name (``dc0/p3``)."""
        return f"dc{self.dc_id}/p{index}"

    def resident(self, index: int) -> bool:
        """Does this DC store partition ``index``? (always True when full)"""
        return (self.placement is None
                or self.placement.is_resident(self.dc_id, index))

    def partial_placement(self) -> Optional["PlacementMap"]:
        """The placement map when genuinely partial, else None.

        Plugins branch on this: the None path must stay byte-identical to
        the pre-placement wiring (the goldens pin it), so ``full`` maps
        normalize to None here.
        """
        pmap = self.placement
        if pmap is None or pmap.is_full():
            return None
        return pmap


@dataclass
class SitePlan:
    """What a plugin built for one datacenter, in deployment-agnostic form.

    The spine starts processes in the order ``partitions → relays →
    extras → receiver`` and, on :meth:`Datacenter.connect`, points every
    propagator at the remote site's receiver (when both exist) and links
    same-index partitions as siblings.
    """

    #: the N storage partitions, index order; must expose ``datastore()``
    partitions: list = field(default_factory=list)
    #: non-partition processes to start after partitions (stabilizers,
    #: sequencers, aggregation helpers); entries without ``start`` are fine
    extras: list = field(default_factory=list)
    #: Algorithm 5-style remote receiver, or None for all-to-all designs
    receiver: Optional[Process] = None
    #: processes that ship ordered stable/metadata streams to remote
    #: receivers (gain every remote receiver as a destination on connect)
    propagators: list = field(default_factory=list)
    #: §5 propagation-tree relays (started between partitions and extras)
    relays: list = field(default_factory=list)
    #: protocol-private stack handle for introspection (Eunomia's
    #: :class:`~repro.core.assembly.StabilizerStack`)
    stack: Any = None


class ProtocolSpec:
    """Base class for protocol plugins.  Subclass, instantiate, register."""

    #: registry key; also the :class:`~repro.geo.system.GeoSystem` label
    name = "?"

    def client_entries(self, n_dcs: int) -> int:
        """Width of the client session vector (0 = no causal metadata)."""
        raise NotImplementedError

    def option_names(self) -> tuple:
        """Every option key the plugin understands.

        The spine rejects anything else up front (``TypeError``), so a
        typo'd tunable — or one meant for a different protocol — fails
        loudly instead of silently running the experiment without it.
        """
        return ()

    def prepare(self, spec, options: dict) -> dict:
        """Normalize/validate per-system options once, before any site is
        built.  Raise ``ValueError``/``TypeError`` on bad combinations."""
        return options

    def build_site(self, site: SiteContext) -> SitePlan:
        """Build the protocol-specific pieces of one datacenter."""
        raise NotImplementedError

    def leader(self, plan: SitePlan):
        """The process currently shipping this site's ordered stream
        (introspection; protocols without one return None)."""
        if plan.stack is not None:
            return plan.stack.leader()
        return plan.propagators[0] if plan.propagators else None


_REGISTRY: dict[str, ProtocolSpec] = {}

#: canonical presentation order (eventual first: it is the normalization
#: baseline of Figures 1 and 5)
PROTOCOL_ORDER = ("eventual", "eunomia", "gentlerain", "cure", "sseq", "aseq")

#: lazily imported module that registers each protocol name
_LAZY_MODULES = {
    "eunomia": "repro.geo.datacenter",
    "eventual": "repro.baselines.eventual",
    "gentlerain": "repro.baselines.gentlerain",
    "cure": "repro.baselines.cure",
    "sseq": "repro.baselines.seqstore",
    "aseq": "repro.baselines.seqstore",
}


def register_protocol(spec: ProtocolSpec) -> ProtocolSpec:
    """Add ``spec`` to the registry (idempotent per name; last wins)."""
    _REGISTRY[spec.name] = spec
    return spec


def get_protocol(name: str) -> ProtocolSpec:
    """Resolve a protocol by name, importing its plugin module on demand."""
    spec = _REGISTRY.get(name)
    if spec is None and name in _LAZY_MODULES:
        importlib.import_module(_LAZY_MODULES[name])
        spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(available_protocols())
        raise ValueError(f"unknown protocol {name!r}; pick one of ({known})")
    return spec


def available_protocols() -> tuple[str, ...]:
    """Every resolvable protocol name, canonical order first."""
    names = set(_LAZY_MODULES) | set(_REGISTRY)
    ordered = [n for n in PROTOCOL_ORDER if n in names]
    ordered.extend(sorted(names - set(ordered)))
    return tuple(ordered)
