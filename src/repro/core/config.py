"""Tunables of the Eunomia protocol stack.

Defaults mirror the paper's evaluation: partitions contact Eunomia every
millisecond (batching, §5/§7.1), Eunomia computes stability every few
milliseconds (θ), receivers poll pending queues every millisecond (ρ), and
heartbeats fire when a partition has been idle for Δ = one batching interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EunomiaConfig"]


@dataclass
class EunomiaConfig:
    """Protocol timing and feature switches (times in seconds)."""

    #: Partition → Eunomia batching interval (§5); the straggler experiment
    #: (Fig. 7) inflates this on one partition to 10/100/1000 ms.
    batch_interval: float = 0.001

    #: Idle-partition heartbeat threshold Δ (Alg. 2 line 11).  A heartbeat is
    #: sent when the physical clock is Δ ahead of the last update timestamp.
    heartbeat_interval: float = 0.001

    #: θ — period of Eunomia's PROCESS_STABLE (Alg. 3 line 7).
    stabilization_interval: float = 0.005

    #: ρ — period of the receiver's CHECK_PENDING (Alg. 5 line 3).
    receiver_check_interval: float = 0.001

    #: Ship update payloads partition→sibling-partition, metadata-only
    #: through Eunomia (§5 "Separation of Data and Metadata").
    separate_data_metadata: bool = True

    #: Number of Eunomia replicas.  1 with ``fault_tolerant=False`` is the
    #: plain Algorithm 3 service; with ``fault_tolerant=True`` the Alg. 4
    #: ack/resend machinery runs even for a single replica.
    n_replicas: int = 1
    fault_tolerant: bool = False

    #: Upper bound on ops per AddOpBatch: bounds the cost of resending to a
    #: slow or dead replica (at-least-once delivery stays correct; a lagging
    #: replica simply catches up over more batches).
    max_batch_ops: int = 1000

    #: Retransmission timeout for the fault-tolerant uplink: the unacked
    #: suffix is resent only when acknowledgements from a replica stall for
    #: this long.  Without it, a saturated (slow-acking) leader would
    #: trigger full-window retransmissions every batch tick — a positive
    #: feedback loop no real implementation would ship.
    resend_timeout: float = 0.05

    #: Retry-with-backoff shape shared by the recovery idioms (uplink
    #: retransmission escalation, failed-fsync commit retries, sequencer
    #: request retries): each consecutive failure doubles the wait, capped.
    #: The cap is the *bounded timeout* — no retry loop ever waits longer,
    #: so recovery latency after the fault clears is bounded by it.
    retry_backoff_base: float = 0.002
    retry_backoff_cap: float = 0.1

    #: Sequencer-request retry timeout: a partition (or load client) that
    #: has waited this long for a SeqReply re-issues the request — to the
    #: next sequencer-group member, round-robin, with the backoff above —
    #: closing the "sequencer crash strands every in-flight request" stall.
    seq_retry_timeout: float = 0.05

    #: Ω failure-detector timing for replica leader election.
    replica_alive_interval: float = 0.5
    replica_suspect_timeout: float = 1.6

    #: §5 propagation tree: partitions send to interior relays that coalesce
    #: a flush window of batches/heartbeats into one message for Eunomia.
    use_propagation_tree: bool = False
    tree_fanout: int = 8
    tree_flush_interval: float = 0.001

    #: Sharded stabilization: split the datacenter's partitions across K
    #: :class:`~repro.core.shard.EunomiaShard` workers plus a merging
    #: :class:`~repro.core.shard.ShardCoordinator`.  ``1`` is the paper's
    #: single sequential stabilizer (plain :class:`EunomiaService`).
    #: Composes with ``fault_tolerant=True``: the whole K-shard pipeline is
    #: then replicated ``n_replicas`` times (Alg. 4 × K shards) — each
    #: replica runs its own shards behind a
    #: :class:`~repro.core.shard.ReplicatedShardCoordinator`, partitions
    #: stream to every replica's owning shard, and only the Ω-elected
    #: leader merges and ships stable runs.
    n_shards: int = 1

    #: Partition → shard assignment: ``"stride"`` (round-robin, p % K) or
    #: ``"block"`` (contiguous ranges).  See :class:`~repro.core.shard.ShardMap`.
    shard_policy: str = "stride"

    #: Durability of stabilizer state: ``"none"`` (crash-stop with perfect
    #: memory — a recovered replica restarts with its protocol state intact)
    #: or ``"wal"`` — every stabilizer keeps a write-ahead log of accepted
    #: ops (group-commit fsyncs on a disk lane; fault-tolerant replicas ack
    #: batches only after the covering flush) plus periodic checkpoints, so
    #: an *amnesia* crash (``crash(lose_state=True)``) can be recovered by
    #: checkpoint + log replay and a peer state-transfer rejoin.  See
    #: :mod:`repro.durability`.
    durability: str = "none"

    #: Period of the checkpoint/WAL-truncation tick (``durability="wal"``):
    #: the dial between steady-state checkpoint writes and recovery replay
    #: length.
    checkpoint_interval: float = 0.25

    #: WAL record codec (``durability="wal"``): ``"delta"`` frames each
    #: record as a tag + varints (timestamp delta-encoded against the
    #: previous record) + an 8-byte content digest, shrinking group-commit
    #: fsync payloads to roughly a tenth of the ``"full"`` frames (op
    #: metadata + fixed 16-byte framing).  Accounting-only: replay and
    #: truncation are codec-agnostic.
    wal_codec: str = "delta"

    #: How long a rejoining replica waits for a peer's StateTransferReply
    #: before giving up and re-entering the election on its local
    #: (checkpoint + WAL) state alone — the no-surviving-peer path.
    state_transfer_timeout: float = 0.5

    #: Receiver apply-pipeline depth (Alg. 5 dataplane): ``1`` is the
    #: stop-and-wait default — one in-flight ``ApplyRemote`` per origin,
    #: the golden-pinned historical behaviour.  ``P > 1`` lets the receiver
    #: release up to P consecutive dependency-satisfied head ops of one
    #: origin bound for the *same* local partition as a single
    #: ``ApplyRemoteRun`` frame, acknowledged with one batched
    #: ``ApplyRemoteOkRun`` — in-order within the origin either way, so
    #: causality (condition 1 of Alg. 5 line 12) is preserved.
    receiver_pipeline: int = 1

    #: Unstable-op buffer strategy: ``"runs"`` (per-origin monotone runs,
    #: O(1) ingestion + k-way-merge FIND_STABLE — safe because Alg. 3's
    #: PartitionTime dedup guarantees per-partition monotone inserts),
    #: ``"rbtree"`` (the paper's §6 structure), or ``"avl"`` (ablation).
    #: All three emit bit-identical stable serializations.
    buffer_backend: str = "runs"

    def validate(self) -> None:
        """Sanity-check interval relationships; raises ValueError."""
        if self.n_replicas < 1:
            raise ValueError("need at least one Eunomia replica")
        if self.n_replicas > 1 and not self.fault_tolerant:
            raise ValueError("multiple replicas require fault_tolerant=True")
        for name in ("batch_interval", "heartbeat_interval",
                     "stabilization_interval", "receiver_check_interval"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.replica_suspect_timeout <= self.replica_alive_interval:
            raise ValueError("suspect timeout must exceed the alive interval")
        if self.retry_backoff_base <= 0:
            raise ValueError("retry backoff base must be positive")
        if self.retry_backoff_cap < self.retry_backoff_base:
            raise ValueError("retry backoff cap must be >= the base")
        if self.seq_retry_timeout <= 0:
            raise ValueError("sequencer retry timeout must be positive")
        if self.use_propagation_tree and self.fault_tolerant:
            raise ValueError(
                "the propagation tree coalesces the uplink, which is "
                "incompatible with per-replica acknowledgement tracking; "
                "use one or the other"
            )
        if self.tree_fanout < 1:
            raise ValueError("tree fanout must be at least 1")
        if self.n_shards < 1:
            raise ValueError("need at least one Eunomia shard")
        if self.durability not in ("none", "wal"):
            raise ValueError(
                f"unknown durability mode {self.durability!r} "
                "(expected 'none' or 'wal')"
            )
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        from ..durability.wal import WAL_CODECS

        if self.wal_codec not in WAL_CODECS:
            raise ValueError(
                f"unknown WAL codec {self.wal_codec!r} "
                f"(expected one of {', '.join(WAL_CODECS)})"
            )
        if self.state_transfer_timeout <= 0:
            raise ValueError("state transfer timeout must be positive")
        if self.receiver_pipeline < 1:
            raise ValueError("receiver pipeline depth must be at least 1")
        if self.shard_policy not in ("stride", "block"):
            raise ValueError(
                f"unknown shard policy {self.shard_policy!r} "
                "(expected 'stride' or 'block')"
            )
        from ..datastruct.opbuffer import BUFFER_BACKENDS

        if self.buffer_backend not in BUFFER_BACKENDS:
            raise ValueError(
                f"unknown buffer backend {self.buffer_backend!r} "
                f"(expected one of {', '.join(BUFFER_BACKENDS)})"
            )
