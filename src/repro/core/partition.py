"""An Eunomia-aware storage partition (Algorithm 2, extended per §4 and §5).

One instance models one logical Riak partition.  Responsibilities:

* serve client reads/updates, timestamping updates with the hybrid clock —
  local vector entry ``max(Clock_n, MaxTs_n+1, VClock_c[m]+1)``, remote
  entries copied from the client's vector (§4 "Update");
* feed committed updates to the local Eunomia service through an
  :class:`repro.core.uplink.EunomiaUplink` (batched, acked, heartbeats);
* ship update *payloads* directly to sibling partitions in remote
  datacenters (§5 separation of data and metadata), so Eunomia only ever
  orders lightweight identifiers;
* execute remote updates handed over by the local receiver (Alg. 5 line 14),
  pairing metadata with the out-of-band payload, installing the version
  under convergent LWW, and recording visibility metrics.

Visibility accounting follows §7.2.2 exactly: the *extra* delay of a remote
update is measured from the moment its payload arrived at this datacenter to
the moment it executes here; network transit is factored out.
"""

from __future__ import annotations

from typing import Optional

from ..calibration import Calibration
from ..clocks.hlc import HybridLogicalClock
from ..clocks.physical import PhysicalClock
from ..clocks.vector import vc_zero
from ..kvstore.storage import VersionedStore
from ..kvstore.types import Update, Versioned
from ..metrics.collector import MetricsHub, NullMetrics
from ..sim.env import Environment
from ..sim.process import CostModel, Process
from .config import EunomiaConfig
from .messages import (
    ApplyRemote,
    ApplyRemoteOk,
    ApplyRemoteOkRun,
    ApplyRemoteRun,
    BatchAck,
    ClientRead,
    ClientReadReply,
    ClientUpdate,
    ClientUpdateReply,
    RemoteData,
)

__all__ = ["EunomiaPartition"]


class EunomiaPartition(Process):
    """Partition p_n^m: local storage + Eunomia uplink + remote execution."""

    def __init__(self, env: Environment, name: str, dc_id: int, index: int,
                 n_dcs: int, clock: PhysicalClock, config: EunomiaConfig,
                 calibration: Optional[Calibration] = None,
                 metrics: Optional[MetricsHub] = None,
                 cost_model: Optional[CostModel] = None):
        cal = calibration or Calibration()
        if cost_model is None:
            cost_model = CostModel(costs={
                "ClientRead": cal.cost("partition_read"),
                "ClientUpdate": (cal.cost("partition_update")
                                 + cal.cost("eunomia_update_extra")),
                "ApplyRemote": cal.cost("partition_apply_remote"),
                "ApplyRemoteRun":
                    lambda msg: (cal.cost("partition_apply_remote")
                                 * len(msg.updates)),
                "RemoteData": cal.cost("partition_remote_data"),
            })
        super().__init__(env, name, site=dc_id, cost_model=cost_model)
        self.dc_id = dc_id
        self.index = index
        self.n_dcs = n_dcs
        self.config = config
        self.metrics = metrics or NullMetrics()
        self.clock = clock
        self.hlc = HybridLogicalClock(clock)
        self.store = VersionedStore()
        #: mutable so the straggler injector (Fig. 7) can inflate it live
        self.batch_interval = config.batch_interval
        self.uplink = EunomiaUplinkFactory.build(self, cal)
        self.siblings: dict[int, Process] = {}   # remote dc -> sibling part.
        #: vector returned for never-written keys (protocol metadata width)
        self.zero_vts = vc_zero(n_dcs)
        self._seq = 0
        self._pending_data: dict[tuple, tuple[Update, float]] = {}
        self._pending_apply: dict[tuple, tuple[Update, Process]] = {}
        #: run suffix chained behind a data-pending member (pipelined
        #: ApplyRemoteRun): resumes, in order, when that member's data lands
        self._pending_run: dict[tuple, tuple[Update, ...]] = {}
        self.local_updates = 0
        self.remote_applies = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_eunomia(self, replicas: list[Process]) -> None:
        """Point the uplink at the local Eunomia service/replica set."""
        self.uplink.set_replicas(replicas)

    def set_sibling(self, dc_id: int, partition: Process) -> None:
        """Register the same-index partition of a remote datacenter."""
        if dc_id != self.dc_id:
            self.siblings[dc_id] = partition

    def start(self) -> None:
        self.uplink.start()

    def recover(self) -> None:
        """Restart after a crash-stop *and re-arm the uplink tick*.

        The crash epoch retired the uplink's periodic flush; without this
        override a recovered partition would accept client updates but
        never ship them, freezing its entry of PartitionTime — and with it
        the whole DC's StableTime — forever (the uplink single-point
        stall).  ``restart`` also resets retransmission backoff so
        outstanding windows are re-offered to the replicas immediately.
        """
        super().recover()
        self.uplink.restart()

    def lane_of(self, msg) -> str:
        """Remote replication work runs on a background lane.

        Real stores apply replicated updates on separate scheduler threads;
        queueing them behind foreground client operations would inflate
        visibility latency far beyond anything the paper measures.
        """
        if type(msg).__name__ in ("ApplyRemote", "ApplyRemoteRun",
                                  "RemoteData"):
            return "replication"
        return "cpu"

    # ------------------------------------------------------------------
    # Client operations (Algorithm 2, vector form of §4)
    # ------------------------------------------------------------------
    def on_client_read(self, msg: ClientRead, src: Process) -> None:
        version = self.store.get(msg.key)
        if version is None:
            reply = ClientReadReply(msg.key, None, self.zero_vts,
                                    msg.request_id)
        else:
            reply = ClientReadReply(msg.key, version.value, version.vts,
                                    msg.request_id)
        self.send(src, reply)

    def on_client_update(self, msg: ClientUpdate, src: Process) -> None:
        m = self.dc_id
        client_vts = msg.client_vts
        # Local entry: max(Clock_n, MaxTs_n+1, VClock_c[m]+1) — Alg. 2 l.5.
        ts = self.hlc.update(client_vts[m])
        vts = client_vts[:m] + (ts,) + client_vts[m + 1:]
        self._seq += 1
        update = Update(
            key=msg.key, value=msg.value, origin_dc=m,
            partition_index=self.index, seq=self._seq, ts=ts, vts=vts,
            commit_time=self.now, value_bytes=msg.value_bytes,
        )
        self.store.put(msg.key, Versioned(msg.value, ts, m, vts))
        self.local_updates += 1
        tracer = self.metrics.tracer
        if tracer is not None:
            # issued_at == 0.0 means "not threaded" (senders other than
            # SessionClient); the span then opens at commit.
            issued = msg.issued_at if msg.issued_at > 0.0 else None
            span = tracer.commit(update, self.now, issued_at=issued)
            if span is not None and self.siblings:
                tracer.stage(update, "replicate", self.now, m)
        if self.config.separate_data_metadata:
            # §5: Eunomia orders identifiers; payloads go partition→sibling.
            self.uplink.record(update.with_value(None))
            data = RemoteData(update)
            self.multicast(self.siblings.values(), data)
        else:
            self.uplink.record(update)
        self.send(src, ClientUpdateReply(vts, msg.request_id))

    # ------------------------------------------------------------------
    # Remote update execution (Alg. 5 line 14 + §5 data pairing)
    # ------------------------------------------------------------------
    def on_remote_data(self, msg: RemoteData, src: Process) -> None:
        update = msg.update
        waiting = self._pending_apply.pop(update.uid, None)
        if waiting is not None:
            # Metadata got here first: execute now; extra delay is zero
            # because execution is immediate upon data arrival.
            meta, receiver = waiting
            self._execute_remote(meta.with_value(update.value),
                                 data_arrival=self.now, receiver=receiver)
            # A pipelined run parked behind this member resumes now — in
            # order, so condition (1) of Alg. 5 line 12 stays intact.
            rest = self._pending_run.pop(meta.uid, None)
            if rest is not None:
                self._apply_run(rest, receiver)
        else:
            self._pending_data[update.uid] = (update, self.now)

    def on_apply_remote(self, msg: ApplyRemote, src: Process) -> None:
        update = msg.update
        if update.value is None:
            held = self._pending_data.pop(update.uid, None)
            if held is None:
                # Payload still in flight; pair it up on arrival.
                self._pending_apply[update.uid] = (update, src)
                return
            data, arrival = held
            # Ordering metadata (vts, commit time) always comes from the
            # receiver's copy — payloads may have been shipped before the
            # final stamp was known (S-Seq ships at request time).
            self._execute_remote(update.with_value(data.value),
                                 data_arrival=arrival, receiver=src)
        else:
            self._execute_remote(update, data_arrival=self.now, receiver=src)

    def on_apply_remote_run(self, msg: ApplyRemoteRun, src: Process) -> None:
        """Pipelined release (``receiver_pipeline > 1``): apply a run.

        Members execute strictly in run order.  Hitting a member whose §5
        payload has not arrived stops the run: that member parks in
        ``_pending_apply`` as usual and the *remaining* suffix is chained
        behind it in ``_pending_run`` — executing later members first would
        make an effect visible without its same-origin causal prefix.  The
        executed prefix acknowledges as one :class:`ApplyRemoteOkRun`;
        parked members ack individually when their data lands.
        """
        self._apply_run(msg.updates, src)

    def _apply_run(self, updates: tuple, src: Process) -> None:
        done = []
        now = self.now
        for i, update in enumerate(updates):
            if update.value is None:
                held = self._pending_data.pop(update.uid, None)
                if held is None:
                    self._pending_apply[update.uid] = (update, src)
                    rest = updates[i + 1:]
                    if rest:
                        self._pending_run[update.uid] = rest
                    break
                data, arrival = held
                self._execute_remote(update.with_value(data.value),
                                     data_arrival=arrival, receiver=src,
                                     ack=False)
            else:
                self._execute_remote(update, data_arrival=now, receiver=src,
                                     ack=False)
            done.append(update.uid)
        if done:
            self.send(src, ApplyRemoteOkRun(tuple(done)))

    def _execute_remote(self, update: Update, data_arrival: float,
                        receiver: Process, ack: bool = True) -> None:
        self.store.put(update.key, Versioned(update.value, update.ts,
                                             update.origin_dc, update.vts))
        self.remote_applies += 1
        now = self.now
        extra_ms = max(0.0, (now - data_arrival) * 1e3)
        total_ms = (now - update.commit_time) * 1e3
        k, m = update.origin_dc, self.dc_id
        self.metrics.point(f"vis_extra_ms:{k}->{m}", now, extra_ms)
        self.metrics.point(f"vis_total_ms:{k}->{m}", now, total_ms)
        # Per-origin-partition breakdown: the straggler experiment (Fig. 7)
        # distinguishes updates born on healthy partitions from the
        # straggler's own.
        self.metrics.point(
            f"vis_extra_ms:{k}->{m}:p{update.partition_index}", now, extra_ms)
        tracer = self.metrics.tracer
        if tracer is not None:
            tracer.stage_once(update, "visible", now, m)
        slo = self.metrics.slo
        if slo is not None:
            slo.visibility(k, m, total_ms, extra_ms)
        if ack:
            self.send(receiver, ApplyRemoteOk(update.uid))

    # ------------------------------------------------------------------
    # Uplink plumbing
    # ------------------------------------------------------------------
    def on_batch_ack(self, msg: BatchAck, src: Process) -> None:
        self.uplink.on_ack(msg, src)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def datastore(self) -> VersionedStore:
        """The store used for convergence checks (client-visible data)."""
        return self.store


class EunomiaUplinkFactory:
    """Builds the uplink with calibrated costs (split for test override)."""

    @staticmethod
    def build(partition: EunomiaPartition, cal: Calibration):
        from .uplink import EunomiaUplink

        return EunomiaUplink(
            host=partition,
            partition_index=partition.index,
            config=partition.config,
            hlc=partition.hlc,
            clock=partition.clock,
            op_cost=cal.cost("uplink_op"),
            batch_cost=cal.overhead("uplink_batch"),
        )
