"""Ω-style leader election among Eunomia replicas (Alg. 4 lines 7–10).

The paper (§3.3) only needs an *eventual* leader — Algorithm 4 guards
PROCESS_STABLE with "if leader(r_m)" (line 8) but correctness never depends
on leader uniqueness (duplicated propagation is deduplicated by receivers),
the leader merely saves network resources.  Any Ω failure detector works; we
implement the classic heartbeat construction:

* every replica broadcasts ``ReplicaAlive`` every ``alive_interval`` seconds;
* a peer is *suspected* after ``suspect_timeout`` seconds of silence;
* the leader is the lowest-id unsuspected replica.

At start-up all peers are optimistically trusted (as if a heartbeat had just
been seen), so replica 0 is everyone's initial leader and there is no
duplicate propagation during boot.

Two hosts embed this helper: :class:`repro.core.replica.EunomiaReplica`
(the paper's K=1 replica group) and
:class:`repro.core.shard.ReplicatedShardCoordinator` (the merge head of a
K-sharded replica group) — in both, ``is_leader()`` gates serialization
and ``on_change`` timestamps failovers for the figures.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.process import Process
from .messages import ReplicaAlive

__all__ = ["OmegaElection"]


class OmegaElection:
    """Heartbeat failure detector + min-id leader rule (composition helper).

    The host process must route ``ReplicaAlive`` messages to
    :meth:`on_alive` and may register ``on_change`` to observe leadership
    transitions (used by the metrics layer to timestamp failovers).
    """

    def __init__(self, host: Process, replica_id: int,
                 alive_interval: float, suspect_timeout: float,
                 on_change: Optional[Callable[[int], None]] = None):
        self.host = host
        self.replica_id = replica_id
        self.alive_interval = alive_interval
        self.suspect_timeout = suspect_timeout
        self.on_change = on_change
        self._peers: dict[int, Process] = {}      # replica_id -> process
        self._last_seen: dict[int, float] = {}
        self._last_leader: Optional[int] = None

    def set_peers(self, peers: dict[int, Process]) -> None:
        """Register the other replicas (id → process), excluding the host."""
        self._peers = dict(peers)
        # Optimistic boot: trust everyone as of now, so the min-id replica
        # is the unique initial leader everywhere.
        self._last_seen = {rid: self.host.now for rid in self._peers}

    def start(self) -> None:
        self.host.periodic(self.alive_interval, self._broadcast, phase=0.0)

    def _broadcast(self) -> None:
        beat = ReplicaAlive(self.replica_id)
        self.host.multicast(self._peers.values(), beat)
        self._check_change()

    def on_alive(self, msg: ReplicaAlive) -> None:
        self._last_seen[msg.replica_id] = self.host.now
        self._check_change()

    def leader_id(self) -> int:
        """Lowest-id replica not currently suspected (self is never)."""
        now = self.host.now
        alive = [self.replica_id]
        for rid, seen in self._last_seen.items():
            if now - seen < self.suspect_timeout:
                alive.append(rid)
        return min(alive)

    def is_leader(self) -> bool:
        return self.leader_id() == self.replica_id

    def _check_change(self) -> None:
        current = self.leader_id()
        if current != self._last_leader:
            self._last_leader = current
            if self.on_change is not None:
                self.on_change(current)
