"""Eunomia: the paper's primary contribution.

* :class:`EunomiaService` — Algorithm 3, the unobtrusive site-wide orderer.
* :class:`EunomiaReplica` — Algorithm 4, its fault-tolerant form (prefix
  property + Ω leader election).
* :class:`EunomiaPartition` — Algorithm 2 partitions with hybrid-clock
  timestamping, batching, heartbeats, and §5's data/metadata separation.
* :class:`SessionClient` — Algorithm 1 client sessions (vector form of §4).
* :class:`EunomiaConfig` — protocol timing knobs.
"""

from .assembly import StabilizerStack, build_stabilizer_stack
from .client import SessionClient
from .config import EunomiaConfig
from .election import OmegaElection
from .messages import (
    AddOpBatch,
    ApplyRemote,
    ApplyRemoteOk,
    BatchAck,
    ClientRead,
    ClientReadReply,
    ClientUpdate,
    ClientUpdateReply,
    PartitionHeartbeat,
    RemoteData,
    RemoteStableBatch,
    ReplicaAlive,
    ShardStableBatch,
    ShardStableVector,
    StableAnnounce,
    StateTransferReply,
    StateTransferRequest,
)
from .partition import EunomiaPartition
from .protocols import (
    ProtocolSpec,
    SiteContext,
    SitePlan,
    available_protocols,
    get_protocol,
    register_protocol,
)
from .tree import CombinedBatch, TreeRelay
from .replica import EunomiaReplica
from .service import EunomiaService, StabilizerBase
from .shard import (
    EunomiaShard,
    ReplicatedShardCoordinator,
    ShardCoordinator,
    ShardMap,
    ShardedReplicaGroup,
)
from .uplink import EunomiaUplink

__all__ = [
    "EunomiaConfig",
    "EunomiaService",
    "EunomiaReplica",
    "StabilizerBase",
    "EunomiaShard",
    "ShardCoordinator",
    "ReplicatedShardCoordinator",
    "ShardedReplicaGroup",
    "ShardMap",
    "StabilizerStack",
    "build_stabilizer_stack",
    "EunomiaPartition",
    "EunomiaUplink",
    "SessionClient",
    "OmegaElection",
    "TreeRelay",
    "CombinedBatch",
    "ProtocolSpec",
    "SiteContext",
    "SitePlan",
    "register_protocol",
    "get_protocol",
    "available_protocols",
    "AddOpBatch",
    "ApplyRemote",
    "ApplyRemoteOk",
    "BatchAck",
    "ClientRead",
    "ClientReadReply",
    "ClientUpdate",
    "ClientUpdateReply",
    "PartitionHeartbeat",
    "RemoteData",
    "RemoteStableBatch",
    "ReplicaAlive",
    "ShardStableBatch",
    "ShardStableVector",
    "StableAnnounce",
    "StateTransferRequest",
    "StateTransferReply",
]
