"""The partition → Eunomia shipping lane (Alg. 2 lines 8–12, §3.3, §5).

Every Eunomia-aware partition (and the §7.1 partition emulators) owns an
:class:`EunomiaUplink`, which encapsulates:

* **batching** (§5): locally committed updates accumulate and are shipped
  once per ``batch_interval`` — off the client's critical path, which is
  precisely why Eunomia can batch while sequencers cannot;
* **heartbeats** (Alg. 2 lines 10–12): when the partition has been idle for
  Δ and its physical clock has caught up with the hybrid clock, a heartbeat
  advances ``PartitionTime`` at the service;
* **fault-tolerant delivery** (Alg. 4 lines 1–6, prefix property): with
  ``fault_tolerant=True`` the uplink tracks, per replica, the highest
  acknowledged timestamp (``Ack_n[f]``, line 5) and retransmits the
  unacknowledged suffix when acks stall (line 6) — at-least-once delivery
  over lossy links, with resends charged almost no sender CPU (the
  serialized run is reused).  The targets are opaque processes: in a
  K-sharded replica group they are the partition's *owning shard in every
  replica* (:meth:`repro.core.assembly.StabilizerStack.uplink_targets`),
  so each (partition → shard) stream gets the prefix property
  independently — the invariant the sharded failover argument rests on.

The straggler experiment (Figure 7) works by inflating the *host's*
``batch_interval`` attribute, which the uplink re-reads before every tick.
"""

from __future__ import annotations

import bisect
from typing import Optional

from ..clocks.hlc import HybridLogicalClock
from ..clocks.physical import PhysicalClock
from ..datastruct.opblock import OpBlock, OpRunBuilder
from ..kvstore.types import Update
from ..sim.process import Process
from .config import EunomiaConfig
from .messages import AddOpBatch, BatchAck, PartitionHeartbeat

__all__ = ["EunomiaUplink"]


class EunomiaUplink:
    """Batching/ack/heartbeat state machine bound to a host process.

    The host must expose a mutable ``batch_interval`` attribute (seconds).

    Pending state is columnar (:class:`OpRunBuilder`): ``record`` appends
    to parallel arrays, a shipping window is cut as an :class:`OpBlock`
    with column slices, and the resulting frame — wire size included — is
    cached per ``(window, prev_ts, resend)`` so a retransmission to a
    stalled replica (Alg. 4's ``Ack_n[f]`` resend) re-ships the already
    serialized columnar run with near-zero sender CPU.
    """

    def __init__(self, host: Process, partition_index: int,
                 config: EunomiaConfig, hlc: HybridLogicalClock,
                 clock: PhysicalClock, op_cost: float, batch_cost: float):
        self.host = host
        self.partition_index = partition_index
        self.config = config
        self.hlc = hlc
        self.clock = clock
        self.op_cost = op_cost
        self.batch_cost = batch_cost
        self.replicas: list[Process] = []
        #: columnar pending run, ascending ts (hlc is monotone)
        self._pending = OpRunBuilder(partition_index)
        self._ack: dict[int, int] = {}         # replica pid -> Ack_n[f]
        self._sent: dict[int, int] = {}        # replica pid -> max ts ever sent
        self._retx_due: dict[int, float] = {}  # replica pid -> next retx time
        self._retx_strikes: dict[int, int] = {}  # consecutive unacked resends
        self._nonft_last_sent = 0              # stream position, non-FT mode
        #: serialized-frame cache: (first_ts, last_ts, prev_ts, resend) ->
        #: AddOpBatch — cleared whenever the acked prefix is pruned
        self._frames: dict[tuple, AddOpBatch] = {}
        self._tick_task = None
        self.ops_shipped = 0
        self.retransmissions = 0
        self.frames_reused = 0
        self.heartbeats_sent = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_replicas(self, replicas: list[Process]) -> None:
        self.replicas = list(replicas)
        for replica in replicas:
            self._ack.setdefault(replica.pid, 0)
            self._sent.setdefault(replica.pid, 0)
            self._retx_due.setdefault(replica.pid, float("inf"))
            self._retx_strikes.setdefault(replica.pid, 0)

    def start(self) -> None:
        """Arm the periodic batch/heartbeat tick.

        The interval is a callable re-reading ``host.batch_interval`` before
        every re-arm, so the Figure 7 straggler injector's runtime mutation
        takes effect on the next tick — the behaviour the old hand-rolled
        reschedule chain provided.
        """
        self._tick_task = self.host.periodic(
            lambda: self.host.batch_interval, self._flush)

    def restart(self) -> None:
        """Re-arm after the host recovers from a crash.

        The host's crash epoch retired the old tick chain, so a recovered
        partition that never calls this ships nothing ever again — the
        uplink single-point stall.  No-op for hosts that never armed the
        tick (S-Seq partitions ship through the sequencer instead).

        Retransmission state is reset to *probe promptly*: any replica with
        an outstanding window is due for retransmission immediately and the
        backoff escalation starts over, so a peer that recovered while this
        host was down is re-fed within one batch tick instead of one
        (escalated) stall timeout.
        """
        if self._tick_task is None:
            return
        self._tick_task.stop()
        now = self.host.now
        for pid, due in self._retx_due.items():
            self._retx_strikes[pid] = 0
            if due != float("inf"):
                self._retx_due[pid] = now
        self.start()

    def _stall_timeout(self, pid: int) -> float:
        """Current retransmission timeout for a replica: the configured
        resend timeout, doubling per consecutive unacknowledged resend up
        to the bounded-backoff cap — a dead or partitioned replica is
        probed ever more gently, never abandoned, and the cap bounds how
        stale the probe cadence can be when the replica returns."""
        strikes = self._retx_strikes.get(pid, 0)
        base = self.config.resend_timeout
        if not strikes:
            return base
        return min(base * (1 << strikes),
                   max(base, self.config.retry_backoff_cap))

    # ------------------------------------------------------------------
    # Producer side (called by the host partition)
    # ------------------------------------------------------------------
    def record(self, op: Update) -> None:
        """Queue a locally committed update for shipping.

        Timestamps arrive in increasing order because the host's hybrid
        clock is strictly monotone (Property 2).
        """
        ts_col = self._pending.ts
        if ts_col and op.ts <= ts_col[-1]:
            raise ValueError(
                f"non-monotone uplink timestamps: {op.ts} after "
                f"{ts_col[-1]} (Property 2 violated by host)"
            )
        self._pending.append(op)

    def on_ack(self, msg: BatchAck, src: Process) -> None:
        """Handle a replica's cumulative acknowledgement (Alg. 4 line 5)."""
        if msg.ack_ts > self._ack.get(src.pid, 0):
            self._ack[src.pid] = msg.ack_ts
            # Progress resets the retransmission clock (and the backoff
            # escalation): retransmit only when a replica's
            # acknowledgements actually stall.
            self._retx_strikes[src.pid] = 0
            if self._ack[src.pid] >= self._sent.get(src.pid, 0):
                self._retx_due[src.pid] = float("inf")
            else:
                self._retx_due[src.pid] = (self.host.now
                                           + self.config.resend_timeout)
        self._prune()

    # ------------------------------------------------------------------
    # Periodic shipping
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        if not self.replicas:
            return
        if self.config.fault_tolerant:
            for replica in self.replicas:
                self._ship_suffix(replica)
            self._prune()
        else:
            pending = self._pending
            if pending:
                block = pending.cut(0)
                pending.drop_prefix(len(pending))
                self._transmit(self.replicas[0], block, n_new=len(block),
                               prev_ts=self._nonft_last_sent)
                self._nonft_last_sent = block.ts[-1]
        self._maybe_heartbeat()

    def _ship_suffix(self, replica: Process) -> None:
        """Ship new ops; retransmit the unacked window only on ack stall."""
        pid = replica.pid
        ack = self._ack[pid]
        sent = self._sent[pid]
        retransmit = (ack < sent
                      and self.host.now >= self._retx_due[pid])
        start_from = ack if retransmit else sent
        ts_col = self._pending.ts
        start = bisect.bisect_right(ts_col, start_from)
        if start >= len(ts_col):
            return
        end = min(len(ts_col), start + self.config.max_batch_ops)
        last_ts = ts_col[end - 1]
        # New ops in the window counted by bisection (ts ascending): the
        # suffix above this replica's high-water ``sent`` mark.
        n_new = end - bisect.bisect_right(ts_col, sent, start, end)
        if retransmit:
            self.retransmissions += 1
            self._retx_strikes[pid] = self._retx_strikes.get(pid, 0) + 1
        if last_ts > sent:
            self._sent[pid] = last_ts
        # Arm the stall timer for the *oldest* unacked transmission: only
        # when idle (nothing was outstanding) or when the timer just fired.
        # Re-arming on every send would let a steady stream of new batches
        # postpone recovery of a lost one indefinitely.  The timeout
        # escalates with consecutive fruitless resends (capped backoff), so
        # a long-dead replica is not blasted with the full window every
        # resend_timeout.
        if retransmit or self._retx_due[pid] == float("inf"):
            self._retx_due[pid] = self.host.now + self._stall_timeout(pid)
        # Frame reuse: identical windows — the common case for
        # retransmissions and for the R-replica fan-out of one tick — ship
        # the same serialized AddOpBatch object (immutable column
        # snapshots), so only the first build pays the column slices.
        frame_key = (ts_col[start], last_ts, start_from, n_new == 0)
        frame = self._frames.get(frame_key)
        if frame is None:
            frame = AddOpBatch(self.partition_index,
                               self._pending.cut(start, end),
                               prev_ts=start_from, resend=(n_new == 0))
            self._frames[frame_key] = frame
        else:
            self.frames_reused += 1
        self._transmit(replica, frame, n_new)

    def _transmit(self, replica: Process, batch, n_new: int,
                  prev_ts: int = 0) -> None:
        if not isinstance(batch, AddOpBatch):
            batch = AddOpBatch(self.partition_index, batch, prev_ts=prev_ts,
                               resend=(n_new == 0))
        cost = self.batch_cost + self.op_cost * n_new
        self.ops_shipped += n_new
        metrics = getattr(self.host, "metrics", None)
        tracer = metrics.tracer if metrics is not None else None
        if tracer is not None:
            # stage_once: retransmissions re-ship the same window; only
            # the first departure is the pipeline latency
            now, site = self.host.now, self.host.site
            for op in batch.ops:
                tracer.stage_once(op, "uplink_ship", now, site)
        self.host._enqueue(lambda: self.host.send(replica, batch), cost)

    def _prune(self) -> None:
        """Drop the prefix acknowledged by *every* replica."""
        if not self._ack or not self._pending:
            return
        min_ack = min(self._ack.values())
        cut = bisect.bisect_right(self._pending.ts, min_ack)
        if cut:
            self._pending.drop_prefix(cut)
            # Cached frames are immutable snapshots, so pruning never
            # invalidates one — this just bounds the cache to live windows.
            self._frames.clear()

    def _maybe_heartbeat(self) -> None:
        """Alg. 2 lines 10–12, applied per replica.

        A heartbeat is sent to replicas with no outstanding ops when the
        physical clock has moved Δ past the last issued timestamp.  The
        hybrid clock observes the heartbeat timestamp so that any later
        update is tagged strictly greater (keeps Property 2 intact).
        """
        clock_now = self.clock.read_us()
        delta_us = int(self.config.heartbeat_interval * 1e6)
        if clock_now < self.hlc.last + delta_us:
            return
        targets = []
        if self.config.fault_tolerant:
            ts_col = self._pending.ts
            last_ts = ts_col[-1] if ts_col else 0
            for replica in self.replicas:
                if self._ack[replica.pid] >= last_ts:  # nothing outstanding
                    targets.append(replica)
        elif not self._pending:
            targets = self.replicas[:1]
        if not targets:
            return
        self.hlc.observe(clock_now)
        beat = PartitionHeartbeat(self.partition_index, clock_now)
        self.heartbeats_sent += len(targets)

        def transmit() -> None:
            self.host.multicast(targets, beat)

        # Route through the host's service queue: batch transmissions are
        # queued there too, and a heartbeat sent directly would overtake a
        # still-queued batch on the wire, making the service's
        # PartitionTime jump past the batch's timestamps (Property 2 break
        # from the service's perspective — its dedup would then discard
        # the batch).  Queue order preserves send order, and FIFO links
        # preserve it on the wire.
        self.host._enqueue(transmit, 0.0)

    # ------------------------------------------------------------------
    # Introspection (tests)
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        return len(self._pending)

    def acked_ts(self, replica: Process) -> int:
        return self._ack.get(replica.pid, 0)
