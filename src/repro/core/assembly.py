"""Assembly of one datacenter's stabilizer complex (all four shapes).

The Eunomia service of a site can be deployed four ways, the cross product
of two axes (:class:`~repro.core.config.EunomiaConfig`):

====================  =====================================================
``n_shards=1``        the paper's single sequential stabilizer —
                      :class:`EunomiaService` (Alg. 3), or R
                      :class:`EunomiaReplica` (Alg. 4) when fault-tolerant
``n_shards=K``        K :class:`EunomiaShard` workers behind a merging
                      :class:`ShardCoordinator`; fault-tolerant, the whole
                      pipeline × R replicas, each a
                      :class:`ShardedReplicaGroup` whose
                      :class:`ReplicatedShardCoordinator` runs the Ω
                      election (Alg. 4 × K)
====================  =====================================================

:func:`build_stabilizer_stack` is the single place that wiring lives;
:class:`repro.geo.datacenter.Datacenter` and the §7.1 load rigs
(:mod:`repro.harness.loadgen`) both build from it, so the fault-tolerant
sharded composition behaves identically under storage traffic and under
partition emulators.  The returned :class:`StabilizerStack` answers the
three questions any deployment has: which processes to start, which
processes ship stable runs to remote receivers (``propagators``), and which
processes a given partition's uplink must stream to (``uplink_targets`` —
one target for the plain shapes, the owning shard of *every* replica for
the replicated ones, so the uplink's per-replica ack/retransmission
machinery applies per (partition → shard) stream).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..calibration import Calibration
from ..durability import CheckpointStore, RecoveryManager, WriteAheadLog
from ..metrics.collector import MetricsHub, NullMetrics
from ..sim.disk import DiskModel
from ..sim.env import Environment
from ..sim.process import Process
from .config import EunomiaConfig
from .replica import EunomiaReplica
from .service import EunomiaService
from .shard import (
    EunomiaShard,
    ReplicatedShardCoordinator,
    ShardCoordinator,
    ShardMap,
    ShardedReplicaGroup,
)

__all__ = ["StabilizerStack", "build_stabilizer_stack"]


@dataclass
class StabilizerStack:
    """The stabilizer processes of one site, in deployment-agnostic form."""

    config: EunomiaConfig
    env: Environment
    site: int
    cal: Calibration
    metrics: MetricsHub
    name_prefix: str = ""
    #: K=1 shapes: the plain service or the R Algorithm 4 replicas
    replicas: list[EunomiaService] = field(default_factory=list)
    #: K>1 shapes: every shard worker (all replicas, flattened)
    shards: list[EunomiaShard] = field(default_factory=list)
    #: K>1 shapes: one coordinator per replica (one total when unreplicated)
    coordinators: list[ShardCoordinator] = field(default_factory=list)
    #: K>1 × fault-tolerant: the R replica groups
    groups: list[ShardedReplicaGroup] = field(default_factory=list)
    shard_map: Optional[ShardMap] = None
    #: durability="wal": the restorer shared by every durable member
    recovery: Optional["RecoveryManager"] = None

    def processes(self) -> list[Process]:
        """Every stabilizer process, in start order (shards before heads)."""
        return [*self.shards, *self.coordinators, *self.replicas]

    def propagators(self) -> list[Process]:
        """Processes that ship stable runs (all get remote destinations —
        any replica can be elected and must know where to propagate)."""
        return [*self.coordinators, *self.replicas]

    def uplink_targets(self, partition_index: int) -> list[Process]:
        """The processes partition ``partition_index`` must stream to."""
        if self.shard_map is None:
            return list(self.replicas)
        shard_id = self.shard_map.shard_of(partition_index)
        if self.groups:
            return [group.shards[shard_id] for group in self.groups]
        return [self.shards[shard_id]]

    def crash_units(self) -> list:
        """Replica-failure targets in election order: the sharded replica
        groups or the Alg. 4 replicas ([] for non-fault-tolerant shapes)."""
        if self.groups:
            return list(self.groups)
        if self.config.fault_tolerant:
            return list(self.replicas)
        return []

    def leader(self):
        """The process currently shipping stable runs for this site."""
        heads = self.coordinators or self.replicas
        for head in heads:
            if not head.crashed and getattr(head, "is_leader",
                                            lambda: True)():
                return head
        return heads[0]

    def wire_uplinks(self, hosts: list) -> list:
        """Point every host's uplink at this stabilizer complex.

        ``hosts`` are partitions or partition emulators (anything with an
        ``index`` and ``set_eunomia``).  Without the §5 propagation tree
        each host streams straight to its :meth:`uplink_targets`; with it,
        ``tree_fanout``-sized windows of hosts share a
        :class:`~repro.core.tree.TreeRelay` (routed per owning shard when
        sharded).  Returns the relays ([] when no tree), which the caller
        must ``start()`` — trees never combine with fault tolerance, so a
        relay always has exactly one upstream pipeline.
        """
        if not self.config.use_propagation_tree:
            for host in hosts:
                host.set_eunomia(self.uplink_targets(host.index))
            return []
        from .tree import TreeRelay

        relays = []
        upstream = self.shards or self.replicas
        fanout = self.config.tree_fanout
        for g in range(0, len(hosts), fanout):
            window = hosts[g:g + fanout]
            relay = TreeRelay(
                self.env, f"{self.name_prefix}relay{len(relays)}", self.site,
                flush_interval=self.config.tree_flush_interval,
                forward_cost=self.cal.overhead("relay_forward"),
                flush_cost=self.cal.overhead("relay_flush"),
                metrics=self.metrics,
            )
            relay.set_upstream(upstream)
            if self.shard_map is not None:
                relay.set_routing({
                    host.index: self.shards[self.shard_map.shard_of(host.index)]
                    for host in window})
            for host in window:
                host.set_eunomia([relay])
            relays.append(relay)
        return relays


def build_stabilizer_stack(env: Environment, site: int, n_partitions: int,
                           config: EunomiaConfig, cal: Calibration,
                           metrics: Optional[MetricsHub] = None,
                           tree_factory: Optional[Callable] = None,
                           name_prefix: str = "",
                           stable_mark: Optional[str] = None,
                           indices: Optional[list] = None
                           ) -> StabilizerStack:
    """Build the stabilizer complex for one site (not yet started).

    ``name_prefix`` namespaces process names (datacenters pass ``"dc0/"``
    etc., rigs pass ``""``); ``stable_mark`` overrides the metric name
    stable ops are marked under (defaults to ``eunomia_stable:dc{site}``).
    ``indices`` restricts the stable cut to a subset of partition indices
    (partial geo-replication: only the site's *resident* partitions feed
    the stabilizer, so only they may bound StableTime — a non-resident
    index never streams ops and would pin the floor at zero forever).
    ``None`` keeps the historical all-partitions cut.
    """
    metrics = metrics or NullMetrics()
    stack = StabilizerStack(config=config, env=env, site=site, cal=cal,
                            metrics=metrics, name_prefix=name_prefix)

    if config.n_shards > 1:
        stack.shard_map = ShardMap(n_partitions, config.n_shards,
                                   config.shard_policy, indices=indices)
        n_groups = config.n_replicas if config.fault_tolerant else 1
        for rid in range(n_groups):
            tag = f"{name_prefix}eunomia{rid}-" if config.fault_tolerant \
                else f"{name_prefix}eunomia-"
            if config.fault_tolerant:
                coordinator: ShardCoordinator = ReplicatedShardCoordinator(
                    env, f"{tag}coord", site, config.n_shards, config,
                    replica_id=rid,
                    forward_op_cost=cal.cost("eunomia_coord_op"),
                    merge_round_cost=cal.overhead("eunomia_coord_round"),
                    batch_cost=cal.overhead("eunomia_batch"),
                    metrics=metrics, stable_mark=stable_mark,
                )
                leader_gate = coordinator.is_leader
            else:
                coordinator = ShardCoordinator(
                    env, f"{tag}coord", site, config.n_shards, config,
                    forward_op_cost=cal.cost("eunomia_coord_op"),
                    merge_round_cost=cal.overhead("eunomia_coord_round"),
                    batch_cost=cal.overhead("eunomia_batch"),
                    metrics=metrics, stable_mark=stable_mark,
                )
                leader_gate = None
            group_shards = []
            for sid in range(config.n_shards):
                shard = EunomiaShard(
                    env, f"{tag}shard{sid}", site, n_partitions, config,
                    shard_id=sid, owned=stack.shard_map.owned_by(sid),
                    serialize_op_cost=cal.cost("eunomia_shard_serialize_op"),
                    stab_round_cost=cal.overhead("eunomia_stab_round"),
                    insert_op_cost=cal.cost("eunomia_insert_op"),
                    batch_cost=cal.overhead("eunomia_batch"),
                    heartbeat_cost=cal.overhead("eunomia_heartbeat"),
                    ack_cost=cal.overhead("eunomia_ack"),
                    metrics=metrics, tree_factory=tree_factory,
                    leader_gate=leader_gate,
                )
                shard.set_coordinator(coordinator)
                group_shards.append(shard)
            stack.shards.extend(group_shards)
            stack.coordinators.append(coordinator)
            if config.fault_tolerant:
                coordinator.set_shards(group_shards)
                stack.groups.append(ShardedReplicaGroup(
                    rid, coordinator, group_shards))
        for coordinator in stack.coordinators:
            if isinstance(coordinator, ReplicatedShardCoordinator):
                coordinator.set_peers(stack.coordinators)
    elif config.fault_tolerant:
        for rid in range(config.n_replicas):
            stack.replicas.append(EunomiaReplica(
                env, f"{name_prefix}eunomia{rid}", site, n_partitions,
                config, replica_id=rid,
                ack_cost=cal.overhead("eunomia_ack"),
                propagate_op_cost=cal.cost("eunomia_propagate_op"),
                stab_round_cost=cal.overhead("eunomia_stab_round"),
                insert_op_cost=cal.cost("eunomia_insert_op"),
                batch_cost=cal.overhead("eunomia_batch"),
                heartbeat_cost=cal.overhead("eunomia_heartbeat"),
                metrics=metrics, tree_factory=tree_factory,
                stable_mark=stable_mark,
            ))
        for replica in stack.replicas:
            replica.set_peers(stack.replicas)
            replica.set_tracked(indices)
    else:
        stack.replicas.append(EunomiaService(
            env, f"{name_prefix}eunomia", site, n_partitions, config,
            propagate_op_cost=cal.cost("eunomia_propagate_op"),
            stab_round_cost=cal.overhead("eunomia_stab_round"),
            insert_op_cost=cal.cost("eunomia_insert_op"),
            batch_cost=cal.overhead("eunomia_batch"),
            heartbeat_cost=cal.overhead("eunomia_heartbeat"),
            metrics=metrics, tree_factory=tree_factory,
            stable_mark=stable_mark,
        ))
        stack.replicas[0].set_tracked(indices)

    if config.durability == "wal":
        # Durable stacks for all four shapes: every stabilizer that holds
        # protocol state (shards, Alg. 4 replicas, the plain service) gets
        # its own WAL + checkpoint store; coordinators hold none (they are
        # rebuilt from their shards — floors are shipped-capped, so every
        # queued-but-unshipped op survives in some shard's log).
        disk = DiskModel.from_calibration(cal)
        stack.recovery = RecoveryManager(disk)
        for proc in (*stack.shards, *stack.replicas):
            proc.attach_durability(
                WriteAheadLog(f"{proc.name}.wal", disk,
                              codec=config.wal_codec),
                CheckpointStore(f"{proc.name}.ckpt"),
                stack.recovery,
                append_op_cost=cal.cost("wal_append_op"),
                checkpoint_cost=cal.overhead("checkpoint_write"),
            )
        for group in stack.groups:
            group.recovery = stack.recovery
    return stack
