"""Partial geo-replication placement maps.

Every deployment so far stored every partition at every datacenter.  Real
multi-region stores do not: each DC holds a *subset* of the key space and
forwards operations on the rest.  Xiang & Vaidya's *Global Stabilization
for Causally Consistent Partial Replication* (PAPERS.md) generalizes the
paper's deferred-stabilization scheme to exactly this setting, and a
:class:`PlacementMap` is the declarative input: for each DC, the set of
partition indices it stores.

The map is consumed in three places:

* **wiring** (:mod:`repro.geo.system` / :mod:`repro.geo.datacenter`):
  non-resident partitions are constructed but never started or linked
  (construction order is preserved so the per-DC clock RNG streams — and
  hence the goldens — are untouched), sibling links and propagator →
  receiver edges exist only between DCs whose resident sets overlap, and
  each client's routing table points non-resident indices at the nearest
  resident DC (read/write forwarding);
* **the stable cut**: Eunomia stabilizers min their ``PartitionTime`` over
  resident partitions only, receivers skip stream entries for partitions
  they do not store, and the GST/GSV summaries in
  :mod:`repro.baselines.gst` are computed over *tracked* origins only —
  so a DC that stores no partition from some origin never stalls on it;
* **checking**: convergence is per-partition across that partition's
  resident DCs, and :meth:`repro.checker.causal.CausalChecker.
  check_placement_routing` asserts every operation was served by a
  resident DC.

``PLACEMENT_POLICIES`` names the spec-string forms accepted by
:meth:`PlacementMap.from_spec`; explicit per-DC maps (``"dc0=0,1;..."``
or a dict) cover everything else.
"""

from __future__ import annotations

from typing import Optional, Union

__all__ = ["PlacementMap", "PLACEMENT_POLICIES"]

#: spec-string policies understood by :meth:`PlacementMap.from_spec`
PLACEMENT_POLICIES = ("full", "stride")


class PlacementMap:
    """Which partition indices each datacenter stores.

    Invariants enforced at construction: indices are in range, every
    partition is resident at ≥ 1 DC (otherwise its keys are unservable),
    and every DC stores ≥ 1 partition (a storage-less DC has no site
    clock consumers and would degenerate to a pure client region, which
    the spine does not model).
    """

    __slots__ = ("n_dcs", "n_partitions", "_resident", "_sets", "_homes")

    def __init__(self, n_dcs: int, n_partitions: int,
                 resident: dict[int, "list[int] | tuple[int, ...]"]):
        if n_dcs < 1 or n_partitions < 1:
            raise ValueError("placement needs at least one DC and partition")
        table = []
        for dc in range(n_dcs):
            indices = sorted(set(resident.get(dc, ())))
            if not indices:
                raise ValueError(f"placement leaves dc{dc} storing nothing")
            if indices[0] < 0 or indices[-1] >= n_partitions:
                raise ValueError(
                    f"placement for dc{dc} names partition indices outside "
                    f"0..{n_partitions - 1}: {indices}")
            table.append(tuple(indices))
        extra = set(resident) - set(range(n_dcs))
        if extra:
            raise ValueError(f"placement names unknown DCs {sorted(extra)}")
        homes = []
        for p in range(n_partitions):
            dcs = tuple(dc for dc in range(n_dcs) if p in table[dc])
            if not dcs:
                raise ValueError(f"partition {p} is resident nowhere")
            homes.append(dcs)
        self.n_dcs = n_dcs
        self.n_partitions = n_partitions
        self._resident = tuple(table)
        self._sets = tuple(frozenset(t) for t in table)
        self._homes = tuple(homes)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def full(cls, n_dcs: int, n_partitions: int) -> "PlacementMap":
        """Every DC stores everything — today's (and the goldens') shape."""
        allp = tuple(range(n_partitions))
        return cls(n_dcs, n_partitions, {dc: allp for dc in range(n_dcs)})

    @classmethod
    def stride(cls, n_dcs: int, n_partitions: int,
               copies: int) -> "PlacementMap":
        """Partition ``p`` resident at the ``copies`` DCs ``(p + j) % M``.

        ``copies == n_dcs`` reduces to :meth:`full`; ``copies == 1`` is
        single-copy placement (maximum locality, no geo-redundancy).
        """
        if not 1 <= copies <= n_dcs:
            raise ValueError(
                f"stride placement needs 1 <= copies <= {n_dcs}, "
                f"got {copies}")
        resident: dict[int, list[int]] = {dc: [] for dc in range(n_dcs)}
        for p in range(n_partitions):
            for j in range(copies):
                resident[(p + j) % n_dcs].append(p)
        return cls(n_dcs, n_partitions, resident)

    @classmethod
    def from_spec(cls, n_dcs: int, n_partitions: int,
                  spec: Union[None, str, dict, "PlacementMap"]
                  ) -> "PlacementMap":
        """Build from the ``GeoSystemSpec.placement`` knob.

        Accepts ``None``/``"full"``, ``"stride:K"`` (K copies per
        partition), an explicit string ``"dc0=0,1;dc1=2,3;..."``, an
        explicit ``{dc: indices}`` dict, or an existing map (validated
        against the deployment shape).
        """
        if spec is None or spec == "full":
            return cls.full(n_dcs, n_partitions)
        if isinstance(spec, PlacementMap):
            if (spec.n_dcs, spec.n_partitions) != (n_dcs, n_partitions):
                raise ValueError(
                    f"placement map is for {spec.n_dcs} DCs x "
                    f"{spec.n_partitions} partitions, deployment has "
                    f"{n_dcs} x {n_partitions}")
            return spec
        if isinstance(spec, dict):
            return cls(n_dcs, n_partitions, spec)
        if isinstance(spec, str):
            if spec.startswith("stride:"):
                return cls.stride(n_dcs, n_partitions, int(spec[7:]))
            if "=" in spec:
                resident: dict[int, list[int]] = {}
                for part in spec.split(";"):
                    part = part.strip()
                    if not part:
                        continue
                    name, _, body = part.partition("=")
                    dc = int(name.strip().removeprefix("dc"))
                    resident[dc] = [int(tok) for tok in body.split(",")
                                    if tok.strip()]
                return cls(n_dcs, n_partitions, resident)
        raise ValueError(f"cannot parse placement spec {spec!r} "
                         f"(policies: {', '.join(PLACEMENT_POLICIES)}, "
                         f"or an explicit 'dc0=0,1;...' map)")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_full(self) -> bool:
        return all(len(t) == self.n_partitions for t in self._resident)

    def is_resident(self, dc: int, index: int) -> bool:
        return index in self._sets[dc]

    def resident_partitions(self, dc: int) -> tuple[int, ...]:
        """Ascending partition indices stored at ``dc``."""
        return self._resident[dc]

    def residents(self, index: int) -> tuple[int, ...]:
        """Ascending DC ids storing partition ``index``."""
        return self._homes[index]

    def overlaps(self, a: int, b: int) -> bool:
        """Do DCs ``a`` and ``b`` store any partition in common?

        This is exactly the condition under which a metadata/data stream
        flows between them: ``a``'s stable stream matters to ``b`` iff
        some partition is resident at both.
        """
        return not self._sets[a].isdisjoint(self._sets[b])

    def nearest_resident(self, dc: int, index: int, rtt=None) -> int:
        """The DC that serves ``(dc, index)``: itself when resident, else
        the resident DC with the smallest one-way delay (ties broken by
        DC id; without an ``rtt`` model, the lowest resident DC id)."""
        if index in self._sets[dc]:
            return dc
        homes = self._homes[index]
        if rtt is None:
            return homes[0]
        return min(homes, key=lambda d: (rtt.one_way_s(dc, d), d))

    def island_dcs(self) -> tuple[int, ...]:
        """DCs sharing no partition with any other DC.

        An island exchanges no replication traffic at all, so a
        whole-region outage there cannot lose inter-DC messages — the
        shape the chaos matrix's ``region_outage`` fault requires.
        """
        return tuple(
            m for m in range(self.n_dcs)
            if not any(self.overlaps(m, k)
                       for k in range(self.n_dcs) if k != m))

    def describe(self) -> str:
        """Canonical explicit spec string (parsable by :meth:`from_spec`)."""
        return ";".join(
            f"dc{dc}=" + ",".join(str(p) for p in self._resident[dc])
            for dc in range(self.n_dcs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlacementMap({self.describe()!r})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, PlacementMap)
                and self._resident == other._resident)

    def __hash__(self) -> int:
        return hash(self._resident)
