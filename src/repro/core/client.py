"""Protocol clients (Algorithm 1, vector form of §4).

A :class:`SessionClient` is a closed-loop Basho-Bench-style session: issue
an operation, wait for the reply, merge the returned timestamp into the
session clock, repeat.  The session clock is a vector with one entry per
datacenter; with ``n_entries=1`` the same class is the scalar client of
Algorithm 1 (and of GentleRain), and with ``n_entries=0`` it degenerates to
the metadata-free client of an eventually consistent store — so every
protocol in this repository shares one client implementation, which keeps
throughput comparisons apples-to-apples (as in the paper, where all systems
share the Riak codebase).

The client's own CPU cost per operation (`client_op_us`) bounds the rate a
single session can generate, exactly like a Basho Bench worker thread.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..calibration import Calibration
from ..clocks.vector import vc_merge, vc_zero
from ..kvstore.ring import ConsistentHashRing
from ..metrics.collector import MetricsHub, NullMetrics
from ..sim.env import Environment
from ..sim.process import Process
from .messages import ClientRead, ClientReadReply, ClientUpdate, ClientUpdateReply

__all__ = ["SessionClient"]


class SessionClient(Process):
    """Closed-loop client session with a causal session clock."""

    def __init__(self, env: Environment, name: str, dc_id: int,
                 n_entries: int, partitions: Sequence[Process],
                 ring: ConsistentHashRing, workload,
                 calibration: Optional[Calibration] = None,
                 metrics: Optional[MetricsHub] = None,
                 think_time: float = 0.0,
                 op_mark: str = "ops",
                 history=None,
                 retry_timeout: Optional[float] = None):
        super().__init__(env, name, site=dc_id)
        cal = calibration or Calibration()
        #: optional repro.checker.SessionHistory for consistency checking
        self.history = history
        self.dc_id = dc_id
        self.n_entries = n_entries
        #: routing table, one serving partition process per ring slot —
        #: under partial geo-replication, non-resident slots point at the
        #: nearest resident DC's partition (read/write forwarding)
        self.partitions = list(partitions)
        self.ring = ring
        self.workload = workload
        self.metrics = metrics or NullMetrics()
        self.think_time = think_time
        self.op_mark = op_mark
        self.op_cost = cal.cost("client_op")
        self.vclock = vc_zero(n_entries)
        self.ops_done = 0
        #: re-issue timeout for a lost in-flight request.  None (default)
        #: preserves the historical closed loop exactly — no timers are
        #: armed at all — which matters because a crashed or partitioned
        #: target drops the request at send time and would otherwise
        #: stall this session forever.
        self.retry_timeout = retry_timeout
        self.retries = 0
        self._rng = env.rng.stream(f"client/{name}")
        self._started = False
        self._stopped = False
        self._request_id = 0
        self._issued_at = 0.0
        self._kind = ""
        self._served_by: Optional[int] = None

    # ------------------------------------------------------------------
    # Drive
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._started = True
        self._issue()

    def stop(self) -> None:
        """Finish the in-flight op, then stop issuing (for quiescence)."""
        self._stopped = True

    def recover(self) -> None:
        """Resume the closed loop after a crash-stop.

        The crash retired any pending think-time/retry callback via the
        epoch guard and dropped the in-flight request, so simply issue a
        fresh operation (stale replies are discarded by request id)."""
        super().recover()
        if self._started and not self._stopped:
            self._issue()

    def _issue(self) -> None:
        if self._stopped or self.crashed:
            return
        kind, key, value_bytes = self.workload.next(self._rng)
        self._kind = kind
        self._key = key
        self._value_bytes = value_bytes
        self._send_attempt()

    def _send_attempt(self) -> None:
        target = self.partitions[self.ring.partition_for(self._key)]
        self._request_id += 1
        self._issued_at = self.now
        self._served_by = target.site
        if self._kind == "read":
            self._value = None
            self.send(target,
                      ClientRead(self._key, request_id=self._request_id))
        else:
            self._value = f"{self.name}#{self._request_id}"
            self.send(target, ClientUpdate(
                self._key, self._value, self.vclock,
                value_bytes=self._value_bytes, request_id=self._request_id,
                issued_at=self._issued_at,
            ))
        if self.retry_timeout is not None:
            request_id = self._request_id
            self.after(self.retry_timeout,
                       lambda: self._maybe_retry(request_id))

    def _maybe_retry(self, request_id: int) -> None:
        """Re-issue a request whose reply never came (dropped by a crash
        or partition).  The retry is a *fresh* attempt — new request id,
        and for updates a new unique value — so a slow original that does
        land is just another write, never a metadata-confusing duplicate
        of the logged one."""
        if self._stopped or self.crashed or request_id != self._request_id:
            return
        self.retries += 1
        self._send_attempt()

    # ------------------------------------------------------------------
    # Replies (Alg. 1 lines 4 and 9)
    # ------------------------------------------------------------------
    def on_client_read_reply(self, msg: ClientReadReply, src: Process) -> None:
        if msg.request_id != self._request_id:
            return  # stale reply from a previous (abandoned) request
        self._log_op(msg.vts, value=msg.value)
        self.vclock = vc_merge(self.vclock, msg.vts)
        self._complete()

    def on_client_update_reply(self, msg: ClientUpdateReply, src: Process) -> None:
        if msg.request_id != self._request_id:
            return
        self._log_op(msg.vts, value=self._value)
        # The update's vector is strictly greater than the session clock
        # (§4), so assignment and merge coincide; merge is defensive.
        self.vclock = vc_merge(self.vclock, msg.vts)
        self._complete()

    def _log_op(self, vts, value) -> None:
        if self.history is None:
            return
        from ..checker.history import OpRecord

        self.history.record(OpRecord(
            time=self.now, client=self.name, kind=self._kind,
            key=self._key, value=value, vts=tuple(vts),
            session_vts=tuple(self.vclock),
            served_by=self._served_by,
        ))

    def _complete(self) -> None:
        now = self.now
        latency_ms = (now - self._issued_at) * 1e3
        self.ops_done += 1
        self.metrics.record(f"latency_ms:{self._kind}", latency_ms)
        self.metrics.point(f"latency_ms:{self._kind}:dc{self.dc_id}",
                           now, latency_ms)
        slo = self.metrics.slo
        if slo is not None:
            slo.op(self._kind, self.dc_id, latency_ms)
        self.metrics.mark(self.op_mark, now)
        self.metrics.mark(f"{self.op_mark}:dc{self.dc_id}", now)
        if self.think_time > 0.0:
            self.after(self.think_time,
                       lambda: self._enqueue(self._issue, self.op_cost))
        else:
            self._enqueue(self._issue, self.op_cost)
