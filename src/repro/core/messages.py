"""Wire messages of the Eunomia protocols (Algorithms 1–5).

Every message is a plain ``dataclass`` with ``slots``; ``size_bytes`` feeds
network/CPU accounting where it matters.  Names follow the paper where one
exists (ADD_OP → :class:`AddOpBatch` because the implementation always ships
batches, §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from ..datastruct.opblock import OpBlock
from ..kvstore.types import METADATA_OVERHEAD_BYTES, Update

__all__ = [
    "ClientRead",
    "ClientReadReply",
    "ClientUpdate",
    "ClientUpdateReply",
    "AddOpBatch",
    "PartitionHeartbeat",
    "BatchAck",
    "StableAnnounce",
    "StateTransferRequest",
    "StateTransferReply",
    "ShardStableBatch",
    "ShardStableVector",
    "RemoteStableBatch",
    "RemoteData",
    "ApplyRemote",
    "ApplyRemoteOk",
    "ApplyRemoteRun",
    "ApplyRemoteOkRun",
    "ReplicaAlive",
]


# ----------------------------------------------------------------------
# Client ↔ partition (Algorithms 1 and 2, vector form of §4)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ClientRead:
    """READ(key): fetch current value + its vector timestamp."""

    key: Any
    request_id: int = 0


@dataclass(slots=True)
class ClientReadReply:
    key: Any
    value: Any
    vts: Tuple[int, ...]
    request_id: int = 0


@dataclass(slots=True)
class ClientUpdate:
    """UPDATE(key, value, VClock_c): write with the client's causal past."""

    key: Any
    value: Any
    client_vts: Tuple[int, ...]
    value_bytes: int = 0
    request_id: int = 0
    #: client send time (sim seconds) — carried for tracing only, so a
    #: sampled span can open with the true end-to-end "issue" stage; not
    #: counted in size_bytes (real systems piggyback it in existing
    #: request framing).
    issued_at: float = 0.0

    @property
    def size_bytes(self) -> int:
        return self.value_bytes + 8 * len(self.client_vts) + METADATA_OVERHEAD_BYTES


@dataclass(slots=True)
class ClientUpdateReply:
    vts: Tuple[int, ...]
    request_id: int = 0


# ----------------------------------------------------------------------
# Partition → Eunomia (Algorithm 2 lines 8/12, batched per §5)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class AddOpBatch:
    """A timestamp-ordered run of updates from one partition, as a frame.

    With data/metadata separation the ``ops`` carry ``value=None`` — only
    ordering metadata flows through Eunomia.  ``resend`` marks at-least-once
    retransmissions to fault-tolerant replicas (charged less CPU at the
    sender: the serialized columnar frame is reused verbatim).

    The wire payload is a columnar :class:`~repro.datastruct.opblock.OpBlock`
    (``block``); pass one directly as ``ops`` to ship with zero per-op work,
    or a plain update tuple which is columnarized once on construction.
    ``ops`` always reads back as the update tuple (the block's payload
    column), so per-op consumers are unaffected.  ``size_bytes`` is the
    block's cached §5 wire total instead of a per-op sum per read.

    ``prev_ts`` is the timestamp of the last op of the partition's stream
    *before* this batch: the receiving replica accepts the batch only if its
    ``PartitionTime`` already covers ``prev_ts``.  This preserves the prefix
    property under message loss — a gap batch is dropped whole and recovered
    by the sender's retransmission from the acknowledged floor.
    """

    partition_index: int
    ops: tuple[Update, ...]
    prev_ts: int = 0
    resend: bool = False
    block: Optional[OpBlock] = None

    def __post_init__(self) -> None:
        if isinstance(self.ops, OpBlock):
            self.block = self.ops
            self.ops = self.block.payload
        elif self.block is None:
            self.block = OpBlock.from_updates(self.ops)
            self.ops = self.block.payload

    @property
    def size_bytes(self) -> int:
        return self.block.wire_bytes()


@dataclass(slots=True)
class PartitionHeartbeat:
    """HEARTBEAT(p_n, Clock_n): idle partition advancing PartitionTime."""

    partition_index: int
    ts: int
    size_bytes: int = 16


@dataclass(slots=True)
class BatchAck:
    """Replica → partition: highest contiguous timestamp seen (Alg. 4 l.5)."""

    partition_index: int
    ack_ts: int
    size_bytes: int = 16


# ----------------------------------------------------------------------
# Eunomia replica coordination (Algorithm 4)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class StableAnnounce:
    """Leader → followers: StableTime, so followers prune their buffers."""

    stable_ts: int
    size_bytes: int = 16


@dataclass(slots=True)
class ReplicaAlive:
    """Ω failure-detector heartbeat among Eunomia replicas."""

    replica_id: int
    size_bytes: int = 16


@dataclass(slots=True)
class StateTransferRequest:
    """Rejoining replica → surviving peers: send me your shipped floors.

    Sent after an amnesia crash once checkpoint + WAL replay has rebuilt
    local state: before re-entering the Ω election, the rejoiner asks the
    survivors for the *current* shipped stable floors so it resumes from a
    correct ``StableTime``/``ShardStableVector`` instead of its stale
    recovered one (everything between its recovery floor and the survivors'
    floor has already been delivered remotely and need not be re-shipped).
    """

    replica_id: int
    size_bytes: int = 16


@dataclass(slots=True)
class StateTransferReply:
    """Surviving replica → rejoiner: per-shard shipped stable floors.

    Entry ``k`` is the highest timestamp at or below which shard ``k``'s
    ops are known shipped to remote datacenters — the same shipped-capped
    quantity a :class:`ShardStableVector` gossips, so adopting it can never
    prune an undelivered op.  K=1 replicas use a single-entry vector.
    """

    replica_id: int
    stable_times: Tuple[int, ...]

    @property
    def size_bytes(self) -> int:
        return 16 + 8 * len(self.stable_times)


@dataclass(slots=True)
class ShardStableVector:
    """Leader coordinator → follower coordinators: per-shard prune floors.

    The sharded generalization of :class:`StableAnnounce` (Alg. 4 line 12):
    entry ``k`` is the timestamp at or below which shard ``k``'s ops have
    been *shipped to remote datacenters*, so a follower replica's shard ``k``
    may prune its buffer at that floor (``drop_stable``, shard-locally,
    without any cross-shard coordination).

    Every entry is capped at the leader's released global StableTime: a
    leader shard's own ShardStableTime may run ahead of ``min(shards)``
    while its popped ops still sit unshipped in the leader coordinator's
    merge queues, and pruning followers there would lose exactly those ops
    on a leader crash.  The cap is what makes the failover argument go
    through — see ``docs/ARCHITECTURE.md``.
    """

    stable_times: Tuple[int, ...]

    @property
    def size_bytes(self) -> int:
        return 8 * len(self.stable_times)


# ----------------------------------------------------------------------
# Sharded stabilization (shard → coordinator)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ShardStableBatch:
    """Shard → coordinator: one serialized stable sub-run.

    ``stable_ts`` is the shard's ShardStableTime at emission; ``ops`` is the
    (ts, origin, seq)-ordered run of newly stable ops at or below it.  A
    batch with empty ``ops`` is a pure progress announcement — the
    coordinator's global ``min(ShardStableTime)`` must keep advancing even
    through shards whose partitions are idle.
    """

    shard_id: int
    stable_ts: int
    ops: tuple[Update, ...]
    block: Optional[OpBlock] = None

    def __post_init__(self) -> None:
        if isinstance(self.ops, OpBlock):
            self.block = self.ops
            self.ops = self.block.payload
        elif self.block is None:
            self.block = OpBlock.from_updates(self.ops)
            self.ops = self.block.payload

    @property
    def size_bytes(self) -> int:
        return 16 + self.block.wire_bytes()


# ----------------------------------------------------------------------
# Geo-replication (§4, Algorithm 5)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class RemoteStableBatch:
    """Eunomia → remote receiver: a stable, totally-ordered run of updates.

    Frame-carrying like :class:`AddOpBatch`: the ``block`` columns are
    ascending in the run's ``(ts, partition, seq)`` serialization order, so
    the receiver's duplicate filter is a bisection over ``block.ts`` and
    the cached wire total makes the propagation multicast O(1) per
    destination instead of a per-op sum per link.
    """

    origin_dc: int
    ops: tuple[Update, ...]
    block: Optional[OpBlock] = None

    def __post_init__(self) -> None:
        if isinstance(self.ops, OpBlock):
            self.block = self.ops
            self.ops = self.block.payload
        elif self.block is None:
            self.block = OpBlock.from_updates(self.ops)
            self.ops = self.block.payload

    @property
    def size_bytes(self) -> int:
        return self.block.wire_bytes()


@dataclass(slots=True)
class RemoteData:
    """Partition → sibling partition: the update payload, shipped directly.

    Part of §5's separation of data and metadata: values travel out-of-band
    with no ordering constraints, identified by ``update.uid``.
    """

    update: Update

    @property
    def size_bytes(self) -> int:
        return self.update.size_bytes


@dataclass(slots=True)
class ApplyRemote:
    """Receiver → local partition: execute this remote update (Alg. 5 l.14)."""

    update: Update

    @property
    def size_bytes(self) -> int:
        return self.update.metadata_bytes


@dataclass(slots=True)
class ApplyRemoteOk:
    """Partition → receiver: update applied (the ``ok`` of Alg. 5 l.15)."""

    uid: Tuple[int, int, int]
    size_bytes: int = 16


@dataclass(slots=True)
class ApplyRemoteRun:
    """Receiver → local partition: apply this same-partition run in order.

    The pipelined form of :class:`ApplyRemote` (``receiver_pipeline > 1``):
    up to P consecutive dependency-satisfied head ops of one origin's
    queue, all owned by the same local partition, released as one frame.
    FIFO links plus in-order service application keep Alg. 5's condition
    (1) intact — each member's whole origin prefix is applied (or ahead of
    it in the same frame) by the time it executes.
    """

    updates: tuple[Update, ...]

    @property
    def size_bytes(self) -> int:
        return sum(u.metadata_bytes for u in self.updates)


@dataclass(slots=True)
class ApplyRemoteOkRun:
    """Partition → receiver: every listed member of a run applied.

    The batched acknowledgement of one :class:`ApplyRemoteRun` — members
    whose §5 payload was still in flight are excluded (they ack later with
    an individual :class:`ApplyRemoteOk` once the data arrives), so the
    receiver pops acknowledged *prefixes* rather than assuming the whole
    run completed.
    """

    uids: tuple[Tuple[int, int, int], ...]

    @property
    def size_bytes(self) -> int:
        return 16 * len(self.uids)
