"""Sharded Eunomia: K stabilizer workers + a merging coordinator.

The paper's stabilizer is a single sequential process per datacenter, and
§7.1 names its limit outright: "the bottleneck of our Eunomia implementation
is the propagation to other geo-locations".  The §5 propagation tree only
relieves the fan-*in*; the ordering and serialization work itself still runs
on one core.  This module scales that step out, in the spirit of
decentralized stabilization schemes (Okapi's structured hybrid stable time;
Xiang & Vaidya's global stabilization for partial replication):

* :class:`EunomiaShard` — one of K workers, each running Algorithm 3
  unchanged over a *subset* of the datacenter's partitions with its own
  ``OpBuffer``.  Every θ it computes its ``ShardStableTime`` (the min of
  PartitionTime over its subset), serializes the stable sub-run, and ships
  it to the coordinator.
* :class:`ShardCoordinator` — tracks per-shard ``ShardStableTime``, computes
  the datacenter-wide ``StableTime = min(shards)``, and merges the shards'
  already-ordered runs with a K-way streaming merge (``heapq.merge``)
  before remote propagation.

Correctness (Properties 1–2 preserved):

* each partition's traffic is routed to exactly one shard over FIFO links,
  so every shard still sees a FIFO prefix per partition — Algorithm 3's
  premise holds per shard unchanged;
* a shard announcing ``ShardStableTime = S`` will never later emit an op
  with ``ts <= S`` (its hybrid clocks are monotone and its buffer pops the
  whole prefix), so successive sub-runs from one shard are strictly
  increasing in the ``(ts, origin, seq)`` key;
* the coordinator only releases ops at or below ``min(ShardStableTime)``,
  merged by ``(ts, origin, seq)`` — the same key and tie-break the single
  stabilizer uses — so the merged stream is op-for-op the serialization the
  K=1 service would have produced (partition sets are disjoint, hence keys
  never collide across shards).

Cost model: shards pay the tree-insert and run-serialization CPU (spread
over K cores); the coordinator pays only a cheap per-op forward of the
pre-serialized runs, per destination, plus a fixed merge-round overhead —
scatter-gather serialization with a thin merging front, which is what lets
stabilization throughput scale with K until the coordinator saturates.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Optional

from ..kvstore.types import Update
from ..metrics.collector import MetricsHub, NullMetrics
from ..sim.env import Environment
from ..sim.process import CostModel, Process
from .config import EunomiaConfig
from .messages import RemoteStableBatch, ShardStableBatch
from .service import StabilizerBase

__all__ = ["ShardMap", "EunomiaShard", "ShardCoordinator"]

class ShardMap:
    """Partition → shard assignment for one datacenter.

    Policies (``EunomiaConfig.shard_policy``):

    * ``"stride"`` — round-robin, partition ``p`` goes to shard ``p % K``;
    * ``"block"`` — contiguous ranges, partition ``p`` to ``p * K // N``.

    Both keep shard loads within one partition of each other; ``stride``
    additionally decorrelates a shard's subset from any locality in
    partition numbering (e.g. one hot rack of consecutive indices).
    """

    def __init__(self, n_partitions: int, n_shards: int,
                 policy: str = "stride"):
        if n_shards < 1:
            raise ValueError("need at least one Eunomia shard")
        if n_shards > n_partitions:
            raise ValueError(
                f"cannot split {n_partitions} partitions across "
                f"{n_shards} shards: some shards would track no partition "
                f"and pin StableTime at zero forever"
            )
        if policy == "stride":
            assign = [p % n_shards for p in range(n_partitions)]
        elif policy == "block":
            assign = [p * n_shards // n_partitions
                      for p in range(n_partitions)]
        else:
            raise ValueError(f"unknown shard policy {policy!r}")
        self.n_partitions = n_partitions
        self.n_shards = n_shards
        self.policy = policy
        self._assign = assign

    def shard_of(self, partition_index: int) -> int:
        return self._assign[partition_index]

    def owned_by(self, shard_id: int) -> list[int]:
        """The partition indices a shard stabilizes (ascending)."""
        return [p for p, s in enumerate(self._assign) if s == shard_id]


class EunomiaShard(StabilizerBase):
    """One of K stabilizer workers: Algorithm 3 over a partition subset."""

    def __init__(self, env: Environment, name: str, site: int,
                 n_partitions: int, config: EunomiaConfig,
                 shard_id: int, owned: list[int],
                 serialize_op_cost: float = 0.0,
                 stab_round_cost: float = 0.0,
                 insert_op_cost: float = 0.0,
                 batch_cost: float = 0.0,
                 heartbeat_cost: float = 0.0,
                 metrics: Optional[MetricsHub] = None,
                 cost_model: Optional[CostModel] = None,
                 tree_factory: Optional[Callable] = None):
        super().__init__(env, name, site, n_partitions, config,
                         insert_op_cost=insert_op_cost,
                         batch_cost=batch_cost,
                         heartbeat_cost=heartbeat_cost,
                         metrics=metrics, cost_model=cost_model,
                         tree_factory=tree_factory)
        if not owned:
            raise ValueError(f"shard {shard_id} owns no partitions")
        self.shard_id = shard_id
        self.owned = sorted(owned)
        self.serialize_op_cost = serialize_op_cost
        self.stab_round_cost = stab_round_cost
        self.coordinator: Optional[Process] = None
        #: highest ShardStableTime already shipped to the coordinator
        self.announced = 0

    def set_coordinator(self, coordinator: Process) -> None:
        self.coordinator = coordinator

    def _stable_floor(self) -> int:
        """ShardStableTime: only this shard's partitions bound stability."""
        times = self.partition_time
        return min(times[p] for p in self.owned)

    def _emit(self, stable_ts: int, ops: list) -> None:
        """Serialize the stable sub-run and hand it to the coordinator.

        Even an empty run is announced when ShardStableTime advanced — the
        coordinator's global min cannot move (and other shards' queued ops
        cannot be released) unless every shard keeps reporting progress.
        """
        if self.coordinator is None:
            return
        if not ops and stable_ts <= self.announced:
            return
        self.announced = stable_ts
        self.ops_stabilized += len(ops)
        batch = ShardStableBatch(self.shard_id, stable_ts, tuple(ops))
        cost = self.stab_round_cost + self.serialize_op_cost * len(ops)
        self._enqueue(lambda: self.send(self.coordinator, batch), cost)


class ShardCoordinator(Process):
    """Merges shard stable runs into the datacenter-wide stable stream.

    Receives :class:`ShardStableBatch` from each shard (FIFO links keep each
    shard's runs in announcement order), maintains ``shard_stable[k]`` and
    per-shard queues of not-yet-released ops, and on every receipt drains
    everything at or below ``StableTime = min(shard_stable)`` with a K-way
    streaming merge, then propagates the merged run exactly like the K=1
    service would.
    """

    def __init__(self, env: Environment, name: str, site: int,
                 n_shards: int, config: EunomiaConfig,
                 forward_op_cost: float = 0.0,
                 merge_round_cost: float = 0.0,
                 batch_cost: float = 0.0,
                 metrics: Optional[MetricsHub] = None,
                 stable_mark: Optional[str] = None):
        cost_model = CostModel(costs={"ShardStableBatch": batch_cost})
        super().__init__(env, name, site=site, cost_model=cost_model)
        self.n_shards = n_shards
        self.config = config
        self.forward_op_cost = forward_op_cost
        self.merge_round_cost = merge_round_cost
        self.metrics = metrics or NullMetrics()
        self.shard_stable = [0] * n_shards
        self._queues: list[deque] = [deque() for _ in range(n_shards)]
        self.destinations: list[Process] = []
        self.stable_time = 0
        self.ops_stabilized = 0
        self.merge_rounds = 0
        self.stable_mark = stable_mark or f"eunomia_stable:dc{site}"

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_destination(self, dest: Process) -> None:
        """Register a remote receiver (or measurement sink)."""
        self.destinations.append(dest)

    def start(self) -> None:
        """Event-driven: draining piggybacks on shard announcements."""

    # ------------------------------------------------------------------
    # Ingestion + merge
    # ------------------------------------------------------------------
    def on_shard_stable_batch(self, msg: ShardStableBatch, src: Process) -> None:
        if msg.stable_ts > self.shard_stable[msg.shard_id]:
            self.shard_stable[msg.shard_id] = msg.stable_ts
        if msg.ops:
            self._queues[msg.shard_id].extend(msg.ops)
        self._drain()

    def _drain(self) -> None:
        stable = min(self.shard_stable)
        if stable > self.stable_time:
            self.stable_time = stable
        runs = []
        for queue in self._queues:
            run = []
            while queue and queue[0].ts <= self.stable_time:
                run.append(queue.popleft())
            if run:
                runs.append(run)
        if not runs:
            return
        # Each run is already order_key()-ordered — the same (ts, origin,
        # seq) key the OpBuffer sorts by — and runs never interleave with
        # future arrivals (a shard never re-announces below its
        # ShardStableTime), so a K-way streaming merge re-serializes the
        # global order.
        if len(runs) > 1:
            ops = list(heapq.merge(*runs, key=Update.order_key))
        else:
            ops = runs[0]
        cost = (self.merge_round_cost
                + self.forward_op_cost * len(ops) * max(1, len(self.destinations)))
        self._enqueue(lambda: self._propagate(ops), cost)

    def _propagate(self, ops: list) -> None:
        """Ship one merged stable run to every remote site."""
        self.merge_rounds += 1
        self.ops_stabilized += len(ops)
        self.metrics.mark_many(self.stable_mark, self.now, len(ops))
        batch = RemoteStableBatch(self.site, tuple(ops))
        for dest in self.destinations:
            self.send(dest, batch)
