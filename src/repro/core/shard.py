"""Sharded Eunomia: K stabilizer workers + a merging coordinator.

The paper's stabilizer is a single sequential process per datacenter, and
§7.1 names its limit outright: "the bottleneck of our Eunomia implementation
is the propagation to other geo-locations".  The §5 propagation tree only
relieves the fan-*in*; the ordering and serialization work itself still runs
on one core.  This module scales that step out, in the spirit of
decentralized stabilization schemes (Okapi's structured hybrid stable time;
Xiang & Vaidya's global stabilization for partial replication):

* :class:`EunomiaShard` — one of K workers, each running Algorithm 3
  unchanged over a *subset* of the datacenter's partitions with its own
  ``OpBuffer``.  Every θ it computes its ``ShardStableTime`` (the min of
  PartitionTime over its subset), serializes the stable sub-run, and ships
  it to the coordinator.
* :class:`ShardCoordinator` — tracks per-shard ``ShardStableTime``, computes
  the datacenter-wide ``StableTime = min(shards)``, and merges the shards'
  already-ordered runs with a K-way streaming merge (``heapq.merge``)
  before remote propagation.

Correctness (Properties 1–2 preserved):

* each partition's traffic is routed to exactly one shard over FIFO links,
  so every shard still sees a FIFO prefix per partition — Algorithm 3's
  premise holds per shard unchanged;
* a shard announcing ``ShardStableTime = S`` will never later emit an op
  with ``ts <= S`` (its hybrid clocks are monotone and its buffer pops the
  whole prefix), so successive sub-runs from one shard are strictly
  increasing in the ``(ts, origin, seq)`` key;
* the coordinator only releases ops at or below ``min(ShardStableTime)``,
  merged by ``(ts, origin, seq)`` — the same key and tie-break the single
  stabilizer uses — so the merged stream is op-for-op the serialization the
  K=1 service would have produced (partition sets are disjoint, hence keys
  never collide across shards).

Cost model: shards pay the tree-insert and run-serialization CPU (spread
over K cores); the coordinator pays only a cheap per-op forward of the
pre-serialized runs, per destination, plus a fixed merge-round overhead —
scatter-gather serialization with a thin merging front, which is what lets
stabilization throughput scale with K until the coordinator saturates.

Fault tolerance (Algorithm 4 × K shards)
----------------------------------------

With ``EunomiaConfig(fault_tolerant=True, n_replicas=R, n_shards=K)`` the
whole K-shard pipeline above is *replicated*: each of the R replicas runs
its own K shards plus one :class:`ReplicatedShardCoordinator`
(assembled as a :class:`ShardedReplicaGroup`).  Algorithm 4 maps onto the
sharded pipeline line by line:

* NEW_BATCH acks (Alg. 4 line 5) move into the shards — partitions
  retransmit unacked suffixes to the owning shard *of every replica*
  (:mod:`repro.core.uplink` unchanged), so each (partition → shard) stream
  independently enjoys the prefix property;
* the Ω election (Alg. 4 lines 7–10, :mod:`repro.core.election`) runs
  among the R coordinators; only the leader's shards run FIND_STABLE and
  only the leader coordinator merges and ships stable runs;
* the leader's StableTime announcement (Alg. 4 line 12) becomes a
  :class:`~repro.core.messages.ShardStableVector` gossiped to follower
  coordinators, which fan per-shard ``StableAnnounce`` floors out to their
  local shards so each prunes its own buffer (Alg. 4 lines 13–15,
  ``drop_stable``) with no cross-shard coordination.

Failover correctness is the unsharded argument applied per (partition →
shard) stream: every surviving replica's shard ``k`` holds the complete
un-pruned prefix of each partition it owns (acks gate the uplink's
retransmission per replica), prune floors are capped at what the dead
leader *shipped* (see :class:`~repro.core.messages.ShardStableVector`), so
a new leader re-emits at most the window between the last gossip and the
crash — which remote receivers deduplicate per origin exactly as in the
K=1 case.  The property test in ``tests/test_sharded_stabilization.py``
checks op-for-op equality of the delivered stream against the K=1 and the
unreplicated K-shard pipelines, including under a forced leader crash.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Optional

from ..kvstore.types import Update
from ..metrics.collector import MetricsHub, NullMetrics
from ..sim.env import Environment
from ..sim.process import CostModel, Process
from .config import EunomiaConfig
from .election import OmegaElection
from .messages import (
    RemoteStableBatch,
    ReplicaAlive,
    ShardStableBatch,
    ShardStableVector,
    StableAnnounce,
    StateTransferReply,
    StateTransferRequest,
)
from .service import StabilizerBase

__all__ = ["ShardMap", "EunomiaShard", "ShardCoordinator",
           "ReplicatedShardCoordinator", "ShardedReplicaGroup"]

class ShardMap:
    """Partition → shard assignment for one datacenter.

    Policies (``EunomiaConfig.shard_policy``):

    * ``"stride"`` — round-robin, partition ``p`` goes to shard ``p % K``;
    * ``"block"`` — contiguous ranges, partition ``p`` to ``p * K // N``.

    Both keep shard loads within one partition of each other; ``stride``
    additionally decorrelates a shard's subset from any locality in
    partition numbering (e.g. one hot rack of consecutive indices).
    """

    def __init__(self, n_partitions: int, n_shards: int,
                 policy: str = "stride",
                 indices: Optional[list] = None):
        if n_shards < 1:
            raise ValueError("need at least one Eunomia shard")
        # Partial geo-replication: only the site's resident partition
        # indices participate in stabilization; the assignment spreads the
        # resident universe (not raw index arithmetic), so loads stay
        # within one partition of each other for any placement.
        universe = (list(range(n_partitions)) if indices is None
                    else sorted(indices))
        if n_shards > len(universe):
            raise ValueError(
                f"cannot split {len(universe)} partitions across "
                f"{n_shards} shards: some shards would track no partition "
                f"and pin StableTime at zero forever"
            )
        if policy == "stride":
            assign = {p: j % n_shards for j, p in enumerate(universe)}
        elif policy == "block":
            assign = {p: j * n_shards // len(universe)
                      for j, p in enumerate(universe)}
        else:
            raise ValueError(f"unknown shard policy {policy!r}")
        self.n_partitions = n_partitions
        self.n_shards = n_shards
        self.policy = policy
        self._assign = assign

    def shard_of(self, partition_index: int) -> int:
        return self._assign[partition_index]

    def owned_by(self, shard_id: int) -> list[int]:
        """The partition indices a shard stabilizes (ascending)."""
        return sorted(p for p, s in self._assign.items() if s == shard_id)


class EunomiaShard(StabilizerBase):
    """One of K stabilizer workers: Algorithm 3 over a partition subset.

    In a replicated deployment (Alg. 4 × K) the shard additionally plays
    its replica's part of the Algorithm 4 machinery for the partitions it
    owns: it acknowledges every batch with its highest contiguous
    per-partition timestamp (line 5), runs FIND_STABLE only while its
    replica's coordinator leads (``leader_gate``), and — on follower
    replicas — prunes its buffer at the floors the leader gossips
    (lines 13–15, via :meth:`on_stable_announce`).
    """

    def __init__(self, env: Environment, name: str, site: int,
                 n_partitions: int, config: EunomiaConfig,
                 shard_id: int, owned: list[int],
                 serialize_op_cost: float = 0.0,
                 stab_round_cost: float = 0.0,
                 insert_op_cost: float = 0.0,
                 batch_cost: float = 0.0,
                 heartbeat_cost: float = 0.0,
                 ack_cost: float = 0.0,
                 metrics: Optional[MetricsHub] = None,
                 cost_model: Optional[CostModel] = None,
                 tree_factory: Optional[Callable] = None,
                 leader_gate: Optional[Callable[[], bool]] = None):
        super().__init__(env, name, site, n_partitions, config,
                         insert_op_cost=insert_op_cost,
                         batch_cost=batch_cost,
                         heartbeat_cost=heartbeat_cost,
                         ack_cost=ack_cost,
                         metrics=metrics, cost_model=cost_model,
                         tree_factory=tree_factory)
        if not owned:
            raise ValueError(f"shard {shard_id} owns no partitions")
        self.shard_id = shard_id
        self.owned = sorted(owned)
        self.serialize_op_cost = serialize_op_cost
        self.stab_round_cost = stab_round_cost
        #: replicated deployments: does this shard's replica lead the group?
        self.leader_gate = leader_gate
        self.coordinator: Optional[Process] = None
        #: highest ShardStableTime already shipped to the coordinator
        self.announced = 0

    def set_coordinator(self, coordinator: Process) -> None:
        self.coordinator = coordinator

    def _stable_floor(self) -> int:
        """ShardStableTime: only this shard's partitions bound stability."""
        times = self.partition_time
        return min(times[p] for p in self.owned)

    def _durable_floor(self) -> int:
        """WAL-truncation floor: the shard's shipped floor per the gossiped
        StableAnnounce, or the local coordinator's shipped vector (leader
        shards receive no gossip — their coordinator *is* the shipper)."""
        floor = self.shipped_stable
        shipped = getattr(self.coordinator, "shipped_floors", None)
        if shipped is not None and shipped[self.shard_id] > floor:
            floor = shipped[self.shard_id]
        return floor

    def _lose_state(self) -> None:
        super()._lose_state()
        self.announced = 0

    def _adopt_recovery_state(self, partition_time: list, buffer,
                              floor: int) -> None:
        super()._adopt_recovery_state(partition_time, buffer, floor)
        self.announced = floor

    # ------------------------------------------------------------------
    # Algorithm 4 behaviour (replicated deployments only; NEW_BATCH acks
    # and follower pruning are inherited from StabilizerBase._post_batch /
    # on_stable_announce, shared with EunomiaReplica)
    # ------------------------------------------------------------------
    def _should_stabilize(self) -> bool:
        # Followers hold their buffers and wait for prune gossip; only the
        # leading replica's shards serialize (Alg. 4 leader-only PROCESS).
        return self.leader_gate is None or self.leader_gate()

    def _emit(self, stable_ts: int, ops: list) -> None:
        """Serialize the stable sub-run and hand it to the coordinator.

        Even an empty run is announced when ShardStableTime advanced — the
        coordinator's global min cannot move (and other shards' queued ops
        cannot be released) unless every shard keeps reporting progress.
        """
        if self.coordinator is None:
            return
        if not ops and stable_ts <= self.announced:
            return
        self.announced = stable_ts
        self.ops_stabilized += len(ops)
        batch = ShardStableBatch(self.shard_id, stable_ts, tuple(ops))
        cost = self.stab_round_cost + self.serialize_op_cost * len(ops)
        self._enqueue(lambda: self.send(self.coordinator, batch), cost)


class ShardCoordinator(Process):
    """Merges shard stable runs into the datacenter-wide stable stream.

    Receives :class:`ShardStableBatch` from each shard (FIFO links keep each
    shard's runs in announcement order), maintains ``shard_stable[k]`` and
    per-shard queues of not-yet-released ops, and on every receipt drains
    everything at or below ``StableTime = min(shard_stable)`` with a K-way
    streaming merge, then propagates the merged run exactly like the K=1
    service would.
    """

    def __init__(self, env: Environment, name: str, site: int,
                 n_shards: int, config: EunomiaConfig,
                 forward_op_cost: float = 0.0,
                 merge_round_cost: float = 0.0,
                 batch_cost: float = 0.0,
                 metrics: Optional[MetricsHub] = None,
                 stable_mark: Optional[str] = None):
        cost_model = CostModel(costs={"ShardStableBatch": batch_cost})
        super().__init__(env, name, site=site, cost_model=cost_model)
        self.n_shards = n_shards
        self.config = config
        self.forward_op_cost = forward_op_cost
        self.merge_round_cost = merge_round_cost
        self.metrics = metrics or NullMetrics()
        self.shard_stable = [0] * n_shards
        self._queues: list[deque] = [deque() for _ in range(n_shards)]
        self.destinations: list[Process] = []
        self.stable_time = 0
        #: per-shard floors of the last run actually shipped (≤ stable_time)
        self.shipped_floors = [0] * n_shards
        self.ops_stabilized = 0
        self.merge_rounds = 0
        self.stable_mark = stable_mark or f"eunomia_stable:dc{site}"

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_destination(self, dest: Process) -> None:
        """Register a remote receiver (or measurement sink)."""
        self.destinations.append(dest)

    def start(self) -> None:
        """Event-driven: draining piggybacks on shard announcements."""

    # ------------------------------------------------------------------
    # Ingestion + merge
    # ------------------------------------------------------------------
    def on_shard_stable_batch(self, msg: ShardStableBatch, src: Process) -> None:
        if msg.stable_ts > self.shard_stable[msg.shard_id]:
            self.shard_stable[msg.shard_id] = msg.stable_ts
        if msg.ops:
            self._queues[msg.shard_id].extend(msg.ops)
        self._drain()

    def _drain(self) -> None:
        stable = min(self.shard_stable)
        if stable > self.stable_time:
            self.stable_time = stable
        runs = []
        for queue in self._queues:
            run = []
            while queue and queue[0].ts <= self.stable_time:
                run.append(queue.popleft())
            if run:
                runs.append(run)
        if not runs:
            return
        # Each run is already order_key()-ordered — the same (ts, origin,
        # seq) key the OpBuffer sorts by — and runs never interleave with
        # future arrivals (a shard never re-announces below its
        # ShardStableTime), so a K-way streaming merge re-serializes the
        # global order.
        if len(runs) > 1:
            ops = list(heapq.merge(*runs, key=Update.order_key))
        else:
            ops = runs[0]
        tracer = self.metrics.tracer
        if tracer is not None:
            now, site = self.now, self.site
            for op in ops:
                tracer.stage_once(op, "merge", now, site)
        # Prune floors are snapshotted NOW, not when the queued propagate
        # finally runs: a later drain may advance stable_time while this
        # release still waits in the service queue, and gossiping the newer
        # floor would let followers prune ops this replica has not shipped
        # yet (lost if it crashes with the later propagate still queued).
        floors = self._prune_floors()
        cost = (self.merge_round_cost
                + self.forward_op_cost * len(ops) * max(1, len(self.destinations)))
        self._enqueue(lambda: self._propagate(ops, floors), cost)

    def _prune_floors(self):
        """Per-shard floors this release covers: each shard's announced
        floor capped at the released global StableTime.  A shard's own
        floor may run ahead while its popped ops sit unshipped in this
        coordinator's merge queues; the cap is what keeps follower pruning
        and WAL truncation from destroying exactly those ops."""
        released = self.stable_time
        return tuple(min(s, released) for s in self.shard_stable)

    def _lose_state(self) -> None:
        """Amnesia crash: the coordinator is rebuilt from its shards —
        every queued-but-unshipped op is still in some replica's shard
        buffer/WAL (floors are shipped-capped), so nothing here is durable."""
        self.shard_stable = [0] * self.n_shards
        self._queues = [deque() for _ in range(self.n_shards)]
        self.stable_time = 0
        self.shipped_floors = [0] * self.n_shards

    def _propagate(self, ops: list, floors=None) -> None:
        """Ship one merged stable run to every remote site."""
        self.merge_rounds += 1
        if floors is not None:
            shipped = self.shipped_floors
            for k, floor in enumerate(floors):
                if floor > shipped[k]:
                    shipped[k] = floor
        self.ops_stabilized += len(ops)
        self.metrics.mark_many(self.stable_mark, self.now, len(ops))
        tracer = self.metrics.tracer
        if tracer is not None:
            now, site = self.now, self.site
            for op in ops:
                tracer.stage_once(op, "propagate", now, site)
        batch = RemoteStableBatch(self.site, tuple(ops))
        self.multicast(self.destinations, batch)
        self._post_propagate(ops, floors)

    def _post_propagate(self, ops: list, floors) -> None:
        """Hook: the replicated coordinator gossips prune floors here."""


class ReplicatedShardCoordinator(ShardCoordinator):
    """One replica's merge head in a fault-tolerant sharded deployment.

    R of these (one per :class:`ShardedReplicaGroup`) run the Ω election of
    :mod:`repro.core.election` among themselves; each fronts its replica's
    own K shards.  The leader merges its shards' stable sub-runs and ships
    them exactly like the unreplicated :class:`ShardCoordinator`, then
    gossips a :class:`~repro.core.messages.ShardStableVector` so follower
    coordinators fan per-shard prune floors out to their local shards
    (Alg. 4 lines 12–15, per shard).  Followers receive nothing from their
    own shards — the shards' ``leader_gate`` keeps them from serializing —
    so a follower's only stabilization work is ``drop_stable``.

    Leadership uniqueness is *not* required for safety (the paper's §3.3
    argument): during an election flap two coordinators may both ship and
    both gossip, remote receivers deduplicate the overlap per origin, and
    prune gossip only ever names ops that some leader actually shipped.
    """

    def __init__(self, env: Environment, name: str, site: int,
                 n_shards: int, config: EunomiaConfig,
                 replica_id: int,
                 forward_op_cost: float = 0.0,
                 merge_round_cost: float = 0.0,
                 batch_cost: float = 0.0,
                 metrics: Optional[MetricsHub] = None,
                 stable_mark: Optional[str] = None):
        super().__init__(env, name, site, n_shards, config,
                         forward_op_cost=forward_op_cost,
                         merge_round_cost=merge_round_cost,
                         batch_cost=batch_cost,
                         metrics=metrics, stable_mark=stable_mark)
        self.replica_id = replica_id
        self.peers: list["ReplicatedShardCoordinator"] = []
        self.local_shards: list[EunomiaShard] = []
        self.election = OmegaElection(
            self, replica_id,
            alive_interval=config.replica_alive_interval,
            suspect_timeout=config.replica_suspect_timeout,
            on_change=self._leadership_changed,
        )
        self.leadership_log: list[tuple[float, int]] = []
        #: True between an amnesia-crash restore and state-transfer
        #: completion: the group neither leads nor broadcasts until then
        self._rejoining = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_peers(self, peers: list["ReplicatedShardCoordinator"]) -> None:
        """Register the other replicas' coordinators."""
        self.peers = [p for p in peers if p is not self]
        self.election.set_peers({p.replica_id: p for p in self.peers})

    def set_shards(self, shards: list[EunomiaShard]) -> None:
        """Register this replica's own K shards (prune fan-out targets)."""
        self.local_shards = list(shards)

    def start(self) -> None:
        super().start()
        if not self._rejoining:
            self.election.start()

    # ------------------------------------------------------------------
    # Crash recovery: peer state transfer (durability="wal")
    # ------------------------------------------------------------------
    def begin_rejoin(self) -> None:
        """Enter rejoin mode *before* :meth:`start`: the coordinator will
        neither claim leadership nor broadcast ReplicaAlive until the state
        transfer completes (or times out with no surviving peer)."""
        self._rejoining = True

    def request_state_transfer(self) -> None:
        """Ask surviving peers for their current shipped floors."""
        request = StateTransferRequest(self.replica_id)
        self.multicast(self.peers, request)
        self.after(self.config.state_transfer_timeout,
                   self._state_transfer_timeout)

    def on_state_transfer_request(self, msg: StateTransferRequest,
                                  src: Process) -> None:
        if self._rejoining:
            return  # both down: neither side has floors worth adopting
        self.send(src, StateTransferReply(self.replica_id,
                                          tuple(self.shipped_floors)))

    def on_state_transfer_reply(self, msg: StateTransferReply,
                                src: Process) -> None:
        if not self._rejoining:
            return
        # Adopt the survivors' shipped floors: everything at or below them
        # was delivered remotely while this group was down, so the restored
        # shards prune there instead of re-shipping the whole outage window.
        self._apply_floors(msg.stable_times)
        self._complete_rejoin()

    def _state_transfer_timeout(self) -> None:
        # No surviving peer answered: the local (checkpoint + WAL) floors
        # are the best available; remote dedup absorbs the re-ships.
        if self._rejoining:
            self._complete_rejoin()

    def _complete_rejoin(self) -> None:
        self._rejoining = False
        self.state_lost = False
        # Refresh the failure detector (stale pre-crash sightings would
        # otherwise linger) and resume ReplicaAlive broadcasts.
        self.election.set_peers({p.replica_id: p for p in self.peers})
        self.election.start()

    def _apply_floors(self, floors) -> None:
        shipped = self.shipped_floors
        for k, floor in enumerate(floors):
            if floor > shipped[k]:
                shipped[k] = floor
        released = min(floors)
        if released > self.stable_time:
            self.stable_time = released
        for k, queue in enumerate(self._queues):
            while queue and queue[0].ts <= floors[k]:
                queue.popleft()
        for shard in self.local_shards:
            self.send(shard, StableAnnounce(floors[shard.shard_id]))

    # ------------------------------------------------------------------
    # Algorithm 4 behaviour
    # ------------------------------------------------------------------
    def _post_propagate(self, ops: list, floors) -> None:
        # Alg. 4 line 12, vectorized: tell follower replicas what is now
        # shipped so their shards prune.
        if not ops:
            return
        vector = ShardStableVector(floors)
        self.multicast(self.peers, vector)

    def on_shard_stable_vector(self, msg: ShardStableVector,
                               src: Process) -> None:
        # Follower side: fan the per-shard floors out to the local shards.
        # Applying gossip is safe regardless of who believes they lead —
        # every floor names only remotely shipped ops (see the cap in
        # _prune_floors).  A deposed leader may still hold popped-but-
        # unreleased ops in its merge queues; everything at or below the
        # gossiped floors has now been shipped by the current leader, so
        # _apply_floors drops it here too (it would otherwise be
        # re-released — harmless but wasteful — if this replica leads
        # again).  Tracking the floors also gives followers the durable
        # truncation/state-transfer baseline (shipped_floors).
        self._apply_floors(msg.stable_times)

    def on_replica_alive(self, msg: ReplicaAlive, src: Process) -> None:
        self.election.on_alive(msg)

    def _leadership_changed(self, leader_id: int) -> None:
        self.leadership_log.append((self.now, leader_id))

    def is_leader(self) -> bool:
        """Whether this coordinator currently believes it leads the group."""
        return not self._rejoining and self.election.is_leader()


class ShardedReplicaGroup:
    """One replica of the fault-tolerant sharded stabilizer: K shards + a
    coordinator, presented as a unit (crash/recover target, introspection).

    This is the ``EunomiaReplica`` analogue of the sharded world: drills
    and figures crash *groups*, not individual shard processes — a replica
    failure takes its whole pipeline down at once.
    """

    def __init__(self, replica_id: int,
                 coordinator: ReplicatedShardCoordinator,
                 shards: list[EunomiaShard]):
        self.replica_id = replica_id
        self.coordinator = coordinator
        self.shards = list(shards)
        #: durable-state restorer (set by the assembly when durability="wal")
        self.recovery = None

    @property
    def name(self) -> str:
        return self.coordinator.name

    @property
    def crashed(self) -> bool:
        return self.coordinator.crashed

    @property
    def ops_stabilized(self) -> int:
        return self.coordinator.ops_stabilized

    @property
    def stable_mark(self) -> str:
        return self.coordinator.stable_mark

    @property
    def leadership_log(self) -> list[tuple[float, int]]:
        return self.coordinator.leadership_log

    def processes(self) -> list[Process]:
        """All member processes, shards first (start order)."""
        return [*self.shards, self.coordinator]

    def start(self) -> None:
        for proc in self.processes():
            proc.start()

    def crash(self, lose_state: bool = False) -> None:
        """Crash-stop the whole replica: every shard and the coordinator.

        ``lose_state=True`` is an amnesia crash: the members' protocol
        state (unstable buffers, PartitionTime, merge queues, floors) is
        wiped too; only durable media (WALs, checkpoints) survive, so
        :meth:`recover` then needs ``durability="wal"``.
        """
        for proc in self.processes():
            proc.crash(lose_state=lose_state)

    def recover(self) -> None:
        """Restart every member after a crash.

        ``Process.recover`` alone would leave a zombie — the crash's epoch
        bump permanently kills the epoch-guarded stabilization ticks and
        election broadcasts armed at start-up — so each member is started
        again.  After a crash-stop, protocol state survives: the uplinks'
        Alg. 4 retransmission backfills everything missed while down, and
        anything the rejoining replica re-ships from its stale
        ``StableTime`` is deduplicated by remote receivers.

        After an *amnesia* crash (``crash(lose_state=True)``) the members
        are rebuilt from their WALs and checkpoints first, and the
        coordinator runs a peer state-transfer round — adopting the
        survivors' shipped floors — before re-entering the Ω election
        (see :mod:`repro.durability`).
        """
        if self.coordinator.state_lost:
            self._rejoin_with_state_loss()
            return
        for proc in self.processes():
            proc.recover()
            proc.start()

    def _rejoin_with_state_loss(self) -> None:
        if self.recovery is None:
            raise RuntimeError(
                f"{self.name}: state was lost in the crash and no durable "
                "state is attached — rejoin requires "
                "EunomiaConfig(durability='wal')"
            )
        for shard in self.shards:
            shard.recover()
            self.recovery.restore(shard)
            shard.start()
        coordinator = self.coordinator
        coordinator.recover()
        coordinator.begin_rejoin()     # no leadership/broadcast until caught up
        coordinator.start()
        coordinator.request_state_transfer()

    def rejoin(self) -> None:
        """Alias of :meth:`recover` — naming symmetry with
        :meth:`repro.core.replica.EunomiaReplica.rejoin`, so drills and
        figures can treat both crash-unit kinds uniformly."""
        self.recover()

    # ------------------------------------------------------------------
    # Partial-group failures: one shard, not the whole pipeline
    # ------------------------------------------------------------------
    def crash_shard(self, shard_id: int, lose_state: bool = False) -> None:
        """Crash a single member shard; the coordinator stays up.

        No failover follows — the Ω election watches coordinators — so the
        site's stable output stalls at the dead shard's last announced
        floor (``min(ShardStableTime)`` stops moving) until the shard
        rejoins and the uplinks' retransmission backfills it.
        """
        self.shards[shard_id].crash(lose_state=lose_state)

    def recover_shard(self, shard_id: int) -> None:
        """Rejoin one crashed shard (durable restore after an amnesia
        crash).  The live local coordinator's shipped floors raise the
        recovery floor past the shard's own checkpoint, so the restored
        buffer skips ops that are provably delivered."""
        shard = self.shards[shard_id]
        shard.recover()
        if shard.state_lost:
            if self.recovery is None:
                raise RuntimeError(
                    f"{shard.name}: state was lost in the crash and no "
                    "durable state is attached — rejoin requires "
                    "EunomiaConfig(durability='wal')"
                )
            self.recovery.restore(
                shard,
                extra_floor=self.coordinator.shipped_floors[shard_id])
        shard.start()

    def is_leader(self) -> bool:
        return self.coordinator.is_leader()
