"""The Eunomia service (Algorithm 3): unobtrusive site-wide ordering.

The service never talks to clients.  It receives (batches of) timestamped
updates and heartbeats from the datacenter's partitions, tracks the largest
timestamp seen per partition (``PartitionTime``), and every θ seconds
computes ``StableTime = min(PartitionTime)``.  FIFO links plus Property 2
guarantee no partition will ever produce a smaller timestamp, so everything
at or below ``StableTime`` can be serialized — in timestamp order, which by
Property 1 is consistent with causality — and shipped to remote datacenters.

The unstable set lives behind the :func:`repro.datastruct.opbuffer.OpBuffer`
strategy facade (``EunomiaConfig.buffer_backend``): per-origin monotone runs
by default — Alg. 3's PartitionTime dedup guarantees the strictly increasing
per-partition inserts the run buffer requires — with the paper's §6
red–black tree (and the AVL ablation) retained as tree backends.  Extraction
of the stable prefix is the backend's ``pop_stable``.

Algorithm 3 ↔ this module:

* lines 1–6 (NEW_OP / NEW_HEARTBEAT ingestion + PartitionTime) —
  :meth:`StabilizerBase.on_add_op_batch` /
  :meth:`StabilizerBase.on_partition_heartbeat`;
* line 7 (the periodic PROCESS_STABLE trigger, period θ) —
  :meth:`StabilizerBase.start` arming a ``periodic`` stabilization task;
* lines 8–11 (FIND_STABLE + ordered PROCESS of the stable prefix) —
  :meth:`StabilizerBase._stabilize` driving the buffer's ``pop_stable``
  and the subclass's :meth:`_emit`.

Three deployments share the machinery in :class:`StabilizerBase`:

* :class:`EunomiaService` — the paper's single sequential stabilizer per
  datacenter (the K=1 case), which serializes *all* partitions and ships
  the stable run to remote sites itself;
* :class:`repro.core.replica.EunomiaReplica` — the Algorithm 4 form: R of
  these, acks to partitions, leader-only ``_emit``;
* :class:`repro.core.shard.EunomiaShard` — one of K workers that each run
  Algorithm 3 over a partition *subset* and hand their (already ordered)
  stable sub-runs to a :class:`repro.core.shard.ShardCoordinator` for a
  K-way merge before remote propagation; with ``fault_tolerant=True`` the
  whole K-shard pipeline is replicated (Alg. 4 × K, see
  :mod:`repro.core.shard`).

CPU accounting: batch ingestion is charged through the cost model installed
by the builder; stabilization charges a fixed round cost plus a per-op,
per-destination propagation cost — the component the paper identifies as
Eunomia's actual bottleneck ("the bottleneck of our Eunomia implementation
is the propagation to other geo-locations").
"""

from __future__ import annotations

from typing import Callable, Optional

from ..datastruct.opbuffer import OpBuffer
from ..metrics.collector import MetricsHub, NullMetrics
from ..sim.env import Environment
from ..sim.process import CostModel, Process
from .config import EunomiaConfig
from .messages import (
    AddOpBatch,
    BatchAck,
    PartitionHeartbeat,
    RemoteStableBatch,
    StableAnnounce,
)

__all__ = ["StabilizerBase", "EunomiaService"]


class StabilizerBase(Process):
    """Shared Algorithm 3 core: ingestion, PartitionTime, periodic FIND_STABLE.

    Subclasses decide what a computed stable run *means* by overriding
    :meth:`_emit` (ship it to remote datacenters, hand it to a shard
    coordinator, …) and which partitions bound stability via
    :meth:`_stable_floor`.
    """

    def __init__(self, env: Environment, name: str, site: int,
                 n_partitions: int, config: EunomiaConfig,
                 insert_op_cost: float = 0.0,
                 batch_cost: float = 0.0,
                 heartbeat_cost: float = 0.0,
                 ack_cost: float = 0.0,
                 metrics: Optional[MetricsHub] = None,
                 cost_model: Optional[CostModel] = None,
                 tree_factory: Optional[Callable] = None):
        self.insert_op_cost = insert_op_cost
        self.batch_cost = batch_cost
        self.ack_cost = ack_cost
        if cost_model is None:
            # The batch cost must be state-aware: duplicate prefixes from
            # at-least-once retransmissions are skipped with one comparison
            # each in a real implementation, not re-inserted — charging
            # full insert cost for them would invent an overload collapse.
            cost_model = CostModel(costs={
                "AddOpBatch": self._batch_cost_of,
                "CombinedBatch": self._combined_cost_of,
                "PartitionHeartbeat": heartbeat_cost,
            })
        super().__init__(env, name, site=site, cost_model=cost_model)
        self.n_partitions = n_partitions
        self.config = config
        self.metrics = metrics or NullMetrics()
        self.partition_time = [0] * n_partitions
        #: partial geo-replication: the partition indices that bound the
        #: stable cut (None = all N; see :meth:`set_tracked`)
        self.tracked = None
        # An explicit tree_factory (the §6 ablation convention) overrides
        # the configured strategy; otherwise the config picks the backend.
        self._tree_factory = tree_factory
        self.buffer = OpBuffer(tree_factory, backend=config.buffer_backend)
        self.stable_time = 0
        #: highest floor known shipped to remote receivers (≤ stable_time;
        #: the durable-truncation and state-transfer floor)
        self.shipped_stable = 0
        self.ops_stabilized = 0
        # Durability (attach_durability wires these when durability="wal").
        self.wal = None
        self.checkpoints = None
        self.recovery = None
        self._wal_op_cost = 0.0
        self._checkpoint_cost = 0.0
        self._stab_task = None
        self._checkpoint_task = None

    def start(self) -> None:
        """Arm the periodic PROCESS_STABLE tick (Alg. 3 line 7).

        Both timers are uniform :meth:`repro.sim.process.Process.periodic`
        chains now; a crash retires them via the epoch guard and recovery
        re-arms by calling ``start()`` again.
        """
        self._stab_task = self.periodic(self.config.stabilization_interval,
                                        self._stabilize)
        if self.wal is not None:
            self._checkpoint_task = self.periodic(
                self.config.checkpoint_interval, self._checkpoint_tick)

    # ------------------------------------------------------------------
    # Durability (WAL + checkpoints, EunomiaConfig.durability="wal")
    # ------------------------------------------------------------------
    def attach_durability(self, wal, checkpoints, recovery,
                          append_op_cost: float = 0.0,
                          checkpoint_cost: float = 0.0) -> None:
        """Wire this stabilizer's durable media (see :mod:`repro.durability`).

        Must happen before :meth:`start` — the checkpoint tick is armed
        there.  ``append_op_cost`` is charged per accepted op on the ingest
        path (log-record serialization); flushes and checkpoints ride the
        ``"disk"`` lane.
        """
        self.wal = wal
        self.checkpoints = checkpoints
        self.recovery = recovery
        self._wal_op_cost = append_op_cost
        self._checkpoint_cost = checkpoint_cost

    def _durable_floor(self) -> int:
        """The truncation floor: what is known shipped, never the running
        StableTime (popped-but-unshipped ops must survive in the log)."""
        return self.shipped_stable

    def _checkpoint_tick(self) -> None:
        from ..durability.checkpoint import Checkpoint

        checkpoint = Checkpoint(tuple(self.partition_time),
                                self._durable_floor(), self.now)
        cost = (self._checkpoint_cost
                + checkpoint.size_bytes * self.wal.disk.byte_time_s)
        self._enqueue(lambda: self._write_checkpoint(checkpoint), cost,
                      lane="disk")

    def _write_checkpoint(self, checkpoint) -> None:
        # Flush first so the checkpoint never refers past the durable log,
        # then truncate below the shipped floor the snapshot recorded.  A
        # failed flush (injected fsync error) skips the whole round: writing
        # the snapshot anyway could truncate records whose covering flush
        # never happened.  The next tick retries with a fresh snapshot, so
        # checkpoint staleness is bounded by the checkpoint interval.
        if self.wal.commit() < 0:
            return
        self.checkpoints.write(checkpoint)
        self.wal.truncate(checkpoint.floor)

    def _lose_state(self) -> None:
        """Amnesia crash: protocol state is gone; durable media survive."""
        self.partition_time = [0] * self.n_partitions
        self.buffer = OpBuffer(self._tree_factory,
                               backend=self.config.buffer_backend)
        self.stable_time = 0
        self.shipped_stable = 0
        if self.wal is not None:
            self.wal.lose_volatile()

    def _adopt_recovery_state(self, partition_time: list, buffer,
                              floor: int) -> None:
        """Install state rebuilt by the :class:`RecoveryManager`."""
        self.partition_time = list(partition_time)
        self.buffer = buffer
        self.stable_time = floor
        self.shipped_stable = floor
        self.state_lost = False

    def _batch_cost_of(self, msg: AddOpBatch) -> float:
        """Batch + per-*new*-op insert cost (duplicates found by bisection)."""
        block = msg.block
        lo = block.first_above(self.partition_time[msg.partition_index])
        return (self.batch_cost
                + (self.insert_op_cost + self._wal_op_cost)
                * (len(block) - lo))

    def _combined_cost_of(self, msg) -> float:
        """One message overhead for a whole relay window (§5 tree win)."""
        inner = sum(self._batch_cost_of(batch) - self.batch_cost
                    for batch in msg.batches)
        return self.batch_cost + inner

    # ------------------------------------------------------------------
    # Ingestion (Alg. 3 lines 1–6)
    # ------------------------------------------------------------------
    def on_combined_batch(self, msg, src: Process) -> None:
        """Unpack a propagation-tree window (§5).

        Batches are processed before heartbeats: a heartbeat coalesced in
        the same window never carries a timestamp below the batches' ops
        (Alg. 2's heartbeat condition), so this order keeps PartitionTime
        moving through every op.
        """
        for batch in msg.batches:
            self.on_add_op_batch(batch, src)
        for heartbeat in msg.heartbeats:
            self.on_partition_heartbeat(heartbeat, src)

    def on_add_op_batch(self, msg: AddOpBatch, src: Process) -> None:
        """Batched NEW_OP ingestion (Alg. 3 lines 1–4), columnar form.

        Per-op branching is unnecessary: a batch is one origin's ascending
        run, so the at-least-once duplicate prefix (``ts <= PartitionTime``)
        and the already-stable slice (``ts <= StableTime``) are both found
        by bisection and the remainder moves wholesale — an
        :class:`~repro.datastruct.opblock.OpBlock` feeds the WAL's bulk
        ``stage_ops`` and the buffer's ``extend_run``.  State-identical to
        the historical per-op loop (same accepted suffix, same records,
        same buffer contents), just without interpreting each op.
        """
        index = msg.partition_index
        pt = self.partition_time[index]
        if msg.prev_ts > pt:
            # Gap: an earlier batch from this partition was lost.  Accepting
            # this one would advance PartitionTime past ops we never saw and
            # break the prefix property — drop it whole; the ack below tells
            # the sender where to retransmit from.
            self._post_batch(msg, src)
            return
        block = msg.block
        lo = block.first_above(pt)
        if lo == len(block):
            self._post_batch(msg, src)
            return
        tracer = self.metrics.tracer
        if tracer is not None:
            now, site = self.now, self.site
            wal_name = self.wal.name if self.wal is not None else None
            for op in block.payload[lo:]:
                tracer.ingest(op, now, site)
                if wal_name is not None:
                    tracer.wal_staged(wal_name, op, now, site)
        if self.wal is not None:
            # Every accepted (PartitionTime-advancing) op is logged,
            # buffered or not — replay filters below the recovery floor.
            self.wal.stage_ops(block.run_entries(lo))
        # Ops at or below StableTime only advance PartitionTime; the rest
        # enter the unstable buffer as one pre-sorted run extension.
        cut = block.first_above(self.stable_time, lo)
        if cut < len(block):
            self.buffer.extend_run(block.run_entries(cut))
        self.partition_time[index] = block.ts[-1]
        self._post_batch(msg, src)

    def _post_batch(self, msg: AddOpBatch, src: Process) -> None:
        """NEW_BATCH acknowledgement (Alg. 4 line 5), fault-tolerant only.

        Both replicated shapes share this: every Alg. 4 replica — an
        :class:`EunomiaReplica` or a replica's
        :class:`~repro.core.shard.EunomiaShard` — acks with the highest
        contiguous timestamp it now holds for the partition, so the
        uplink's per-replica retransmission window can advance.
        """
        wal = self.wal
        if not self.config.fault_tolerant:
            if wal is not None:
                cost = wal.flush_cost()
                if cost > 0.0:
                    self._enqueue(wal.commit, cost, lane="disk")
            return
        ack = BatchAck(msg.partition_index,
                       self.partition_time[msg.partition_index])
        if wal is None:
            self._enqueue(lambda: self.send(src, ack), self.ack_cost)
            return
        # Ack-after-fsync: the acknowledgement rides the disk lane behind
        # the flush covering this batch's records.  The uplink prunes an op
        # once *every* replica acked it, so an ack for an un-flushed record
        # would make an amnesia crash lose the op forever — the ack must
        # imply durability.  (The ack_ts was snapshotted above, so it never
        # claims more than this flush covers.)
        cost = wal.flush_cost()
        self._enqueue(lambda: self._commit_and_ack(src, ack),
                      cost + self.ack_cost, lane="disk")

    def _commit_and_ack(self, src: Process, ack: BatchAck,
                        attempt: int = 0) -> None:
        if self.wal.commit() < 0:
            # Injected fsync error.  The ack implies durability, so it is
            # withheld and the flush retried with capped exponential backoff
            # (the records stay staged; a later batch's commit may cover
            # them first, in which case the retry commits nothing and just
            # releases the ack).  The uplink keeps retransmitting meanwhile
            # — at-least-once delivery makes that safe — and acknowledgement
            # resumes within one backoff cap of the disk healing.
            delay = min(self.config.retry_backoff_base * (1 << attempt),
                        self.config.retry_backoff_cap)
            self.after(delay, self._retry_commit, src, ack, attempt + 1)
            return
        self.send(src, ack)

    def _retry_commit(self, src: Process, ack: BatchAck,
                      attempt: int) -> None:
        # Re-pay the barrier on the disk lane (flush_cost was reset by the
        # failed commit, so this charges the full pending bytes again).
        cost = self.wal.flush_cost()
        self._enqueue(lambda: self._commit_and_ack(src, ack, attempt),
                      cost + self.ack_cost, lane="disk")

    def on_stable_announce(self, msg: StableAnnounce, src: Process) -> None:
        """Follower pruning (Alg. 4 lines 13–15), shared by both shapes.

        Everything at or below the announced floor was shipped remotely by
        the leader (for shards the floor arrives pre-capped per shard via
        the coordinator's gossip), so it is dropped without ever being
        serialized.
        """
        if msg.stable_ts > self.stable_time:
            self.stable_time = msg.stable_ts
        if msg.stable_ts > self.shipped_stable:
            # Announced floors are shipped-capped by construction (the
            # leader announces after _propagate; shard gossip is capped at
            # the released StableTime), so they double as durable floors.
            self.shipped_stable = msg.stable_ts
        self.buffer.drop_stable(self.stable_time)

    def on_partition_heartbeat(self, msg: PartitionHeartbeat, src: Process) -> None:
        index = msg.partition_index
        if msg.ts > self.partition_time[index]:
            self.partition_time[index] = msg.ts
            if self.wal is not None:
                # Staged only — committed with the next batch flush or
                # checkpoint.  Losing an unsynced PT advance is safe: the
                # recovered floor is merely lower and heartbeats re-advance.
                self.wal.stage_partition_time(index, msg.ts)

    # ------------------------------------------------------------------
    # Stabilization (Alg. 3 lines 7–11)
    # ------------------------------------------------------------------
    def _should_stabilize(self) -> bool:
        """Hook: the fault-tolerant replica gates this on leadership."""
        return True

    def set_tracked(self, indices) -> None:
        """Restrict the stable cut to ``indices`` (partial placement).

        A non-resident partition never streams ops, so leaving it in the
        min would pin StableTime at zero forever; ``None`` restores the
        historical all-partitions cut (bit-identical to before the knob
        existed).
        """
        self.tracked = None if indices is None else sorted(indices)

    def _stable_floor(self) -> int:
        """The timestamp below which no tracked partition can still produce."""
        if self.tracked is None:
            return min(self.partition_time)
        times = self.partition_time
        return min(times[p] for p in self.tracked)

    def _stabilize(self) -> None:
        if not self._should_stabilize():
            return
        stable = self._stable_floor()
        if stable > self.stable_time:
            self.stable_time = stable
        buffer = self.buffer
        # Idle rounds (empty buffer) skip the extraction walk entirely.
        ops = buffer.pop_stable(self.stable_time) if buffer else []
        self._emit(self.stable_time, ops)

    def _emit(self, stable_ts: int, ops: list) -> None:
        """Consume one stable run (subclass decides where it goes)."""
        raise NotImplementedError


class EunomiaService(StabilizerBase):
    """Single-replica Eunomia (the non-fault-tolerant Algorithm 3).

    This is the K=1 special case of the sharded machinery: one stabilizer
    covering every partition, propagating its stable runs to remote
    receivers itself.
    """

    def __init__(self, env: Environment, name: str, site: int,
                 n_partitions: int, config: EunomiaConfig,
                 propagate_op_cost: float = 0.0,
                 stab_round_cost: float = 0.0,
                 insert_op_cost: float = 0.0,
                 batch_cost: float = 0.0,
                 heartbeat_cost: float = 0.0,
                 ack_cost: float = 0.0,
                 metrics: Optional[MetricsHub] = None,
                 cost_model: Optional[CostModel] = None,
                 tree_factory: Optional[Callable] = None,
                 stable_mark: Optional[str] = None):
        super().__init__(env, name, site, n_partitions, config,
                         insert_op_cost=insert_op_cost,
                         batch_cost=batch_cost,
                         heartbeat_cost=heartbeat_cost,
                         ack_cost=ack_cost,
                         metrics=metrics, cost_model=cost_model,
                         tree_factory=tree_factory)
        self.propagate_op_cost = propagate_op_cost
        self.stab_round_cost = stab_round_cost
        self.destinations: list[Process] = []
        #: metric name for per-op stabilization marks (throughput figures)
        self.stable_mark = stable_mark or f"eunomia_stable:dc{site}"

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_destination(self, dest: Process) -> None:
        """Register a remote receiver (or measurement sink)."""
        self.destinations.append(dest)

    # ------------------------------------------------------------------
    # Stable-run consumption
    # ------------------------------------------------------------------
    def _emit(self, stable_ts: int, ops: list) -> None:
        if not ops:
            self._post_stabilize(stable_ts, ops)
            return
        cost = (self.stab_round_cost
                + self.propagate_op_cost * len(ops) * max(1, len(self.destinations)))
        self._enqueue(lambda: self._propagate(stable_ts, ops), cost)

    def _propagate(self, stable_ts: int, ops: list) -> None:
        """PROCESS(StableOps): ship the ordered stable run to every site."""
        if stable_ts > self.shipped_stable:
            self.shipped_stable = stable_ts
        self.ops_stabilized += len(ops)
        self.metrics.mark_many(self.stable_mark, self.now, len(ops))
        tracer = self.metrics.tracer
        if tracer is not None:
            now, site = self.now, self.site
            for op in ops:
                tracer.stage_once(op, "propagate", now, site)
        batch = RemoteStableBatch(self.site, tuple(ops))
        self.multicast(self.destinations, batch)
        self._post_stabilize(stable_ts, ops)

    def _post_stabilize(self, stable_ts: int, ops: list) -> None:
        """Hook: the fault-tolerant leader announces StableTime here."""
