"""§5 "Communication Patterns": the partition → Eunomia propagation tree.

With many partitions, the all-to-one batch traffic into Eunomia "may not
scale in practice"; the paper's first remedy is a propagation tree among
partition servers.  :class:`TreeRelay` is one interior node of that tree: a
group of partitions sends its batches and heartbeats to the relay, which
coalesces everything that arrived during a flush window into a single
:class:`CombinedBatch` — cutting the *message* rate at Eunomia by the
group's fan-in while preserving each partition's FIFO sub-stream (the relay
forwards per-partition messages in arrival order over FIFO links, so
Properties 1–2 are untouched).

The cost is one extra LAN hop plus up to one flush window of added
stabilization lag — the trade the paper describes ("a slight increase in
the stabilization time").

With sharded stabilization (``n_shards > 1``) a relay's partition group may
span shards, so relays carry a routing table (:meth:`TreeRelay.set_routing`)
and emit one combined window per owning shard instead of one broadcast.

Relays are supported for the non-fault-tolerant service configuration; the
fault-tolerant uplink needs per-replica acknowledgement channels that a
coalescing relay would have to demultiplex (a straightforward but noisy
extension the paper does not describe), so the combination is rejected at
configuration time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..metrics.collector import MetricsHub, NullMetrics
from ..sim.env import Environment
from ..sim.process import CostModel, Process
from .messages import AddOpBatch, PartitionHeartbeat

__all__ = ["CombinedBatch", "TreeRelay"]


@dataclass(slots=True)
class CombinedBatch:
    """One flush window of traffic from a relay's partition group."""

    batches: tuple[AddOpBatch, ...]
    heartbeats: tuple[PartitionHeartbeat, ...]

    @property
    def size_bytes(self) -> int:
        return (sum(b.size_bytes for b in self.batches)
                + sum(h.size_bytes for h in self.heartbeats))

    def op_count(self) -> int:
        return sum(len(b.ops) for b in self.batches)


class TreeRelay(Process):
    """An interior node of the §5 propagation tree."""

    def __init__(self, env: Environment, name: str, site: int,
                 flush_interval: float = 0.001,
                 forward_cost: float = 0.0,
                 flush_cost: float = 0.0,
                 metrics: Optional[MetricsHub] = None):
        cost_model = CostModel(costs={
            "AddOpBatch": forward_cost,
            "PartitionHeartbeat": forward_cost,
        })
        super().__init__(env, name, site=site, cost_model=cost_model)
        self.flush_interval = flush_interval
        self.flush_cost = flush_cost
        self.metrics = metrics or NullMetrics()
        self.upstream: list[Process] = []
        self.routing: Optional[dict[int, Process]] = None
        self._batches: list[AddOpBatch] = []
        self._heartbeats: dict[int, PartitionHeartbeat] = {}
        self.messages_in = 0
        self.messages_out = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_upstream(self, targets: list[Process]) -> None:
        """The next tree level: Eunomia service(s) or a higher relay."""
        self.upstream = list(targets)

    def set_routing(self, routing: dict[int, Process]) -> None:
        """Route each partition's traffic to its owning Eunomia shard.

        ``routing`` maps a partition index to the upstream process that
        stabilizes it.  With a routing table installed, each flush emits one
        :class:`CombinedBatch` *per shard that has traffic* instead of one
        broadcast — a shard must never ingest (or bound its ShardStableTime
        by) partitions it does not own.  Unrouted partition indices are a
        wiring bug and fail loudly at flush time.
        """
        self.routing = dict(routing)

    def start(self) -> None:
        self.periodic(self.flush_interval, self._flush, cost=self.flush_cost)

    # ------------------------------------------------------------------
    # Ingestion (buffered, per-partition order preserved by list append)
    # ------------------------------------------------------------------
    def on_add_op_batch(self, msg: AddOpBatch, src: Process) -> None:
        self.messages_in += 1
        self._batches.append(msg)

    def on_partition_heartbeat(self, msg: PartitionHeartbeat, src: Process) -> None:
        self.messages_in += 1
        # Only the newest heartbeat per partition matters (they carry maxima)
        # — but never let a heartbeat overtake a buffered batch from the
        # same partition: PartitionTime must move through the batch's ops.
        self._heartbeats[msg.partition_index] = msg

    # ------------------------------------------------------------------
    # Flush
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        if not self._batches and not self._heartbeats:
            return
        batches, self._batches = self._batches, []
        heartbeats, self._heartbeats = self._heartbeats, {}
        if self.routing is None:
            combined = CombinedBatch(tuple(batches),
                                     tuple(heartbeats.values()))
            for target in self.upstream:
                self.send(target, combined)
                self.messages_out += 1
            return
        # Sharded upstream: one combined window per owning shard.  Within a
        # shard's window, per-partition arrival order is preserved (stable
        # grouping of an in-order list), so the FIFO sub-streams survive.
        per_shard: dict[int, tuple[Process, list, list]] = {}
        for batch in batches:
            target = self.routing[batch.partition_index]
            per_shard.setdefault(target.pid, (target, [], []))[1].append(batch)
        for index, beat in heartbeats.items():
            target = self.routing[index]
            per_shard.setdefault(target.pid, (target, [], []))[2].append(beat)
        for target, shard_batches, shard_beats in per_shard.values():
            self.send(target, CombinedBatch(tuple(shard_batches),
                                            tuple(shard_beats)))
            self.messages_out += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def compression_ratio(self) -> float:
        """Messages in per message out (the fan-in reduction achieved)."""
        if self.messages_out == 0:
            return 0.0
        return self.messages_in / self.messages_out
