"""Per-partition versioned key-value storage.

A thin, deterministic stand-in for Riak's backend: one in-memory map from key
to the winning :class:`repro.kvstore.types.Versioned` under last-writer-wins
(see ``Versioned.dominates``).  Local updates always win by construction
(their timestamp exceeds everything the partition has seen); remote updates
may lose to a causally-later or LWW-winning local version, in which case the
store is unchanged but the apply still counts for visibility metrics.

``fingerprint()`` hashes the full store state and is how the convergence
checker asserts that all datacenters end up identical.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterator, Optional, Tuple

from .types import Versioned

__all__ = ["VersionedStore"]


class VersionedStore:
    """LWW map: key → winning version."""

    def __init__(self) -> None:
        self._data: dict[Any, Versioned] = {}
        self.puts_applied = 0
        self.puts_superseded = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def get(self, key: Any) -> Optional[Versioned]:
        """Current winning version for ``key`` (None if never written)."""
        return self._data.get(key)

    def put(self, key: Any, version: Versioned) -> bool:
        """Install ``version`` if it wins LWW; returns True if it did."""
        current = self._data.get(key)
        if version.dominates(current):
            self._data[key] = version
            self.puts_applied += 1
            return True
        self.puts_superseded += 1
        return False

    def items(self) -> Iterator[Tuple[Any, Versioned]]:
        return iter(self._data.items())

    def snapshot(self) -> dict[Any, Tuple[int, int, Any]]:
        """Comparable view: key → (ts, origin_dc, value)."""
        return {k: (v.ts, v.origin_dc, v.value) for k, v in self._data.items()}

    def fingerprint(self) -> int:
        """Order-independent hash of the store contents (convergence checks)."""
        acc = 0
        for key, version in self._data.items():
            item = f"{key}|{version.ts}|{version.origin_dc}|{version.value}"
            acc ^= zlib.crc32(item.encode())
        return acc
