"""Key-value substrate: the update/version value types shared by every
protocol, Riak-style consistent-hash partitioning, and per-partition
last-writer-wins versioned storage."""

from .ring import ConsistentHashRing
from .storage import VersionedStore
from .types import METADATA_OVERHEAD_BYTES, Update, UpdateId, Versioned

__all__ = [
    "Update",
    "UpdateId",
    "Versioned",
    "VersionedStore",
    "ConsistentHashRing",
    "METADATA_OVERHEAD_BYTES",
]
