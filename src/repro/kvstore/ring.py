"""Consistent-hash partitioning of the key space.

The paper assumes "the key-space is divided into N partitions distributed
among datacenter machines" (§3.1) — in Riak this is a consistent-hashing
ring of vnodes.  :class:`ConsistentHashRing` reproduces that: each logical
partition owns many virtual points on a 32-bit ring, and a key is owned by
the partition whose point follows the key's hash.  Virtual nodes keep the
assignment balanced (tested), and CRC32 keeps it deterministic across runs
and processes.

Sibling partitions in different datacenters use the *same* ring, so
``partition_for(key)`` identifies the responsible partition index everywhere
— which is what lets §5's data/metadata separation ship values directly
partition→sibling partition.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Any

__all__ = ["ConsistentHashRing"]


def _hash32(data: str) -> int:
    return zlib.crc32(data.encode()) & 0xFFFFFFFF


class ConsistentHashRing:
    """Maps keys to one of ``n_partitions`` logical partitions."""

    def __init__(self, n_partitions: int, vnodes_per_partition: int = 64):
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self.n_partitions = n_partitions
        self.vnodes_per_partition = vnodes_per_partition
        points: list[tuple[int, int]] = []
        for partition in range(n_partitions):
            for vnode in range(vnodes_per_partition):
                points.append((_hash32(f"p{partition}/v{vnode}"), partition))
        points.sort()
        self._ring_hashes = [h for h, _ in points]
        self._ring_owners = [owner for _, owner in points]

    def partition_for(self, key: Any) -> int:
        """Index of the partition responsible for ``key``."""
        h = _hash32(str(key))
        idx = bisect.bisect_right(self._ring_hashes, h)
        if idx == len(self._ring_hashes):
            idx = 0  # wrap around the ring
        return self._ring_owners[idx]

    def histogram(self, keys) -> list[int]:
        """Keys-per-partition counts (used by balance tests)."""
        counts = [0] * self.n_partitions
        for key in keys:
            counts[self.partition_for(key)] += 1
        return counts
