"""Core value types flowing through every protocol in this repository.

An :class:`Update` is one client write: it carries the key/value payload, the
scalar hybrid timestamp assigned by its origin partition (Alg. 2), the vector
timestamp of the geo-replicated protocol (§4), and bookkeeping used by the
metrics layer (origin commit time).  Updates are deliberately plain data — no
behaviour — so that every subsystem (Eunomia, receivers, baselines, the
checker) can share them.

``size_bytes`` feeds the network/CPU cost accounting: metadata-only shipping
(§5's separation of data and metadata) makes Eunomia's traffic independent of
value size, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

__all__ = ["Update", "Versioned", "UpdateId", "METADATA_OVERHEAD_BYTES"]

#: Fixed per-update metadata footprint (key hash, origin, seq, framing).
METADATA_OVERHEAD_BYTES = 32

UpdateId = Tuple[int, int, int]  # (origin_dc, partition_index, per-partition seq)


@dataclass(slots=True)
class Update:
    """A single write operation as it travels through the system."""

    key: Any
    value: Any
    origin_dc: int
    partition_index: int
    seq: int                      # per-origin-partition sequence number
    ts: int                       # scalar hybrid timestamp (== vts[origin_dc])
    vts: Tuple[int, ...]          # vector timestamp, one entry per datacenter
    commit_time: float = 0.0      # sim time the origin partition committed it
    value_bytes: int = 0          # payload size (for network accounting)

    @property
    def uid(self) -> UpdateId:
        """Globally unique, order-stable identifier."""
        return (self.origin_dc, self.partition_index, self.seq)

    @property
    def size_bytes(self) -> int:
        """Wire size of the full update (payload + vector + framing)."""
        return self.value_bytes + 8 * len(self.vts) + METADATA_OVERHEAD_BYTES

    @property
    def metadata_bytes(self) -> int:
        """Wire size of the metadata-only form shipped through Eunomia (§5)."""
        return 8 * len(self.vts) + METADATA_OVERHEAD_BYTES

    def order_key(self) -> Tuple[int, int, int]:
        """Total-order key used by Eunomia's op buffer (ties → any order)."""
        return (self.ts, self.partition_index, self.seq)

    def with_value(self, value: Any) -> "Update":
        """Copy with a different payload (metadata↔data pairing, §5).

        Direct construction instead of ``dataclasses.replace`` — this runs
        once per shipped/applied op on the hot replication paths, and
        ``replace``'s field introspection is measurable there.
        """
        return Update(self.key, value, self.origin_dc, self.partition_index,
                      self.seq, self.ts, self.vts, self.commit_time,
                      self.value_bytes)


@dataclass(slots=True)
class Versioned:
    """A stored version: payload plus the ordering metadata for LWW."""

    value: Any
    ts: int
    origin_dc: int
    vts: Tuple[int, ...] = field(default=())

    def dominates(self, other: Optional["Versioned"]) -> bool:
        """Convergent last-writer-wins order that respects causality.

        Versions are totally ordered by ``(sum(vts), ts, origin_dc)``.  If
        version b causally follows version a then ``a.vts < b.vts``
        entry-wise-or-equal with at least one strict entry, hence
        ``sum(a.vts) < sum(b.vts)`` — so a causally newer write always wins
        over the versions it observed, even across datacenters with skewed
        clocks (a plain scalar-timestamp LWW can invert that).  Concurrent
        versions fall back to the deterministic ``(ts, origin_dc)``
        tie-break; because the order is total on the version set, every
        datacenter converges to the same winner.
        """
        if other is None:
            return True
        mine = (sum(self.vts), self.ts, self.origin_dc)
        theirs = (sum(other.vts), other.ts, other.origin_dc)
        return mine > theirs
