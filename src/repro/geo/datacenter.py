"""Assembly of one EunomiaKV datacenter.

A datacenter is N partitions (Alg. 2), an Eunomia service — one plain
:class:`EunomiaService`, a replicated group of :class:`EunomiaReplica`, or
(``n_shards > 1``) K :class:`EunomiaShard` workers behind a merging
:class:`ShardCoordinator` — and a receiver (Alg. 5), all wired together.
``connect`` then links datacenters pairwise: every stable-run propagator
(replica or coordinator) gains every remote receiver as a destination, and
every partition learns its remote siblings for the §5 direct data shipping.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..calibration import Calibration
from ..clocks.ntp import NtpSynchronizer
from ..clocks.physical import PhysicalClock
from ..core.config import EunomiaConfig
from ..core.partition import EunomiaPartition
from ..core.replica import EunomiaReplica
from ..core.service import EunomiaService
from ..core.shard import EunomiaShard, ShardCoordinator, ShardMap
from ..kvstore.ring import ConsistentHashRing
from ..metrics.collector import MetricsHub, NullMetrics
from ..sim.env import Environment
from ..sim.process import CostModel

__all__ = ["Datacenter"]


class Datacenter:
    """One site of an EunomiaKV deployment."""

    def __init__(self, env: Environment, dc_id: int, n_dcs: int,
                 n_partitions: int, ring: ConsistentHashRing,
                 config: EunomiaConfig,
                 calibration: Optional[Calibration] = None,
                 metrics: Optional[MetricsHub] = None,
                 ntp: Optional[NtpSynchronizer] = None,
                 tree_factory: Optional[Callable] = None):
        from .receiver import Receiver  # local import avoids cycle at module load

        self.env = env
        self.dc_id = dc_id
        self.n_dcs = n_dcs
        self.config = config
        self.ring = ring
        cal = calibration or Calibration()
        self.calibration = cal
        self.metrics = metrics or NullMetrics()
        rng = env.rng.stream(f"clocks/dc{dc_id}")

        # -- partitions -------------------------------------------------
        self.partitions: list[EunomiaPartition] = []
        for index in range(n_partitions):
            clock = PhysicalClock.random(env, rng)
            if ntp is not None:
                ntp.manage(clock)
            partition = EunomiaPartition(
                env, f"dc{dc_id}/p{index}", dc_id, index, n_dcs,
                clock, config, calibration=cal, metrics=self.metrics,
            )
            self.partitions.append(partition)

        # -- Eunomia service (plain, replicated, or sharded) ---------------
        self.eunomia_replicas: list[EunomiaService] = []
        self.shards: list[EunomiaShard] = []
        self.coordinator: Optional[ShardCoordinator] = None
        self.shard_map: Optional[ShardMap] = None
        if config.n_shards > 1:
            self.shard_map = ShardMap(n_partitions, config.n_shards,
                                      config.shard_policy)
            self.coordinator = ShardCoordinator(
                env, f"dc{dc_id}/eunomia-coord", dc_id, config.n_shards,
                config,
                forward_op_cost=cal.cost("eunomia_coord_op"),
                merge_round_cost=cal.overhead("eunomia_coord_round"),
                batch_cost=cal.overhead("eunomia_batch"),
                metrics=self.metrics,
            )
            for sid in range(config.n_shards):
                shard = EunomiaShard(
                    env, f"dc{dc_id}/eunomia-shard{sid}", dc_id,
                    n_partitions, config, shard_id=sid,
                    owned=self.shard_map.owned_by(sid),
                    serialize_op_cost=cal.cost("eunomia_shard_serialize_op"),
                    stab_round_cost=cal.overhead("eunomia_stab_round"),
                    insert_op_cost=cal.cost("eunomia_insert_op"),
                    batch_cost=cal.overhead("eunomia_batch"),
                    heartbeat_cost=cal.overhead("eunomia_heartbeat"),
                    metrics=self.metrics, tree_factory=tree_factory,
                )
                shard.set_coordinator(self.coordinator)
                self.shards.append(shard)
        elif config.fault_tolerant:
            for rid in range(config.n_replicas):
                replica = EunomiaReplica(
                    env, f"dc{dc_id}/eunomia{rid}", dc_id, n_partitions,
                    config, replica_id=rid,
                    ack_cost=cal.overhead("eunomia_ack"),
                    propagate_op_cost=cal.cost("eunomia_propagate_op"),
                    stab_round_cost=cal.overhead("eunomia_stab_round"),
                    insert_op_cost=cal.cost("eunomia_insert_op"),
                    batch_cost=cal.overhead("eunomia_batch"),
                    heartbeat_cost=cal.overhead("eunomia_heartbeat"),
                    metrics=self.metrics, tree_factory=tree_factory,
                )
                self.eunomia_replicas.append(replica)
            for replica in self.eunomia_replicas:
                replica.set_peers(self.eunomia_replicas)
        else:
            self.eunomia_replicas.append(EunomiaService(
                env, f"dc{dc_id}/eunomia", dc_id, n_partitions, config,
                propagate_op_cost=cal.cost("eunomia_propagate_op"),
                stab_round_cost=cal.overhead("eunomia_stab_round"),
                insert_op_cost=cal.cost("eunomia_insert_op"),
                batch_cost=cal.overhead("eunomia_batch"),
                heartbeat_cost=cal.overhead("eunomia_heartbeat"),
                metrics=self.metrics, tree_factory=tree_factory,
            ))

        # -- receiver -----------------------------------------------------
        self.receiver = Receiver(
            env, f"dc{dc_id}/receiver", dc_id, n_dcs,
            check_interval=config.receiver_check_interval,
            calibration=cal, metrics=self.metrics,
        )
        self.receiver.set_partitions(ring, self.partitions)

        # -- partition → stabilizer wiring (§5 tree optional) --------------
        self.relays = []
        if config.use_propagation_tree:
            from ..core.tree import TreeRelay

            groups = [self.partitions[i:i + config.tree_fanout]
                      for i in range(0, n_partitions, config.tree_fanout)]
            for g, group in enumerate(groups):
                relay = TreeRelay(
                    env, f"dc{dc_id}/relay{g}", dc_id,
                    flush_interval=config.tree_flush_interval,
                    forward_cost=cal.overhead("relay_forward"),
                    flush_cost=cal.overhead("relay_flush"),
                    metrics=self.metrics,
                )
                if self.shards:
                    relay.set_upstream(self.shards)
                    relay.set_routing({
                        p.index: self.shards[self.shard_map.shard_of(p.index)]
                        for p in group})
                else:
                    relay.set_upstream(self.eunomia_replicas)
                for partition in group:
                    partition.set_eunomia([relay])
                self.relays.append(relay)
        elif self.shards:
            for partition in self.partitions:
                owner = self.shards[self.shard_map.shard_of(partition.index)]
                partition.set_eunomia([owner])
        else:
            for partition in self.partitions:
                partition.set_eunomia(self.eunomia_replicas)

    # ------------------------------------------------------------------
    # Cross-datacenter wiring
    # ------------------------------------------------------------------
    def connect(self, other: "Datacenter") -> None:
        """Wire this datacenter to a remote one (directional; call both ways)."""
        if other.dc_id == self.dc_id:
            raise ValueError("cannot connect a datacenter to itself")
        for propagator in self.propagators():
            propagator.add_destination(other.receiver)
        for mine, theirs in zip(self.partitions, other.partitions):
            mine.set_sibling(other.dc_id, theirs)

    def propagators(self) -> list:
        """The processes that ship stable runs to remote receivers."""
        if self.coordinator is not None:
            return [self.coordinator]
        return list(self.eunomia_replicas)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        for partition in self.partitions:
            partition.start()
        for relay in self.relays:
            relay.start()
        for shard in self.shards:
            shard.start()
        if self.coordinator is not None:
            self.coordinator.start()
        for replica in self.eunomia_replicas:
            replica.start()
        self.receiver.start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def leader(self):
        """The process shipping stable runs: the leading replica, the plain
        service, or (sharded) the coordinator."""
        if self.coordinator is not None:
            return self.coordinator
        for replica in self.eunomia_replicas:
            if not replica.crashed and getattr(replica, "is_leader", lambda: True)():
                return replica
        return self.eunomia_replicas[0]

    def store_snapshot(self) -> dict:
        """Union of all partition stores: key → (ts, origin, value)."""
        merged: dict = {}
        for partition in self.partitions:
            merged.update(partition.store.snapshot())
        return merged

    def fingerprint(self) -> int:
        """Order-independent hash of the whole datacenter's data."""
        acc = 0
        for partition in self.partitions:
            acc ^= partition.store.fingerprint()
        return acc
