"""Assembly of one datacenter — any protocol, one spine.

A :class:`Datacenter` owns the wiring every protocol shares: it creates
the :class:`~repro.core.protocols.SiteContext` (per-DC clock stream, NTP
discipline, ring, metrics), asks the protocol's
:class:`~repro.core.protocols.ProtocolSpec` plugin for the
protocol-specific pieces (partitions, stabilizer/sequencer complex,
receiver), and then owns cross-datacenter wiring (``connect``: every
stable-stream propagator gains every remote receiver as a destination,
and every partition learns its remote siblings for the §5 direct data
shipping), start order, and store introspection.

For EunomiaKV the plugin (:class:`EunomiaProtocol`, registered here) is a
datacenter of N partitions (Alg. 2), an Eunomia stabilizer complex — any
of the four shapes :func:`repro.core.assembly.build_stabilizer_stack`
produces (plain service, Alg. 4 replica group, K-shard pipeline, or the
fault-tolerant K-shard × R-replica composition) — and a receiver
(Alg. 5).  The baseline protocols plug into the *same* spine from
:mod:`repro.baselines`, which is what makes every measured difference
protocol, not plumbing.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..calibration import Calibration
from ..clocks.ntp import NtpSynchronizer
from ..core.assembly import build_stabilizer_stack
from ..core.config import EunomiaConfig
from ..core.partition import EunomiaPartition
from ..core.protocols import (
    ProtocolSpec,
    SiteContext,
    SitePlan,
    register_protocol,
)
from ..kvstore.ring import ConsistentHashRing
from ..metrics.collector import MetricsHub, NullMetrics
from ..sim.env import Environment

__all__ = ["Datacenter", "EunomiaProtocol"]


class EunomiaProtocol(ProtocolSpec):
    """EunomiaKV as a plugin: Alg. 2 partitions + stabilizer stack + Alg. 5
    receiver.  Options: ``config`` (:class:`EunomiaConfig`, all four
    stabilizer shapes, durability, buffer backends), ``tree_factory``
    (pins every stabilizer's buffer structure — the §6 ablation hook)."""

    name = "eunomia"

    def client_entries(self, n_dcs: int) -> int:
        return n_dcs

    def option_names(self) -> tuple:
        return ("config", "tree_factory")

    def prepare(self, spec, options: dict) -> dict:
        config = options.get("config") or EunomiaConfig()
        config.validate()
        options["config"] = config
        options.setdefault("tree_factory", None)
        return options

    def build_site(self, site: SiteContext) -> SitePlan:
        from .receiver import Receiver  # local import avoids cycle at load

        config = site.options["config"]
        cal = site.calibration
        pmap = site.partial_placement()
        # All N partitions are constructed in index order even under a
        # partial placement (the per-DC clock RNG stream depends on it);
        # non-resident ones are never started, wired, or routed to.
        partitions = [
            EunomiaPartition(
                site.env, site.pname(index), site.dc_id, index, site.n_dcs,
                site.clock(), config, calibration=cal, metrics=site.metrics,
            )
            for index in range(site.n_partitions)
        ]
        resident = (partitions if pmap is None else
                    [partitions[i]
                     for i in pmap.resident_partitions(site.dc_id)])
        stack = build_stabilizer_stack(
            site.env, site.dc_id, site.n_partitions, config, cal,
            metrics=site.metrics, tree_factory=site.options["tree_factory"],
            name_prefix=f"dc{site.dc_id}/",
            indices=None if pmap is None else
            pmap.resident_partitions(site.dc_id),
        )
        receiver = Receiver(
            site.env, f"dc{site.dc_id}/receiver", site.dc_id, site.n_dcs,
            check_interval=config.receiver_check_interval,
            calibration=cal, metrics=site.metrics, placement=pmap,
            pipeline=config.receiver_pipeline,
        )
        receiver.set_partitions(site.ring, partitions)
        relays = stack.wire_uplinks(resident)
        return SitePlan(
            partitions=partitions, extras=stack.processes(),
            receiver=receiver, propagators=stack.propagators(),
            relays=relays, stack=stack,
        )


_EUNOMIA = register_protocol(EunomiaProtocol())


class Datacenter:
    """One site of a geo-replicated deployment, any registered protocol.

    The legacy signature — ``Datacenter(env, dc_id, n_dcs, n_partitions,
    ring, config)`` — still builds an EunomiaKV site; passing
    ``protocol=`` (a :class:`ProtocolSpec`) with a prepared ``options``
    dict builds any other plugin over the identical frame.
    """

    def __init__(self, env: Environment, dc_id: int, n_dcs: int,
                 n_partitions: int, ring: ConsistentHashRing,
                 config: Optional[EunomiaConfig] = None,
                 calibration: Optional[Calibration] = None,
                 metrics: Optional[MetricsHub] = None,
                 ntp: Optional[NtpSynchronizer] = None,
                 tree_factory: Optional[Callable] = None,
                 protocol: Optional[ProtocolSpec] = None,
                 options: Optional[dict] = None,
                 placement=None):
        self.env = env
        self.dc_id = dc_id
        self.n_dcs = n_dcs
        self.ring = ring
        cal = calibration or Calibration()
        self.calibration = cal
        self.metrics = metrics or NullMetrics()
        if protocol is None:
            if options is not None:
                raise TypeError(
                    "options= requires protocol=; the legacy EunomiaKV "
                    "signature takes config=/tree_factory= directly")
            protocol = _EUNOMIA
            options = {"config": config or EunomiaConfig(),
                       "tree_factory": tree_factory}
        self.protocol = protocol
        self.site = SiteContext(
            env=env, dc_id=dc_id, n_dcs=n_dcs, n_partitions=n_partitions,
            ring=ring, calibration=cal, metrics=self.metrics, ntp=ntp,
            options=options if options is not None else {},
            placement=placement,
        )
        #: the placement map when genuinely partial, else None — the full
        #: path through connect/start/introspection must stay identical
        self.placement = self.site.partial_placement()
        self.plan = protocol.build_site(self.site)
        self.partitions = self.plan.partitions
        self.extras = self.plan.extras
        self.receiver = self.plan.receiver
        self.relays = self.plan.relays

        # -- Eunomia introspection sugar (empty for other protocols) -------
        stack = self.plan.stack
        self.stack = stack
        self.config = options.get("config") if options else None
        self.eunomia_replicas = stack.replicas if stack else []
        self.shards = stack.shards if stack else []
        self.coordinators = stack.coordinators if stack else []
        #: the single coordinator of an unreplicated sharded deployment
        #: (None otherwise; kept for ablation/test introspection)
        self.coordinator = (self.coordinators[0]
                            if len(self.coordinators) == 1 else None)
        self.replica_groups = stack.groups if stack else []
        self.shard_map = stack.shard_map if stack else None

    # ------------------------------------------------------------------
    # Cross-datacenter wiring
    # ------------------------------------------------------------------
    def connect(self, other: "Datacenter") -> None:
        """Wire this datacenter to a remote one (directional; call both ways).

        Under a partial placement only overlapping DCs exchange streams:
        the propagator → receiver edge exists iff some partition is
        resident at both sites, and sibling links exist per co-resident
        index — a DC never receives (and never waits on) traffic for data
        it does not store.
        """
        if other.dc_id == self.dc_id:
            raise ValueError("cannot connect a datacenter to itself")
        pmap = self.placement
        if other.receiver is not None and (
                pmap is None or pmap.overlaps(self.dc_id, other.dc_id)):
            for propagator in self.propagators():
                propagator.add_destination(other.receiver)
        if pmap is None:
            for mine, theirs in zip(self.partitions, other.partitions):
                mine.set_sibling(other.dc_id, theirs)
        else:
            for index in pmap.resident_partitions(self.dc_id):
                if pmap.is_resident(other.dc_id, index):
                    self.partitions[index].set_sibling(
                        other.dc_id, other.partitions[index])

    def propagators(self) -> list:
        """The processes that ship ordered streams to remote receivers."""
        return self.plan.propagators

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        for index, partition in enumerate(self.partitions):
            if self.placement is not None and not self.placement.is_resident(
                    self.dc_id, index):
                continue  # constructed for clock-stream parity, never run
            start = getattr(partition, "start", None)
            if start is not None:
                start()
        for relay in self.relays:
            relay.start()
        for proc in self.extras:
            start = getattr(proc, "start", None)
            if start is not None:
                start()
        if self.receiver is not None:
            self.receiver.start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def leader(self):
        """The process shipping this site's ordered stream (protocol-defined:
        the plain service, the leading replica, the leading replica's shard
        coordinator, or the sequencer)."""
        return self.protocol.leader(self.plan)

    def resident_partitions(self) -> list:
        """The partition processes this DC actually stores (all, if full)."""
        if self.placement is None:
            return list(self.partitions)
        return [self.partitions[i]
                for i in self.placement.resident_partitions(self.dc_id)]

    def stable_time_us(self) -> Optional[int]:
        """This DC's stabilization floor in clock microseconds, or None.

        Protocol-generic (the gauge scraper's stabilization-lag source):
        Eunomia-style sites report the leader stabilizer's ``stable_time``;
        GST-family sites report the minimum tracked summary entry across
        resident partitions (GST scalar, or min over the GSV); protocols
        with neither notion (eventual, sequencer stores) return None.
        Read-only — never touches a clock.
        """
        if self.stack is not None:
            return getattr(self.leader(), "stable_time", None)
        floor: Optional[int] = None
        for partition in self.resident_partitions():
            summary = getattr(partition, "summary", None)
            if summary is None:
                continue
            for entry in summary:
                # UNTRACKED sentinel entries (partial placement) act as
                # +inf in the aggregator min and are skipped here too
                if entry >= (1 << 62):
                    continue
                if floor is None or entry < floor:
                    floor = entry
        return floor

    def store_snapshot(self) -> dict:
        """Union of the resident partition stores: key → (ts, origin, value)."""
        merged: dict = {}
        for partition in self.resident_partitions():
            merged.update(partition.datastore().snapshot())
        return merged

    def fingerprint(self) -> int:
        """Order-independent hash of the datacenter's resident data."""
        acc = 0
        for partition in self.resident_partitions():
            acc ^= partition.datastore().fingerprint()
        return acc
