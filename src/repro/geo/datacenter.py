"""Assembly of one EunomiaKV datacenter.

A datacenter is N partitions (Alg. 2), an Eunomia stabilizer complex — any
of the four shapes :func:`repro.core.assembly.build_stabilizer_stack`
produces (plain service, Alg. 4 replica group, K-shard pipeline, or the
fault-tolerant K-shard × R-replica composition) — and a receiver (Alg. 5),
all wired together.  ``connect`` then links datacenters pairwise: every
stable-run propagator (service, replica, or coordinator) gains every
remote receiver as a destination, and every partition learns its remote
siblings for the §5 direct data shipping.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..calibration import Calibration
from ..clocks.ntp import NtpSynchronizer
from ..clocks.physical import PhysicalClock
from ..core.assembly import build_stabilizer_stack
from ..core.config import EunomiaConfig
from ..core.partition import EunomiaPartition
from ..kvstore.ring import ConsistentHashRing
from ..metrics.collector import MetricsHub, NullMetrics
from ..sim.env import Environment

__all__ = ["Datacenter"]


class Datacenter:
    """One site of an EunomiaKV deployment."""

    def __init__(self, env: Environment, dc_id: int, n_dcs: int,
                 n_partitions: int, ring: ConsistentHashRing,
                 config: EunomiaConfig,
                 calibration: Optional[Calibration] = None,
                 metrics: Optional[MetricsHub] = None,
                 ntp: Optional[NtpSynchronizer] = None,
                 tree_factory: Optional[Callable] = None):
        from .receiver import Receiver  # local import avoids cycle at module load

        self.env = env
        self.dc_id = dc_id
        self.n_dcs = n_dcs
        self.config = config
        self.ring = ring
        cal = calibration or Calibration()
        self.calibration = cal
        self.metrics = metrics or NullMetrics()
        rng = env.rng.stream(f"clocks/dc{dc_id}")

        # -- partitions -------------------------------------------------
        self.partitions: list[EunomiaPartition] = []
        for index in range(n_partitions):
            clock = PhysicalClock.random(env, rng)
            if ntp is not None:
                ntp.manage(clock)
            partition = EunomiaPartition(
                env, f"dc{dc_id}/p{index}", dc_id, index, n_dcs,
                clock, config, calibration=cal, metrics=self.metrics,
            )
            self.partitions.append(partition)

        # -- Eunomia stabilizer complex (any of the four shapes) -----------
        self.stack = build_stabilizer_stack(
            env, dc_id, n_partitions, config, cal, metrics=self.metrics,
            tree_factory=tree_factory, name_prefix=f"dc{dc_id}/",
        )
        self.eunomia_replicas = self.stack.replicas
        self.shards = self.stack.shards
        self.coordinators = self.stack.coordinators
        #: the single coordinator of an unreplicated sharded deployment
        #: (None otherwise; kept for ablation/test introspection)
        self.coordinator = (self.coordinators[0]
                            if len(self.coordinators) == 1 else None)
        self.replica_groups = self.stack.groups
        self.shard_map = self.stack.shard_map

        # -- receiver -----------------------------------------------------
        self.receiver = Receiver(
            env, f"dc{dc_id}/receiver", dc_id, n_dcs,
            check_interval=config.receiver_check_interval,
            calibration=cal, metrics=self.metrics,
        )
        self.receiver.set_partitions(ring, self.partitions)

        # -- partition → stabilizer wiring (§5 tree optional) --------------
        self.relays = self.stack.wire_uplinks(self.partitions)

    # ------------------------------------------------------------------
    # Cross-datacenter wiring
    # ------------------------------------------------------------------
    def connect(self, other: "Datacenter") -> None:
        """Wire this datacenter to a remote one (directional; call both ways)."""
        if other.dc_id == self.dc_id:
            raise ValueError("cannot connect a datacenter to itself")
        for propagator in self.propagators():
            propagator.add_destination(other.receiver)
        for mine, theirs in zip(self.partitions, other.partitions):
            mine.set_sibling(other.dc_id, theirs)

    def propagators(self) -> list:
        """The processes that ship stable runs to remote receivers."""
        return self.stack.propagators()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        for partition in self.partitions:
            partition.start()
        for relay in self.relays:
            relay.start()
        for proc in self.stack.processes():
            proc.start()
        self.receiver.start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def leader(self):
        """The process shipping stable runs: the plain service, the leading
        replica, or the (leading replica's) shard coordinator."""
        return self.stack.leader()

    def store_snapshot(self) -> dict:
        """Union of all partition stores: key → (ts, origin, value)."""
        merged: dict = {}
        for partition in self.partitions:
            merged.update(partition.store.snapshot())
        return merged

    def fingerprint(self) -> int:
        """Order-independent hash of the whole datacenter's data."""
        acc = 0
        for partition in self.partitions:
            acc ^= partition.store.fingerprint()
        return acc
