"""Geo-replication layer: Algorithm 5 receivers, datacenter assembly, and
the EunomiaKV system facade used by examples and the benchmark harness."""

from .datacenter import Datacenter, EunomiaProtocol
from .receiver import Receiver
from .system import (
    GeoSystem,
    GeoSystemSpec,
    build_eunomia_system,
    build_geo_system,
)

__all__ = [
    "Receiver",
    "Datacenter",
    "EunomiaProtocol",
    "GeoSystem",
    "GeoSystemSpec",
    "build_eunomia_system",
    "build_geo_system",
]
