"""The geo-replicated deployment spine, shared by every protocol.

:func:`build_geo_system` assembles M datacenters over the paper's WAN
topology — NTP-disciplined drifting clocks, a consistent-hash ring,
closed-loop client sessions, pairwise receiver/sibling wiring — and asks
the named :class:`~repro.core.protocols.ProtocolSpec` plugin for the
protocol-specific pieces of each site.  Every protocol in the registry
(EunomiaKV and all of the paper's baselines) deploys over this one frame,
so every measured difference is protocol, not plumbing:

    system = build_geo_system("gentlerain", GeoSystemSpec(seed=1),
                              WorkloadSpec())
    system.run(duration=10.0)
    print(system.total_throughput())

:func:`build_eunomia_system` is the EunomiaKV-flavored wrapper the
examples use; the baseline wrappers live in :mod:`repro.baselines`.  All
return the same :class:`GeoSystem` facade, so every experiment script
treats protocols uniformly — including failure injection:
``system.failures()`` hands out the system's
:class:`~repro.sim.failure.FailureSchedule`, armed at start, for any
protocol.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from ..calibration import Calibration
from ..clocks.ntp import NtpSynchronizer
from ..core.client import SessionClient
from ..core.config import EunomiaConfig
from ..core.placement import PlacementMap
from ..core.protocols import ProtocolSpec, get_protocol
from ..kvstore.ring import ConsistentHashRing
from ..metrics import MetricsHub, steady_window, throughput
from ..sim.env import Environment
from ..sim.latency import RttMatrix, paper_topology
from ..sim.network import Network
from ..workload.generator import WorkloadSpec
from .datacenter import Datacenter

__all__ = ["GeoSystemSpec", "GeoSystem", "build_geo_system",
           "build_eunomia_system"]


@dataclass
class GeoSystemSpec:
    """Deployment shape shared by every protocol builder."""

    n_dcs: int = 3
    partitions_per_dc: int = 8
    clients_per_dc: int = 16
    seed: int = 0
    rtt: Optional[RttMatrix] = None          # default: the paper's topology
    calibration: Calibration = field(default_factory=Calibration)
    ntp_residual_us: float = 100.0
    #: event-loop backend (:data:`repro.sim.env.SCHEDULER_BACKENDS`):
    #: ``"heap"`` (reference) or ``"wheel"`` (slotted time-wheel) — both
    #: fire in identical (time, seq) order, so runs are bit-reproducible
    #: across backends.
    scheduler: str = "heap"
    #: partial geo-replication: which partition indices each DC stores.
    #: ``None``/``"full"`` is full replication (bit-identical to the
    #: pre-placement spine); ``"stride:K"``, an explicit ``"dc0=0,1;..."``
    #: string, a ``{dc: indices}`` dict, or a
    #: :class:`~repro.core.placement.PlacementMap` select partial shapes
    #: with client forwarding to the nearest resident DC.
    placement: Union[None, str, dict, PlacementMap] = None
    #: client retry timeout (seconds) for lost in-flight operations.
    #: ``None`` (default) keeps the historical no-retry closed loop; set
    #: it for fault schedules that crash forwarding targets, where a
    #: dropped request would otherwise stall the session forever.
    client_retry: Optional[float] = None

    def topology(self) -> RttMatrix:
        return self.rtt if self.rtt is not None else paper_topology(self.n_dcs)

    def placement_map(self) -> Optional[PlacementMap]:
        """The normalized placement, or None for full replication."""
        pmap = PlacementMap.from_spec(self.n_dcs, self.partitions_per_dc,
                                      self.placement)
        return None if pmap.is_full() else pmap


class GeoSystem:
    """A running multi-datacenter deployment plus its measurement state."""

    def __init__(self, env: Environment, spec: GeoSystemSpec,
                 metrics: MetricsHub, datacenters: Sequence,
                 clients: Sequence[SessionClient], protocol: str,
                 ntp=None, placement: Optional[PlacementMap] = None):
        self.env = env
        self.spec = spec
        self.metrics = metrics
        self.datacenters = list(datacenters)
        self.clients = list(clients)
        self.protocol = protocol
        #: normalized placement map (None = full replication)
        self.placement = placement
        #: observability handle, set by :meth:`observe` (None = detached)
        self.obs = None
        #: the NTP synchronizer disciplining every site clock (None for
        #: hand-assembled systems) — the chaos DSL's ntp_outage target
        self.ntp = ntp
        self._started = False
        self._run_start = 0.0
        self._run_end = 0.0
        self._failures = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for dc in self.datacenters:
            dc.start()
        for client in self.clients:
            client.start()
        if self._failures is not None:
            self._failures.arm()

    def failures(self):
        """This deployment's :class:`~repro.sim.failure.FailureSchedule`.

        One shared schedule per system, armed automatically at
        :meth:`start` — so crash/recover timelines apply uniformly to any
        protocol's processes (partitions, stabilizers, sequencers):

            system.failures().crash_at(1.0, system.datacenters[0].partitions[1])
        """
        if self._failures is None:
            from ..sim.failure import FailureSchedule

            self._failures = FailureSchedule(self.env)
            if self._started:
                self._failures.arm()
        return self._failures

    def observe(self, **kwargs):
        """Attach causal tracing + SLO sketches + gauges (see repro.obs).

        Convenience for ``attach_observability(self, **kwargs)``; call
        before :meth:`run`.  The handle is also kept on ``self.obs``.
        """
        from ..obs import attach_observability  # local import avoids cycle

        self.obs = attach_observability(self, **kwargs)
        return self.obs

    def run(self, duration: float) -> None:
        """Start (if needed) and advance the simulation ``duration`` seconds."""
        self.start()
        self._run_start = self.env.now
        self.env.run(until=self.env.now + duration)
        self._run_end = self.env.now

    def quiesce(self, drain: float = 2.0) -> None:
        """Stop clients, then run ``drain`` seconds so replication settles."""
        for client in self.clients:
            client.stop()
        self.env.run(until=self.env.now + drain)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def window(self) -> tuple[float, float]:
        """Steady-state measurement window of the last ``run`` call."""
        return steady_window(self._run_start, self._run_end)

    def total_throughput(self) -> float:
        """Aggregate client ops/second over the steady-state window."""
        return throughput(self.metrics.mark_times("ops"), self.window())

    def dc_throughput(self, dc_id: int) -> float:
        return throughput(self.metrics.mark_times(f"ops:dc{dc_id}"),
                          self.window())

    def visibility_extra_ms(self, origin: int, dest: int) -> list[float]:
        """Per-update extra visibility delays (ms) within the window."""
        lo, hi = self.window()
        series = self.metrics.point_series(f"vis_extra_ms:{origin}->{dest}")
        return [v for t, v in series if lo <= t <= hi]

    def converged(self) -> bool:
        """True iff every partition's resident DCs hold identical data
        (call after quiesce).  Under full replication this is the classic
        whole-DC fingerprint comparison; under a partial placement each
        partition is compared only across the DCs that store it."""
        if self.placement is None:
            prints = {dc.fingerprint() for dc in self.datacenters}
            return len(prints) == 1
        for index in range(self.placement.n_partitions):
            prints = {
                self.datacenters[dc].partitions[index].datastore().fingerprint()
                for dc in self.placement.residents(index)
            }
            if len(prints) != 1:
                return False
        return True

    def snapshots(self) -> list[dict]:
        return [dc.store_snapshot() for dc in self.datacenters]


def build_geo_system(protocol: Union[str, ProtocolSpec],
                     spec: GeoSystemSpec,
                     workload: WorkloadSpec,
                     metrics: Optional[MetricsHub] = None,
                     history=None,
                     **options) -> GeoSystem:
    """Construct a complete deployment of any registered protocol.

    This is the one spine every protocol deploys over: environment, WAN
    topology, NTP discipline, ring, per-site plugin build, pairwise
    receiver/sibling wiring, and identical closed-loop clients.
    ``options`` are protocol tunables, normalized once by the plugin's
    :meth:`~repro.core.protocols.ProtocolSpec.prepare` (e.g. ``config=``
    for EunomiaKV, ``timings=``/``pending_backend=`` for the GST stores,
    ``chain_length=`` for the chain-replicated sequencer).
    """
    proto = get_protocol(protocol) if isinstance(protocol, str) else protocol
    unknown = set(options) - set(proto.option_names())
    if unknown:
        raise TypeError(
            f"unknown option(s) for protocol {proto.name!r}: "
            f"{sorted(unknown)}; it understands "
            f"{sorted(proto.option_names()) or 'no options'}")
    options = proto.prepare(spec, dict(options))
    metrics = metrics or MetricsHub()
    pmap = spec.placement_map()
    env = Environment(seed=spec.seed, scheduler=spec.scheduler)
    topo = spec.topology()
    Network(env, topo)
    ntp = NtpSynchronizer(env, residual_us=spec.ntp_residual_us)
    ring = ConsistentHashRing(spec.partitions_per_dc)

    datacenters = [
        Datacenter(env, dc_id, spec.n_dcs, spec.partitions_per_dc, ring,
                   calibration=spec.calibration, metrics=metrics, ntp=ntp,
                   protocol=proto, options=options, placement=pmap)
        for dc_id in range(spec.n_dcs)
    ]
    for a in datacenters:
        for b in datacenters:
            if a is not b:
                a.connect(b)

    built = workload.build()
    n_entries = proto.client_entries(spec.n_dcs)
    clients = []
    for dc in datacenters:
        if pmap is None:
            routing = dc.partitions
        else:
            # Read/write forwarding: a non-resident index routes to the
            # nearest resident DC's same-index partition over the normal
            # client lanes; the reply's vector metadata merges into the
            # session clock exactly as for a local operation.
            routing = [
                datacenters[pmap.nearest_resident(dc.dc_id, index,
                                                  topo)].partitions[index]
                for index in range(spec.partitions_per_dc)
            ]
        for c in range(spec.clients_per_dc):
            clients.append(SessionClient(
                env, f"dc{dc.dc_id}/client{c}", dc.dc_id,
                n_entries=n_entries, partitions=routing, ring=ring,
                workload=built, calibration=spec.calibration,
                metrics=metrics, think_time=workload.think_time,
                history=history, retry_timeout=spec.client_retry,
            ))
    return GeoSystem(env, spec, metrics, datacenters, clients,
                     protocol=proto.name, ntp=ntp, placement=pmap)


def build_eunomia_system(spec: GeoSystemSpec,
                         workload: WorkloadSpec,
                         config: Optional[EunomiaConfig] = None,
                         metrics: Optional[MetricsHub] = None,
                         tree_factory: Optional[Callable] = None,
                         history=None) -> GeoSystem:
    """Construct a complete EunomiaKV deployment (not yet started).

    .. deprecated::
        Call ``build_geo_system("eunomia", ...)`` — one deployment spine,
        protocol selected by name.  This wrapper forwards verbatim and will
        be removed.

    ``tree_factory`` (when given) pins every stabilizer's buffer to that
    tree structure — the §6 ablation hook; otherwise
    ``config.buffer_backend`` selects the strategy (``"runs"`` by default).
    """
    warnings.warn(
        "build_eunomia_system is deprecated; use "
        "build_geo_system('eunomia', ...)",
        DeprecationWarning, stacklevel=2,
    )
    return build_geo_system("eunomia", spec, workload, metrics=metrics,
                            history=history, config=config,
                            tree_factory=tree_factory)
