"""The per-datacenter receiver (Algorithm 5).

The receiver is the counterpart of remote Eunomia services: it takes their
totally-ordered update streams and releases each update to the responsible
local partition once causally safe.  Two conditions gate an update ``u``
from origin ``k`` (Alg. 5 line 12):

1. every earlier update from ``k`` has been applied locally — enforced by
   applying each origin's queue strictly in order, one in flight at a time
   (Eunomia's total order over-approximates causality within a stream, so
   the whole prefix must be treated as a dependency);
2. ``SiteTime_m[d] >= u.vts[d]`` for every other remote datacenter ``d`` —
   the explicitly named cross-datacenter dependencies.

Entry ``m`` (the local datacenter) needs no check: a local update's vector
entry can only reach a client — and hence appear as a dependency — after
the local partition stored it.

Unlike Algorithm 5's single tail-recursive FLUSH, queues of *different*
origins progress concurrently (one in-flight apply per origin); both gating
conditions are still enforced, so the applied order is identical to some
serialization the algorithm could produce.  Duplicate deliveries — possible
when a new Eunomia leader re-ships the window between the last
StableAnnounce and the crash — are filtered by timestamp against the last
enqueued/applied position per origin.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..calibration import Calibration
from ..kvstore.ring import ConsistentHashRing
from ..kvstore.types import Update
from ..metrics.collector import MetricsHub, NullMetrics
from ..sim.env import Environment
from ..sim.process import CostModel, Process
from ..core.messages import ApplyRemote, ApplyRemoteOk, RemoteStableBatch

__all__ = ["Receiver"]


class Receiver(Process):
    """r_m: queues remote update streams and applies them causally."""

    def __init__(self, env: Environment, name: str, dc_id: int, n_dcs: int,
                 check_interval: float,
                 calibration: Optional[Calibration] = None,
                 metrics: Optional[MetricsHub] = None,
                 placement=None):
        cal = calibration or Calibration()
        cost_model = CostModel(costs={
            "RemoteStableBatch":
                lambda msg: cal.cost("receiver_enqueue_op") * len(msg.ops),
            "ApplyRemoteOk": cal.overhead("receiver_flush"),
        })
        super().__init__(env, name, site=dc_id, cost_model=cost_model)
        self.dc_id = dc_id
        self.n_dcs = n_dcs
        self.check_interval = check_interval
        self.metrics = metrics or NullMetrics()
        #: partial geo-replication (None = full): origins whose resident
        #: set is disjoint from ours get no queue at all — the
        #: placement-aware stable cut.  Their entries are skipped in
        #: :meth:`_deps_satisfied`, so this DC never stalls waiting for a
        #: stream that will never arrive.
        self.placement = placement
        self.queues: dict[int, deque[Update]] = {
            k: deque() for k in range(n_dcs)
            if k != dc_id and (placement is None
                               or placement.overlaps(k, dc_id))
        }
        self.site_time = [0] * n_dcs
        # Dedup uses the full (ts, partition, seq) order key: concurrent
        # updates from different partitions may legally share a timestamp.
        self._last_enqueued: list[tuple] = [(0, -1, -1)] * n_dcs
        self._inflight: dict[int, Update] = {}   # origin -> in-flight update
        self.ring: Optional[ConsistentHashRing] = None
        self.partitions: list[Process] = []
        self.applied = 0
        self.duplicates_dropped = 0
        self.skipped_nonresident = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_partitions(self, ring: ConsistentHashRing,
                       partitions: list[Process]) -> None:
        self.ring = ring
        self.partitions = list(partitions)

    def start(self) -> None:
        # CHECK_PENDING every ρ (Alg. 5 line 3) — a safety net for updates
        # whose dependencies were satisfied by a *different* origin's apply.
        self.periodic(self.check_interval, self._flush_all)

    def recover(self) -> None:
        """Resume after a crash-stop (queues and SiteTime intact).

        The crash retired the CHECK_PENDING periodic and dropped any
        in-flight ApplyRemote/ApplyRemoteOk exchange, so clear the
        in-flight markers (re-sending an already-applied update is safe:
        the partition's LWW put is idempotent and re-acks) and re-arm.
        """
        super().recover()
        self._inflight.clear()
        self.start()
        self._flush_all()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def on_remote_stable_batch(self, msg: RemoteStableBatch, src: Process) -> None:
        k = msg.origin_dc
        queue = self.queues[k]
        for op in msg.ops:
            key = op.order_key()
            if key <= self._last_enqueued[k]:
                self.duplicates_dropped += 1
                continue
            self._last_enqueued[k] = key
            queue.append(op)
        self._try_flush(k)

    # ------------------------------------------------------------------
    # FLUSH (Alg. 5 lines 5–20, per-origin pipelined)
    # ------------------------------------------------------------------
    def _flush_all(self) -> None:
        # Skipping a non-resident head advances SiteTime, which can
        # unblock origins already visited this pass — loop until a pass
        # makes no skip progress.  Full replication never skips, so this
        # is exactly one pass (the historical behavior).
        progress = True
        while progress:
            progress = False
            for k in self.queues:
                if self._try_flush(k):
                    progress = True

    def _try_flush(self, k: int) -> bool:
        """Advance origin ``k``'s queue; True iff any head was skipped."""
        if k in self._inflight:
            return False  # condition (1): strictly in-order within an origin
        queue = self.queues[k]
        skipped = False
        # Partial placement: the origin's stream interleaves ops for every
        # partition *it* stores; ops for partitions not resident here are
        # skipped — no apply, and no dependency wait either (the op can
        # never be read at this DC, so nothing here may depend on it being
        # visible locally) — while still advancing SiteTime so ops that
        # name it as a cross-DC dependency do not stall.
        while queue and not self._resident(queue[0]):
            self._advance_site_time(k, queue.popleft())
            self.skipped_nonresident += 1
            skipped = True
        if not queue:
            return skipped
        update = queue[0]
        if not self._deps_satisfied(update, k):
            return skipped
        self._inflight[k] = update
        target = self.partitions[self.ring.partition_for(update.key)]
        tracer = self.metrics.tracer
        if tracer is not None:
            tracer.stage_once(update, "recv_apply", self.now, self.dc_id)
        self.send(target, ApplyRemote(update))
        return skipped

    def _resident(self, update: Update) -> bool:
        return (self.placement is None
                or self.placement.is_resident(self.dc_id,
                                              update.partition_index))

    def _advance_site_time(self, k: int, update: Update) -> None:
        # Tie-aware SiteTime advance: updates with equal timestamps are
        # concurrent, but a remote dependency naming ts T means *some* op
        # with vts[k] == T — only claim T once every tied op has applied.
        # (All T-ties arrive in the same stabilization round: later rounds
        # carry strictly larger timestamps, so the queue head is the only
        # place a tie can still hide.)
        queue = self.queues[k]
        ts = update.vts[k]
        if queue and queue[0].vts[k] == ts:
            self.site_time[k] = ts - 1
        else:
            self.site_time[k] = ts

    def _deps_satisfied(self, update: Update, k: int) -> bool:
        """Condition (2): SiteTime covers every other remote entry.

        Origins without a queue (partial placement, zero overlap) are
        exempt: no stream ever arrives from them, and — by the same
        residency argument as the skip above — no dependency on them can
        be resident here either.
        """
        for d in range(self.n_dcs):
            if d in (self.dc_id, k) or d not in self.queues:
                continue
            if self.site_time[d] < update.vts[d]:
                return False
        return True

    def on_apply_remote_ok(self, msg: ApplyRemoteOk, src: Process) -> None:
        k = msg.uid[0]
        update = self._inflight.pop(k, None)
        if update is None or update.uid != msg.uid:
            raise RuntimeError(
                f"receiver {self.name}: unexpected apply ack {msg.uid}"
            )
        self.queues[k].popleft()
        self._advance_site_time(k, update)
        self.applied += 1
        # An apply may unblock heads of *other* origins (their vts[k] was
        # the missing dependency), so rescan everything.
        self._flush_all()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def backlog(self) -> int:
        """Updates queued but not yet applied (all origins)."""
        return sum(len(q) for q in self.queues.values())
