"""The per-datacenter receiver (Algorithm 5).

The receiver is the counterpart of remote Eunomia services: it takes their
totally-ordered update streams and releases each update to the responsible
local partition once causally safe.  Two conditions gate an update ``u``
from origin ``k`` (Alg. 5 line 12):

1. every earlier update from ``k`` has been applied locally — enforced by
   applying each origin's queue strictly in order, one in flight at a time
   (Eunomia's total order over-approximates causality within a stream, so
   the whole prefix must be treated as a dependency);
2. ``SiteTime_m[d] >= u.vts[d]`` for every other remote datacenter ``d`` —
   the explicitly named cross-datacenter dependencies.

Entry ``m`` (the local datacenter) needs no check: a local update's vector
entry can only reach a client — and hence appear as a dependency — after
the local partition stored it.

Unlike Algorithm 5's single tail-recursive FLUSH, queues of *different*
origins progress concurrently (one in-flight release per origin); both
gating conditions are still enforced, so the applied order is identical to
some serialization the algorithm could produce.  Duplicate deliveries —
possible when a new Eunomia leader re-ships the window between the last
StableAnnounce and the crash — are filtered as a columnar prefix (one
bisection over the frame's ``ts`` column) against the last enqueued
position per origin.

Two batching layers ride on top of the algorithm (the batched dataplane,
see docs/ARCHITECTURE.md):

* **grouped shipping** — a flush pass collects its release decisions and
  ships consecutive same-partition ones through ``send_many``, which is
  RNG- and FIFO-identical to per-op ``send`` (bit-for-bit, golden-pinned);
* an **apply pipeline** (``EunomiaConfig.receiver_pipeline``): depth 1
  (default) is the historical stop-and-wait, depth P releases up to P
  consecutive dependency-satisfied same-partition head ops of one origin
  as a single :class:`ApplyRemoteRun`, acknowledged by applied *prefix*.
  Pipelining changes timing but not order — per-origin apply sequences
  are op-for-op those of stop-and-wait
  (``tests/test_batched_dataplane.py``).
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from itertools import islice
from typing import Optional

from ..calibration import Calibration
from ..kvstore.ring import ConsistentHashRing
from ..kvstore.types import Update
from ..metrics.collector import MetricsHub, NullMetrics
from ..sim.env import Environment
from ..sim.process import CostModel, Process
from ..core.messages import (
    ApplyRemote,
    ApplyRemoteOk,
    ApplyRemoteOkRun,
    ApplyRemoteRun,
    RemoteStableBatch,
)

__all__ = ["Receiver"]


class Receiver(Process):
    """r_m: queues remote update streams and applies them causally."""

    def __init__(self, env: Environment, name: str, dc_id: int, n_dcs: int,
                 check_interval: float,
                 calibration: Optional[Calibration] = None,
                 metrics: Optional[MetricsHub] = None,
                 placement=None, pipeline: int = 1):
        cal = calibration or Calibration()
        cost_model = CostModel(costs={
            "RemoteStableBatch":
                lambda msg: cal.cost("receiver_enqueue_op") * len(msg.ops),
            "ApplyRemoteOk": cal.overhead("receiver_flush"),
            "ApplyRemoteOkRun": cal.overhead("receiver_flush"),
        })
        super().__init__(env, name, site=dc_id, cost_model=cost_model)
        self.dc_id = dc_id
        self.n_dcs = n_dcs
        self.check_interval = check_interval
        #: apply-pipeline depth (EunomiaConfig.receiver_pipeline): 1 is the
        #: historical stop-and-wait; P > 1 releases same-partition runs.
        self.pipeline = pipeline
        self.metrics = metrics or NullMetrics()
        #: partial geo-replication (None = full): origins whose resident
        #: set is disjoint from ours get no queue at all — the
        #: placement-aware stable cut.  Their entries are skipped in
        #: :meth:`_deps_satisfied`, so this DC never stalls waiting for a
        #: stream that will never arrive.
        self.placement = placement
        self.queues: dict[int, deque[Update]] = {
            k: deque() for k in range(n_dcs)
            if k != dc_id and (placement is None
                               or placement.overlaps(k, dc_id))
        }
        self.site_time = [0] * n_dcs
        # Dedup uses the full (ts, partition, seq) order key: concurrent
        # updates from different partitions may legally share a timestamp.
        self._last_enqueued: list[tuple] = [(0, -1, -1)] * n_dcs
        #: origin -> ordered run of in-flight updates (length 1 when
        #: pipeline == 1); acknowledgements pop the run's prefix.
        self._inflight: dict[int, deque[Update]] = {}
        self.ring: Optional[ConsistentHashRing] = None
        self.partitions: list[Process] = []
        self.applied = 0
        self.duplicates_dropped = 0
        self.skipped_nonresident = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_partitions(self, ring: ConsistentHashRing,
                       partitions: list[Process]) -> None:
        self.ring = ring
        self.partitions = list(partitions)

    def start(self) -> None:
        # CHECK_PENDING every ρ (Alg. 5 line 3) — a safety net for updates
        # whose dependencies were satisfied by a *different* origin's apply.
        self.periodic(self.check_interval, self._flush_all)

    def recover(self) -> None:
        """Resume after a crash-stop (queues and SiteTime intact).

        The crash retired the CHECK_PENDING periodic and dropped any
        in-flight ApplyRemote/ApplyRemoteOk exchange, so clear the
        in-flight markers (re-sending an already-applied update is safe:
        the partition's LWW put is idempotent and re-acks) and re-arm.
        """
        super().recover()
        self._inflight.clear()
        self.start()
        self._flush_all()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def on_remote_stable_batch(self, msg: RemoteStableBatch, src: Process) -> None:
        k = msg.origin_dc
        queue = self.queues[k]
        # Columnar dedup: the frame's (ts, partition, seq) columns ascend in
        # serialization order, so at-least-once duplicates (a new leader
        # re-shipping the window between the last StableAnnounce and the
        # crash) form a *prefix* — found by bisecting ts for the last
        # enqueued position plus a short tie walk, then the accepted suffix
        # extends the queue wholesale.
        block = msg.block
        ts_col = block.ts
        last = self._last_enqueued[k]
        i = bisect_left(ts_col, last[0])
        n = len(ts_col)
        origin_col, seq_col = block.origin, block.seq
        while i < n and (ts_col[i], origin_col[i], seq_col[i]) <= last:
            i += 1
        self.duplicates_dropped += i
        if i < n:
            self._last_enqueued[k] = (ts_col[-1], origin_col[-1], seq_col[-1])
            queue.extend(block.payload[i:])
        sends: list = []
        self._try_flush(k, sends)
        self._ship(sends)

    # ------------------------------------------------------------------
    # FLUSH (Alg. 5 lines 5–20, per-origin pipelined)
    # ------------------------------------------------------------------
    def _flush_all(self) -> None:
        # Skipping a non-resident head advances SiteTime, which can
        # unblock origins already visited this pass — loop until a pass
        # makes no skip progress.  Full replication never skips, so this
        # is exactly one pass (the historical behavior).
        sends: list = []
        progress = True
        while progress:
            progress = False
            for k in self.queues:
                if self._try_flush(k, sends):
                    progress = True
        self._ship(sends)

    def _ship(self, sends: list) -> None:
        """Dispatch collected (target, message) pairs.

        Consecutive sends to the same partition go through ``send_many``,
        whose contract is RNG- and FIFO-identical to the per-message loop
        (one delay draw per message, in issue order; only messages that
        would land at the *same* instant merge into one delivery event) —
        the grouped receiver flush is therefore golden-safe by the same
        argument as the §5 uplink batching.
        """
        i, n = 0, len(sends)
        while i < n:
            target, msg = sends[i]
            j = i + 1
            while j < n and sends[j][0] is target:
                j += 1
            if j - i == 1:
                self.send(target, msg)
            else:
                self.send_many(target, [pair[1] for pair in sends[i:j]])
            i = j

    def _try_flush(self, k: int, sends: list) -> bool:
        """Advance origin ``k``'s queue; True iff any head was skipped.

        Release messages are appended to ``sends`` (shipped by the caller
        in issue order) rather than sent inline, so one CHECK_PENDING pass
        can group same-partition releases into a single network batch.
        """
        if k in self._inflight:
            return False  # condition (1): strictly in-order within an origin
        queue = self.queues[k]
        skipped = False
        # Partial placement: the origin's stream interleaves ops for every
        # partition *it* stores; ops for partitions not resident here are
        # skipped — no apply, and no dependency wait either (the op can
        # never be read at this DC, so nothing here may depend on it being
        # visible locally) — while still advancing SiteTime so ops that
        # name it as a cross-DC dependency do not stall.
        while queue and not self._resident(queue[0]):
            self._advance_site_time(k, queue.popleft())
            self.skipped_nonresident += 1
            skipped = True
        if not queue:
            return skipped
        update = queue[0]
        if not self._deps_satisfied(update, k):
            return skipped
        target = self.partitions[self.ring.partition_for(update.key)]
        run = [update]
        if self.pipeline > 1:
            # Pipelined release: later members' condition (1) holds because
            # their whole origin prefix rides ahead of them in the same
            # frame (the partition applies it in order before them);
            # condition (2) is checked per member against current SiteTime.
            for u in islice(queue, 1, self.pipeline):
                if (not self._resident(u)
                        or not self._deps_satisfied(u, k)
                        or self.partitions[self.ring.partition_for(u.key)]
                        is not target):
                    break
                run.append(u)
        tracer = self.metrics.tracer
        if tracer is not None:
            now = self.now
            for u in run:
                tracer.stage_once(u, "recv_apply", now, self.dc_id)
        self._inflight[k] = deque(run)
        if len(run) == 1:
            sends.append((target, ApplyRemote(update)))
        else:
            sends.append((target, ApplyRemoteRun(tuple(run))))
        return skipped

    def _resident(self, update: Update) -> bool:
        return (self.placement is None
                or self.placement.is_resident(self.dc_id,
                                              update.partition_index))

    def _advance_site_time(self, k: int, update: Update) -> None:
        # Tie-aware SiteTime advance: updates with equal timestamps are
        # concurrent, but a remote dependency naming ts T means *some* op
        # with vts[k] == T — only claim T once every tied op has applied.
        # (All T-ties arrive in the same stabilization round: later rounds
        # carry strictly larger timestamps, so the queue head is the only
        # place a tie can still hide.)
        queue = self.queues[k]
        ts = update.vts[k]
        if queue and queue[0].vts[k] == ts:
            self.site_time[k] = ts - 1
        else:
            self.site_time[k] = ts

    def _deps_satisfied(self, update: Update, k: int) -> bool:
        """Condition (2): SiteTime covers every other remote entry.

        Origins without a queue (partial placement, zero overlap) are
        exempt: no stream ever arrives from them, and — by the same
        residency argument as the skip above — no dependency on them can
        be resident here either.
        """
        for d in range(self.n_dcs):
            if d in (self.dc_id, k) or d not in self.queues:
                continue
            if self.site_time[d] < update.vts[d]:
                return False
        return True

    def _ack_one(self, k: int, uid: tuple, run: deque) -> None:
        update = run.popleft() if run else None
        if update is None or update.uid != uid:
            raise RuntimeError(
                f"receiver {self.name}: unexpected apply ack {uid}"
            )
        self.queues[k].popleft()
        self._advance_site_time(k, update)
        self.applied += 1

    def on_apply_remote_ok(self, msg: ApplyRemoteOk, src: Process) -> None:
        k = msg.uid[0]
        run = self._inflight.get(k)
        if run is None:
            raise RuntimeError(
                f"receiver {self.name}: unexpected apply ack {msg.uid}"
            )
        self._ack_one(k, msg.uid, run)
        if not run:
            del self._inflight[k]
        # An apply may unblock heads of *other* origins (their vts[k] was
        # the missing dependency), so rescan everything.
        self._flush_all()

    def on_apply_remote_ok_run(self, msg: ApplyRemoteOkRun, src: Process) -> None:
        """Batched acknowledgement of an :class:`ApplyRemoteRun` prefix.

        Members whose §5 payload was still in flight are absent — they ack
        individually later — so only the run's acknowledged *prefix* pops
        here; in-order popping keeps the tie-aware SiteTime advance exact.
        """
        if not msg.uids:
            return
        k = msg.uids[0][0]
        run = self._inflight.get(k)
        if run is None:
            raise RuntimeError(
                f"receiver {self.name}: unexpected run ack {msg.uids[0]}"
            )
        for uid in msg.uids:
            self._ack_one(k, uid, run)
        if not run:
            del self._inflight[k]
        self._flush_all()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def backlog(self) -> int:
        """Updates queued but not yet applied (all origins)."""
        return sum(len(q) for q in self.queues.values())
