"""Export surfaces: Chrome-trace-event JSON and the SLO report table.

``chrome_trace`` flattens sampled spans, gauge series, fault-injection
windows, and MTTR measurements into the Chrome Trace Event format (the
``{"traceEvents": [...]}`` JSON object), loadable in Perfetto / DevTools:

* each consecutive pair of span events becomes an ``"X"`` complete slice
  named after the *destination* stage (``dur`` = stage-to-stage latency),
  laid out with ``pid`` = serving DC and ``tid`` = a per-span lane;
* every ``gauge:*:dc{m}`` point series becomes ``"C"`` counter events on
  the owning DC's track;
* fault firings become global ``"i"`` instants on a dedicated fault track,
  and MTTR measurements become slices from fault-stop to first recovered
  op, so a chaos run's damage windows sit on the same timeline as the
  spans they disrupt.

``render_slo_report`` prints the per-DC × op-kind p50/p99/p999 table from
a :class:`~repro.obs.sketch.SloRecorder`, plus visibility latency per
DC pair and stabilization-lag percentiles from the gauge series.
"""

from __future__ import annotations

import json
import re
from typing import Optional

from ..metrics.summary import percentile

__all__ = ["chrome_trace", "write_chrome_trace", "render_slo_report"]

#: synthetic pid for the fault-injection track in exported traces
FAULT_TRACK_PID = 9999

_GAUGE_RE = re.compile(r"^gauge:(?P<name>.+):dc(?P<dc>\d+)$")


def chrome_trace(tracer=None, metrics=None, fault_log=None,
                 mttr=None, dc_ids=None) -> dict:
    """Build a Chrome-trace-event dict from any subset of sources."""
    events = []
    pids = set(dc_ids or ())

    # --- span slices ---------------------------------------------------
    if tracer is not None:
        for lane, span in enumerate(tracer.iter_spans()):
            timeline = span.sorted_events()
            for (_, t0, _), (stage, t1, site) in zip(timeline, timeline[1:]):
                pids.add(site)
                events.append({
                    "ph": "X",
                    "name": stage,
                    "cat": "span",
                    "ts": t0 * 1e6,
                    "dur": max(0.0, (t1 - t0) * 1e6),
                    "pid": site,
                    "tid": lane,
                    "args": {"uid": list(span.uid), "key": repr(span.key)},
                })

    # --- gauge counters ------------------------------------------------
    if metrics is not None:
        for name in sorted(metrics.points):
            match = _GAUGE_RE.match(name)
            if match is None:
                continue
            gauge, pid = match.group("name"), int(match.group("dc"))
            pids.add(pid)
            for t, value in metrics.point_series(name):
                events.append({
                    "ph": "C",
                    "name": gauge,
                    "cat": "gauge",
                    "ts": t * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "args": {gauge: value},
                })

    # --- fault windows + MTTR ------------------------------------------
    if fault_log:
        for t, label in fault_log:
            events.append({
                "ph": "i",
                "name": label,
                "cat": "fault",
                "s": "g",
                "ts": t * 1e6,
                "pid": FAULT_TRACK_PID,
                "tid": 0,
            })
    if mttr:
        for entry in mttr:
            if entry.get("mttr_s") is None:
                continue
            events.append({
                "ph": "X",
                "name": f"recover:{entry['fault']}",
                "cat": "mttr",
                "ts": entry["stop"] * 1e6,
                "dur": entry["mttr_s"] * 1e6,
                "pid": FAULT_TRACK_PID,
                "tid": 1,
            })

    # --- process metadata ----------------------------------------------
    meta = []
    for pid in sorted(pids):
        meta.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": f"dc{pid}"},
        })
    if fault_log or mttr:
        meta.append({
            "ph": "M", "name": "process_name", "pid": FAULT_TRACK_PID,
            "tid": 0, "args": {"name": "faults"},
        })
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, tracer=None, metrics=None, fault_log=None,
                       mttr=None, dc_ids=None) -> dict:
    """Write :func:`chrome_trace` output to ``path``; return the dict."""
    trace = chrome_trace(tracer=tracer, metrics=metrics,
                         fault_log=fault_log, mttr=mttr, dc_ids=dc_ids)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return trace


# ----------------------------------------------------------------------
# SLO report
# ----------------------------------------------------------------------
_QUANTILES = (50.0, 99.0, 99.9)


def _sketch_row(sketch) -> str:
    cells = "  ".join(f"{sketch.quantile(q):>9.3f}" for q in _QUANTILES)
    return f"{sketch.n:>8d}  {cells}"


def render_slo_report(metrics, slo=None, tracer=None) -> str:
    """Render the per-DC × op-kind SLO table as a plain-text report.

    ``slo`` defaults to ``metrics.slo`` so callers holding only the hub
    get the full table.  Sections with no data are omitted.
    """
    if slo is None:
        slo = getattr(metrics, "slo", None)
    lines = []
    header = f"{'count':>8s}  " + "  ".join(
        f"{'p' + str(q).rstrip('0').rstrip('.'):>9s}" for q in _QUANTILES)

    if slo is not None and slo.op_latency:
        lines.append("operation latency (ms) per DC x op kind")
        lines.append(f"  {'dc':>3s} {'kind':<8s} {header}")
        for (kind, dc) in sorted(slo.op_latency, key=lambda k: (k[1], k[0])):
            lines.append(f"  {dc:>3d} {kind:<8s} "
                         f"{_sketch_row(slo.op_latency[(kind, dc)])}")
        lines.append("")

    if slo is not None and slo.vis_total:
        lines.append("remote visibility latency (ms) per origin->dest")
        lines.append(f"  {'path':>8s} {header}   "
                     f"{'extra p99':>9s}")
        for (k, m) in sorted(slo.vis_total):
            extra = slo.vis_extra.get((k, m))
            extra_p99 = extra.quantile(99.0) if extra is not None else 0.0
            lines.append(f"  dc{k}->dc{m:<2d} "
                         f"{_sketch_row(slo.vis_total[(k, m)])}   "
                         f"{extra_p99:>9.3f}")
        lines.append("")

    stab_names = sorted(n for n in metrics.points
                        if n.startswith("gauge:stab_lag_ms:dc"))
    if stab_names:
        lines.append("stabilization lag (ms), now - StableTime per DC")
        lines.append(f"  {'dc':>3s} {header}")
        for name in stab_names:
            dc = int(name.rsplit("dc", 1)[1])
            values = [v for _, v in metrics.point_series(name)]
            if not values:
                continue
            cells = "  ".join(f"{percentile(values, q):>9.3f}"
                              for q in _QUANTILES)
            lines.append(f"  {dc:>3d} {len(values):>8d}  {cells}")
        lines.append("")

    if tracer is not None and len(tracer):
        lines.append(f"sampled spans: {len(tracer)} "
                     f"(1-in-{tracer.sample_every}, {tracer.dropped} dropped)")

    if not lines:
        lines.append("no SLO data recorded (was observability attached?)")
    return "\n".join(lines).rstrip() + "\n"
