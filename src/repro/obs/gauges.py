"""Periodic stage-lag gauges: sampled depths and lags as point series.

:class:`GaugeScraper` rides the event loop's ``schedule_periodic`` (heap
or time-wheel backend alike) and, every ``interval`` sim-seconds, reads —
never mutates — the live pipeline state of every datacenter:

* stabilization lag: ``now − StableTime`` per DC (how far the deferred
  stabilization pipeline trails real time — the paper's core deferral);
* RunBuffer depth (Eunomia stabilizers) / pending-set depth (GST-family
  partitions): ops committed but not yet released as stable;
* receiver backlog: remote ops parked on causal dependencies;
* WAL unflushed bytes: staged records awaiting the next group commit;
* per-shard merge lag: spread between the fastest and slowest shard's
  stable time inside one coordinator's K-way merge;
* uplink pending: metadata records not yet acked by the stabilizer.

Each reading lands in the hub as ``metrics.point(f"gauge:{name}:dc{m}")``,
so the existing windowed-series helpers and the Chrome-trace exporter pick
them up with no new storage.  Determinism: the scrape only *reads* state
and records points; the periodic events it adds interleave with protocol
events at fixed (time, seq) slots, and since no protocol logic inspects
the metrics hub or the event sequence counter, goldens are unchanged.

Mutating accessors are deliberately avoided — in particular physical/HLC
clock ``read_us``/``observe`` calls advance clock state, so lag is
computed against ``env.now`` directly.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["GaugeScraper"]


class GaugeScraper:
    """Scrape per-DC pipeline gauges into ``MetricsHub`` point series."""

    def __init__(self, system, interval: float = 0.05):
        self.system = system
        self.interval = interval
        self.metrics = system.metrics
        self._handle = None
        self.scrapes = 0

    # ------------------------------------------------------------------
    def attach(self) -> "GaugeScraper":
        if self._handle is None:
            self._handle = self.system.env.loop.schedule_periodic(
                self.interval, self._scrape)
        return self

    def detach(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ------------------------------------------------------------------
    def _scrape(self) -> None:
        self.scrapes += 1
        env = self.system.env
        now_us = env.now * 1e6
        point = self.metrics.point
        for dc in self.system.datacenters:
            m = dc.dc_id
            # --- stabilization lag: how far StableTime trails sim-now ---
            st = dc.stable_time_us()
            if st is not None and st > 0:
                point(f"gauge:stab_lag_ms:dc{m}", env.now,
                      max(0.0, now_us - st) / 1e3)
            # --- receiver backlog (remote ops parked on dependencies) ---
            receiver = getattr(dc, "receiver", None)
            if receiver is not None:
                point(f"gauge:receiver_backlog:dc{m}", env.now,
                      float(receiver.backlog()))
            # --- Eunomia stack: RunBuffer depth + WAL + uplink ----------
            stack = getattr(dc, "stack", None)
            if stack is not None:
                buf_depth = 0
                wal_bytes = 0
                have_wal = False
                for proc in stack.processes():
                    buf = getattr(proc, "buffer", None)
                    if buf is not None:
                        buf_depth += len(buf)
                    wal = getattr(proc, "wal", None)
                    if wal is not None:
                        have_wal = True
                        wal_bytes += wal.unflushed_bytes
                point(f"gauge:runbuffer_depth:dc{m}", env.now,
                      float(buf_depth))
                if have_wal:
                    point(f"gauge:wal_unflushed_bytes:dc{m}", env.now,
                          float(wal_bytes))
                # per-shard merge lag: worst spread across coordinators
                merge_lag_us: Optional[float] = None
                for coord in getattr(dc, "coordinators", ()) or ():
                    stables = [s for s in coord.shard_stable if s > 0]
                    if len(stables) > 1:
                        spread = float(max(stables) - min(stables))
                        if merge_lag_us is None or spread > merge_lag_us:
                            merge_lag_us = spread
                if merge_lag_us is not None:
                    point(f"gauge:shard_merge_lag_ms:dc{m}", env.now,
                          merge_lag_us / 1e3)
            # --- partition-held state: pending sets + uplinks -----------
            pending = 0
            uplink_pending = 0
            have_pending = False
            have_uplink = False
            for part in dc.resident_partitions():
                counter = getattr(part, "pending_count", None)
                if counter is not None:
                    have_pending = True
                    pending += counter()
                uplink = getattr(part, "uplink", None)
                if uplink is not None:
                    counter = getattr(uplink, "pending_count", None)
                    if counter is not None:
                        have_uplink = True
                        uplink_pending += counter()
            if have_pending:
                point(f"gauge:pending_depth:dc{m}", env.now, float(pending))
            if have_uplink:
                point(f"gauge:uplink_pending:dc{m}", env.now,
                      float(uplink_pending))
