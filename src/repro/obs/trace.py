"""Sampled per-op causal tracing across the whole protocol spine.

A :class:`Tracer` follows a *sampled* subset of updates through named
pipeline stages — from the client issuing the op to it becoming visible at
every remote datacenter — and records one :class:`Span` per sampled op
with sim-time stamps and the serving site for every stage it passes.

Three properties make tracing safe to leave attached to golden runs:

* **zero RNG draws** — sampling is a deterministic hash of the op's
  identity ``Update.uid = (origin_dc, partition_index, seq)``, so an
  instrumented run consumes exactly the same random streams as a bare one;
* **zero event-loop interaction** — the tracer never schedules, delays, or
  reorders anything; every hook is a plain in-memory append on a code path
  that was executing anyway;
* **~0 disabled cost** — components reach the tracer through
  ``metrics.tracer`` (``None`` unless observability was attached), so the
  per-op price of the instrumentation is one attribute read and one
  ``is None`` test.

The ``STAGES`` registry below is the single source of truth for stage
names; ``scripts/check_docs.py`` lints it against the documentation the
same way it lints the scheduler/WAL/fault knob tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Tuple

__all__ = ["STAGES", "STAGE_DESCRIPTIONS", "Span", "Tracer"]

#: Every pipeline stage a span can pass through, in canonical pipeline
#: order.  Not every protocol visits every stage — an eventual store stops
#: at replicate/visible, only the sequencer stores visit seq_order, and
#: only durable Eunomia deployments visit the WAL stages.
STAGES = (
    "issue",
    "commit",
    "replicate",
    "seq_order",
    "uplink_ship",
    "wal_stage",
    "wal_fsync",
    "ingest",
    "merge",
    "propagate",
    "recv_apply",
    "visible",
)

#: Human explanations, keyed by stage name (the docs table mirrors these).
STAGE_DESCRIPTIONS = {
    "issue": "client hands the op to its serving partition",
    "commit": "origin partition stamps and stores the op locally",
    "replicate": "payload multicast directly to sibling partitions",
    "seq_order": "sequencer assigns the global number, sseq/aseq only",
    "uplink_ship": "uplink ships ordering metadata to the stabilizer",
    "wal_stage": "stabilizer stages the op's record in its WAL",
    "wal_fsync": "group-commit fsync covering the staged record",
    "ingest": "stabilizer accepts the op, PartitionTime advances",
    "merge": "shard coordinator's K-way merge releases the op",
    "propagate": "ordered stable run shipped to remote receivers",
    "recv_apply": "remote receiver releases the op to a local partition",
    "visible": "op installed and client-visible at a remote datacenter",
}

#: canonical position per stage (export sorts ties by pipeline order)
_STAGE_ORDER = {name: i for i, name in enumerate(STAGES)}


@dataclass(slots=True)
class Span:
    """One sampled op's journey: (stage, sim-time seconds, site) events.

    Events are appended in simulation order per site; multi-site stages
    (``recv_apply``/``visible`` fire once per remote datacenter) appear
    once per site.
    """

    uid: Tuple[int, int, int]
    key: Any = None
    events: list = field(default_factory=list)

    def stage_times(self, stage: str) -> list:
        """All (time, site) pairs recorded for ``stage``."""
        return [(t, site) for s, t, site in self.events if s == stage]

    def sorted_events(self) -> list:
        """Events in (time, pipeline-order) order — export's timeline."""
        return sorted(self.events,
                      key=lambda e: (e[1], _STAGE_ORDER.get(e[0], 99)))

    def to_dict(self) -> dict:
        return {"uid": list(self.uid), "key": repr(self.key),
                "events": [[s, t, site] for s, t, site in self.events]}


class Tracer:
    """Deterministically sampled span collector (1-in-``sample_every``).

    ``max_spans`` bounds memory on unbounded runs: once the cap is hit, no
    *new* spans open (existing ones keep collecting stages) and ``dropped``
    counts the ops that would have been sampled.
    """

    def __init__(self, sample_every: int = 16, max_spans: int = 100_000):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.max_spans = max_spans
        self.spans: dict = {}
        self.dropped = 0
        #: WAL name -> spans staged since that WAL's last successful commit
        self._wal_pending: dict = {}

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sampled(self, uid: Tuple[int, int, int]) -> bool:
        """Deterministic 1-in-N membership by op-identity hash (no RNG)."""
        dc, part, seq = uid
        h = (seq * 0x9E3779B1 ^ dc * 0x85EBCA6B ^ part * 0xC2B2AE3D)
        return (h & 0xFFFFFFFF) % self.sample_every == 0

    # ------------------------------------------------------------------
    # Recording (called from instrumented components)
    # ------------------------------------------------------------------
    def commit(self, update, now: float,
               issued_at: Optional[float] = None) -> Optional[Span]:
        """Open the span at the origin partition's commit.

        Records the ``issue`` stage first when the client's send time is
        known (threaded through ``ClientUpdate.issued_at``).  Returns the
        span, or ``None`` when the op is not sampled (the caller can skip
        any further per-op work).
        """
        uid = update.uid
        if not self.sampled(uid):
            return None
        span = self.spans.get(uid)
        if span is None:
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
                return None
            span = Span(uid=uid, key=update.key)
            self.spans[uid] = span
        site = update.origin_dc
        if issued_at is not None:
            span.events.append(("issue", issued_at, site))
        span.events.append(("commit", now, site))
        return span

    def stage(self, update, stage: str, now: float, site: int) -> None:
        """Record ``stage`` for ``update`` if it is being traced."""
        span = self.spans.get(update.uid)
        if span is not None:
            span.events.append((stage, now, site))

    def ingest(self, update, now: float, site: int) -> None:
        """Record ``ingest``, opening the span if the op has none yet.

        The geo spine opens spans at the origin partition's commit, so
        here the span already exists and this is a first-site-only stage
        append; rig loads (``harness/loadgen.py``) feed the stabilizer
        from emulators with no commit path, so their sampled ops open at
        service ingestion instead.
        """
        uid = update.uid
        span = self.spans.get(uid)
        if span is None:
            if not self.sampled(uid):
                return
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
                return
            span = Span(uid=uid, key=getattr(update, "key", None))
            self.spans[uid] = span
        else:
            for s, _, st in span.events:
                if s == "ingest" and st == site:
                    return
        span.events.append(("ingest", now, site))

    def stage_once(self, update, stage: str, now: float, site: int) -> None:
        """Like :meth:`stage`, but first occurrence per (stage, site) only —
        for paths that legally repeat (retransmissions, post-crash
        re-sends), where only the first traversal is the pipeline latency.
        """
        span = self.spans.get(update.uid)
        if span is None:
            return
        for s, _, st in span.events:
            if s == stage and st == site:
                return
        span.events.append((stage, now, site))

    # ------------------------------------------------------------------
    # WAL stages (group commit covers many ops at once)
    # ------------------------------------------------------------------
    def wal_staged(self, wal_name: str, update, now: float,
                   site: int) -> None:
        """Record ``wal_stage`` and park the span until that WAL fsyncs."""
        span = self.spans.get(update.uid)
        if span is None:
            return
        for s, _, _ in span.events:
            if s == "wal_stage":
                return  # first durable replica only
        span.events.append(("wal_stage", now, site))
        self._wal_pending.setdefault(wal_name, []).append(span)

    def wal_synced(self, wal_name: str, now: float, site: int) -> None:
        """Close ``wal_fsync`` for every span staged since the last commit."""
        pending = self._wal_pending.pop(wal_name, None)
        if not pending:
            return
        for span in pending:
            for s, _, _ in span.events:
                if s == "wal_fsync":
                    break
            else:
                span.events.append(("wal_fsync", now, site))

    def wal_hook(self, env, site: int) -> Callable:
        """A ``WriteAheadLog.obs_hook`` closure bound to ``env``'s clock."""
        return lambda wal: self.wal_synced(wal.name, env.now, site)

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def iter_spans(self) -> Iterable[Span]:
        """Spans in deterministic (uid) order."""
        return (self.spans[uid] for uid in sorted(self.spans))

    def to_dicts(self) -> list:
        return [span.to_dict() for span in self.iter_spans()]
