"""Observability: causal tracing, SLO sketches, and stage-lag gauges.

One call wires the whole surface onto a built :class:`~repro.geo.system.
GeoSystem` (any protocol on the ProtocolSpec spine)::

    system = build_geo_system("eunomia", spec)
    obs = attach_observability(system, sample_every=16)
    system.run(2.0); system.quiesce(2.5)
    print(render_slo_report(system.metrics, tracer=obs.tracer))
    write_chrome_trace("trace.json", tracer=obs.tracer,
                       metrics=system.metrics)

Everything hangs off the already-injected :class:`MetricsHub` — components
read ``metrics.tracer`` / ``metrics.slo`` (``None`` when detached), so an
unobserved run pays one attribute fetch per call site and goldens stay
bit-for-bit identical whether observability is attached or not (the
tracer draws no randomness and schedules nothing; the gauge scraper only
reads state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .trace import STAGES, STAGE_DESCRIPTIONS, Span, Tracer
from .sketch import LogBinHistogram, P2Quantile, SloRecorder
from .gauges import GaugeScraper
from .export import chrome_trace, write_chrome_trace, render_slo_report

__all__ = [
    "STAGES", "STAGE_DESCRIPTIONS", "Span", "Tracer",
    "LogBinHistogram", "P2Quantile", "SloRecorder",
    "GaugeScraper", "chrome_trace", "write_chrome_trace",
    "render_slo_report", "Observability", "attach_observability",
]


@dataclass
class Observability:
    """Handles to the attached instruments (any may be ``None``)."""

    tracer: Optional[Tracer] = None
    slo: Optional[SloRecorder] = None
    gauges: Optional[GaugeScraper] = None

    def detach(self, metrics=None) -> None:
        """Stop the gauge scraper and unhook the hub attributes."""
        if self.gauges is not None:
            self.gauges.detach()
        if metrics is not None:
            if metrics.tracer is self.tracer:
                metrics.tracer = None
            if metrics.slo is self.slo:
                metrics.slo = None


def attach_observability(system, sample_every: int = 16,
                         gauge_interval: float = 0.05,
                         trace: bool = True, slo: bool = True,
                         gauges: bool = True,
                         rel_err: float = 0.01) -> Observability:
    """Attach tracer + SLO sketches + gauge scraper to a built system.

    Call after ``build_geo_system`` and before ``run``.  Each instrument
    can be switched off independently; WAL fsync hooks are wired for every
    stabilizer process that owns a WAL so durable deployments get the
    ``wal_stage``/``wal_fsync`` stages.
    """
    obs = Observability()
    metrics = system.metrics
    if trace:
        obs.tracer = Tracer(sample_every=sample_every)
        metrics.tracer = obs.tracer
        for dc in system.datacenters:
            stack = getattr(dc, "stack", None)
            if stack is None:
                continue
            for proc in stack.processes():
                wal = getattr(proc, "wal", None)
                if wal is not None:
                    wal.obs_hook = obs.tracer.wal_hook(system.env, proc.site)
    if slo:
        obs.slo = SloRecorder(rel_err=rel_err)
        metrics.slo = obs.slo
    if gauges:
        obs.gauges = GaugeScraper(system, interval=gauge_interval).attach()
    return obs
