"""Streaming quantile sketches: bounded memory for million-op runs.

``MetricsHub.record`` keeps every sample, which is exactly right for the
figure scripts' few-thousand-op runs but prices p999 out of the ROADMAP's
million-client loads.  The two estimators here hold O(log range) and O(1)
state respectively:

* :class:`LogBinHistogram` — a DDSketch-style fixed-log-bin histogram with
  a *relative* error guarantee: ``quantile(q)`` is within ``rel_err`` of
  the exact rank value, for any distribution, at any q.  Mergeable.
* :class:`P2Quantile` — the classic Jain & Chlamtac P² estimator: five
  markers tracking a single quantile with no bins at all.  No hard error
  bound; use it when even a bin dict is too much.

:class:`SloRecorder` bundles per-(op-kind, DC) operation-latency and
per-(origin, dest) visibility-latency histograms behind the same
``metrics.slo`` attribute-fetch-plus-None-check pattern the tracer uses.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

__all__ = ["LogBinHistogram", "P2Quantile", "SloRecorder"]


class LogBinHistogram:
    """Log-spaced bins with relative-error quantile estimates.

    With ``gamma = (1 + rel_err) / (1 - rel_err)``, value ``v > 0`` lands
    in bin ``ceil(log_gamma(v))`` and is estimated by the bin midpoint
    ``2 * gamma^i / (gamma + 1)``, which is within ``rel_err * v`` of any
    value in the bin.  Non-positive values collect in a dedicated zero
    bucket (estimated exactly as 0.0).
    """

    __slots__ = ("rel_err", "gamma", "_log_gamma", "bins", "zero_count",
                 "n", "min", "max")

    def __init__(self, rel_err: float = 0.01):
        if not 0.0 < rel_err < 1.0:
            raise ValueError("rel_err must be in (0, 1)")
        self.rel_err = rel_err
        self.gamma = (1.0 + rel_err) / (1.0 - rel_err)
        self._log_gamma = math.log(self.gamma)
        self.bins: Dict[int, int] = {}
        self.zero_count = 0
        self.n = 0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.n += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zero_count += 1
            return
        idx = math.ceil(math.log(value) / self._log_gamma)
        self.bins[idx] = self.bins.get(idx, 0) + 1

    def _estimate(self, idx: int) -> float:
        return 2.0 * self.gamma ** idx / (self.gamma + 1.0)

    def quantile(self, pct: float) -> float:
        """Estimate the ``pct``-th percentile (0 < pct <= 100).

        Matches the nearest-rank convention of
        :func:`repro.metrics.summary.percentile`: rank
        ``max(1, ceil(pct/100 * n))``.  Empty sketch -> 0.0.
        """
        if self.n == 0:
            return 0.0
        rank = max(1, math.ceil(pct / 100.0 * self.n))
        if rank <= self.zero_count:
            # exact: everything in the zero bucket was <= 0; nearest-rank
            # over non-positive values is dominated by min for estimates
            return min(self.min, 0.0)
        seen = self.zero_count
        for idx in sorted(self.bins):
            seen += self.bins[idx]
            if seen >= rank:
                est = self._estimate(idx)
                # clamp: the true rank value lies in [min, max]
                return min(max(est, self.min), self.max)
        return self.max  # unreachable unless counts drifted

    def merge(self, other: "LogBinHistogram") -> None:
        if abs(other.gamma - self.gamma) > 1e-12:
            raise ValueError("cannot merge sketches with different gamma")
        for idx, count in other.bins.items():
            self.bins[idx] = self.bins.get(idx, 0) + count
        self.zero_count += other.zero_count
        self.n += other.n
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> dict:
        return {
            "rel_err": self.rel_err,
            "n": self.n,
            "min": None if self.n == 0 else self.min,
            "max": None if self.n == 0 else self.max,
            "zero_count": self.zero_count,
            "bins": {str(k): v for k, v in sorted(self.bins.items())},
        }

    def __len__(self) -> int:
        return self.n


class P2Quantile:
    """P² single-quantile estimator (Jain & Chlamtac, CACM 1985).

    Five markers, O(1) memory and update.  ``value`` is the current
    estimate; exact until five observations have arrived.
    """

    __slots__ = ("p", "n", "_q", "_pos", "_desired", "_incr")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError("p must be in (0, 1)")
        self.p = p
        self.n = 0
        self._q = []                     # marker heights
        self._pos = [1, 2, 3, 4, 5]      # marker positions
        self._desired = [1.0, 1.0 + 2 * p, 1.0 + 4 * p, 3.0 + 2 * p, 5.0]
        self._incr = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def add(self, value: float) -> None:
        self.n += 1
        if self.n <= 5:
            self._q.append(value)
            if self.n == 5:
                self._q.sort()
            return
        q, pos = self._q, self._pos
        # find cell k containing the new observation, clamping extremes
        if value < q[0]:
            q[0] = value
            k = 0
        elif value >= q[4]:
            q[4] = value
            k = 3
        else:
            k = 0
            while k < 3 and value >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1
        for i in range(5):
            self._desired[i] += self._incr[i]
        # adjust the three middle markers toward their desired positions
        for i in (1, 2, 3):
            d = self._desired[i] - pos[i]
            if (d >= 1 and pos[i + 1] - pos[i] > 1) or \
               (d <= -1 and pos[i - 1] - pos[i] < -1):
                d = 1 if d >= 1 else -1
                # parabolic prediction, falling back to linear
                qp = self._parabolic(i, d)
                if q[i - 1] < qp < q[i + 1]:
                    q[i] = qp
                else:
                    q[i] = q[i] + d * (q[i + d] - q[i]) / (pos[i + d] - pos[i])
                pos[i] += d

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self._q, self._pos
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    @property
    def value(self) -> float:
        if self.n == 0:
            return 0.0
        if self.n < 5:
            s = sorted(self._q)
            rank = max(1, math.ceil(self.p * self.n))
            return s[rank - 1]
        return self._q[2]


class SloRecorder:
    """Per-(dimension) latency histograms behind one hub attribute.

    * ``op(kind, dc, ms)`` — client-observed operation latency, keyed by
      (op kind, serving DC);
    * ``visibility(origin, dest, total_ms, extra_ms)`` — remote-visibility
      latency per (origin DC, destination DC), total and extra-over-network.

    All streams are :class:`LogBinHistogram`, so a million-op run costs a
    few hundred bins per stream instead of a few million floats.
    """

    __slots__ = ("rel_err", "op_latency", "vis_total", "vis_extra")

    def __init__(self, rel_err: float = 0.01):
        self.rel_err = rel_err
        self.op_latency: Dict[Tuple[str, int], LogBinHistogram] = {}
        self.vis_total: Dict[Tuple[int, int], LogBinHistogram] = {}
        self.vis_extra: Dict[Tuple[int, int], LogBinHistogram] = {}

    def _get(self, table: dict, key) -> LogBinHistogram:
        sk = table.get(key)
        if sk is None:
            sk = table[key] = LogBinHistogram(self.rel_err)
        return sk

    def op(self, kind: str, dc: int, latency_ms: float) -> None:
        self._get(self.op_latency, (kind, dc)).add(latency_ms)

    def visibility(self, origin: int, dest: int, total_ms: float,
                   extra_ms: float) -> None:
        self._get(self.vis_total, (origin, dest)).add(total_ms)
        self._get(self.vis_extra, (origin, dest)).add(extra_ms)
