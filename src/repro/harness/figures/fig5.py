"""Figure 5 — geo-replicated throughput comparison (§7.2.1).

Aggregate client throughput of Eventual, EunomiaKV, GentleRain, and Cure
across read:write mixes {50:50, 75:25, 90:10, 99:1} and both key
distributions (uniform, power-law).  Expected shape: every system slows as
the update fraction grows; EunomiaKV stays within a few percent of eventual
(paper: −4.7% average, −1% read-heavy); GentleRain sits clearly below
(global stabilization cost) and Cure below GentleRain (vector metadata on
every op).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...geo.system import GeoSystemSpec
from ...workload.generator import WorkloadSpec
from ..experiment import run_geo
from ..report import FigureResult

__all__ = ["Fig5Params", "run"]

# The figure's systems, in the paper's order — every name resolves in the
# protocol registry, so each column deploys through the one shared spine.
from ...core.protocols import PROTOCOL_ORDER

PROTOCOLS = tuple(p for p in PROTOCOL_ORDER
                  if p in ("eventual", "eunomia", "gentlerain", "cure"))


@dataclass
class Fig5Params:
    read_ratios: tuple = (0.5, 0.75, 0.9, 0.99)
    distributions: tuple = ("uniform", "zipf")
    duration: float = 5.0
    partitions: int = 4
    clients: int = 8
    n_keys: int = 1000
    seed: int = 51

    @classmethod
    def quick(cls) -> "Fig5Params":
        return cls(read_ratios=(0.5, 0.9), distributions=("uniform",),
                   duration=3.0, clients=6)


def run(params: Optional[Fig5Params] = None) -> FigureResult:
    p = params or Fig5Params()
    result = FigureResult(
        "Figure 5", "Geo-replicated throughput by workload mix",
        ["workload", *PROTOCOLS, "eunomia_drop_pct"],
    )
    spec = GeoSystemSpec(n_dcs=3, partitions_per_dc=p.partitions,
                         clients_per_dc=p.clients, seed=p.seed)
    drops = []
    for distribution in p.distributions:
        for read_ratio in p.read_ratios:
            workload = WorkloadSpec(read_ratio=read_ratio, n_keys=p.n_keys,
                                    distribution=distribution)
            label = (f"{workload.ratio_label()} "
                     f"{'U' if distribution == 'uniform' else 'P'}")
            throughputs = {}
            for protocol in PROTOCOLS:
                system = run_geo(protocol, spec, workload, p.duration)
                throughputs[protocol] = system.total_throughput()
            drop = ((throughputs["eunomia"] - throughputs["eventual"])
                    / throughputs["eventual"] * 100.0)
            drops.append(drop)
            result.add_row(label, *[throughputs[x] for x in PROTOCOLS], drop)
    result.note(f"mean EunomiaKV drop vs eventual: "
                f"{sum(drops) / len(drops):.1f}% (paper: -4.7%)")
    result.note("paper shape: eventual >= eunomia > gentlerain > cure on "
                "every mix")
    return result
