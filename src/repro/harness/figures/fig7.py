"""Figure 7 — straggler sensitivity (§7.2.3).

One partition of dc3 contacts its local Eunomia every 10/100/1000 ms
(instead of every millisecond) during the middle third of the run, then
heals.  Measured: p90 extra visibility delay of dc3-origin updates at dc2
over time.  Expected shape: during the straggle window the delay tracks the
straggling interval (Eunomia's stability is the minimum over partitions),
and it snaps back after healing.

The sequencer comparison from the paper is included: under S-Seq a
straggling partition↔sequencer link leaves *visibility* of healthy-partition
updates untouched, but the straggler partition's own clients see their
update latency grow by the straggling interval — the sequencer sits in
their critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...baselines import build_system
from ...geo.system import GeoSystemSpec
from ...metrics import percentile, windowed_points
from ...sim.failure import FailureSchedule, Straggler
from ...workload.generator import WorkloadSpec
from ..report import FigureResult

__all__ = ["Fig7Params", "run"]

ORIGIN_DC = 2   # dc3 in the paper's numbering
DEST_DC = 1     # dc2


@dataclass
class Fig7Params:
    straggle_intervals: tuple = (0.010, 0.100, 1.000)
    phase: float = 10.0          # healthy / straggling / healed, seconds each
    partitions: int = 4
    clients: int = 6
    n_keys: int = 500
    read_ratio: float = 0.9
    seed: int = 71
    include_sequencer: bool = True

    @classmethod
    def quick(cls) -> "Fig7Params":
        return cls(straggle_intervals=(0.100, 1.000), phase=6.0,
                   include_sequencer=True)


def _phase_p90(points, start: float, end: float) -> float:
    values = [v for t, v in points if start <= t < end]
    return percentile(values, 90)


def _healthy_series(system, n_partitions: int) -> list[tuple[float, float]]:
    """Visibility of dc3→dc2 updates born on *healthy* partitions (not p0)."""
    merged: list[tuple[float, float]] = []
    for index in range(1, n_partitions):
        merged.extend(system.metrics.point_series(
            f"vis_extra_ms:{ORIGIN_DC}->{DEST_DC}:p{index}"))
    merged.sort(key=lambda tv: tv[0])
    return merged


def run(params: Optional[Fig7Params] = None) -> FigureResult:
    p = params or Fig7Params()
    result = FigureResult(
        "Figure 7", "Straggler impact on remote update visibility (dc3->dc2)",
        ["system", "straggle_ms", "healthy_p90_ms", "straggling_p90_ms",
         "healed_p90_ms"],
    )
    spec = GeoSystemSpec(n_dcs=3, partitions_per_dc=p.partitions,
                         clients_per_dc=p.clients, seed=p.seed)
    workload = WorkloadSpec(read_ratio=p.read_ratio, n_keys=p.n_keys)
    duration = 3 * p.phase

    for interval in p.straggle_intervals:
        system = build_system("eunomia", spec, workload)
        straggler_partition = system.datacenters[ORIGIN_DC].partitions[0]
        schedule = FailureSchedule(system.env)
        Straggler(straggler_partition, start=p.phase, end=2 * p.phase,
                  straggle_interval=interval).arm(schedule)
        schedule.arm()
        system.run(duration)

        # The paper's claim is about updates born on *healthy* partitions:
        # Eunomia's stabilization is a minimum over all partitions, so the
        # straggler delays everyone's updates from that datacenter.
        series = _healthy_series(system, p.partitions)
        result.add_row(
            "eunomia (healthy partitions)", interval * 1e3,
            _phase_p90(series, 0.0, p.phase),
            _phase_p90(series, p.phase + interval, 2 * p.phase),
            _phase_p90(series, 2 * p.phase + interval, duration),
        )
        result.add_series(
            f"eunomia@{interval * 1e3:.0f}ms",
            windowed_points(series, 0.0, duration, width=1.0, agg="p90"),
        )

    if p.include_sequencer:
        interval = p.straggle_intervals[-1]
        system = build_system("sseq", spec, workload)
        partition = system.datacenters[ORIGIN_DC].partitions[0]
        sequencer = partition.sequencer
        network = system.env.network
        schedule = FailureSchedule(system.env)
        schedule.at(p.phase,
                    lambda: network.set_link_extra_delay(partition, sequencer,
                                                         interval),
                    "straggle seq link")
        schedule.at(2 * p.phase,
                    lambda: network.set_link_extra_delay(partition, sequencer,
                                                         0.0),
                    "heal seq link")
        schedule.arm()
        system.run(duration)

        vis = _healthy_series(system, p.partitions)
        result.add_row(
            "sseq (healthy partitions)", interval * 1e3,
            _phase_p90(vis, 0.0, p.phase),
            _phase_p90(vis, p.phase + interval, 2 * p.phase),
            _phase_p90(vis, 2 * p.phase + interval, duration),
        )
        lat = system.metrics.point_series(f"latency_ms:update:dc{ORIGIN_DC}")
        result.add_row(
            "sseq (client update latency, dc3)", interval * 1e3,
            _phase_p90(lat, 0.0, p.phase),
            _phase_p90(lat, p.phase + interval, 2 * p.phase),
            _phase_p90(lat, 2 * p.phase + interval, duration),
        )
        result.note("sequencer comparison: visibility of healthy updates is "
                    "unaffected, but straggler-partition clients pay the "
                    "interval on every update (critical-path synchrony)")

    result.note(f"straggler: dc3 partition 0, middle third of a "
                f"{duration:.0f}s run")
    result.note("paper shape: Eunomia's visibility delay tracks the "
                "straggling interval during the window, then recovers")
    return result
