"""Figure 2 — maximum throughput: Eunomia versus a sequencer (§7.1).

Drivers emulate partitions issuing updates eagerly, connected directly to
the service (the data store is bypassed, as in the paper).  Expected shape:
the sequencer saturates early (48 kops/s at paper scale) regardless of the
partition count, while Eunomia scales with the offered load until its
propagation path saturates near 60 partitions at ~7.7× the sequencer's
ceiling (~370 kops/s paper scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...calibration import Calibration
from ...core.config import EunomiaConfig
from ..loadgen import build_eunomia_rig, build_sequencer_rig
from ..report import FigureResult

__all__ = ["Fig2Params", "run"]


@dataclass
class Fig2Params:
    partition_counts: tuple = (15, 30, 45, 60, 75)
    duration: float = 2.0
    seed: int = 21

    @classmethod
    def quick(cls) -> "Fig2Params":
        return cls(partition_counts=(15, 45, 75), duration=1.2)


def run(params: Optional[Fig2Params] = None) -> FigureResult:
    p = params or Fig2Params()
    cal = Calibration()
    result = FigureResult(
        "Figure 2", "Maximum throughput: Eunomia vs sequencer",
        ["partitions", "eunomia_ops_s", "sequencer_ops_s", "ratio",
         "eunomia_paper_scale"],
    )
    peak_ratio = 0.0
    for count in p.partition_counts:
        eunomia = build_eunomia_rig(count, config=EunomiaConfig(),
                                    calibration=cal, seed=p.seed)
        eunomia.run(p.duration)
        eu_thpt = eunomia.throughput()

        sequencer = build_sequencer_rig(count, calibration=cal, seed=p.seed)
        sequencer.run(p.duration)
        seq_thpt = sequencer.throughput()

        ratio = eu_thpt / seq_thpt if seq_thpt else float("inf")
        peak_ratio = max(peak_ratio, ratio)
        result.add_row(count, eu_thpt, seq_thpt, ratio,
                       eu_thpt * cal.throughput_scale())
    result.note(f"peak Eunomia/sequencer ratio: {peak_ratio:.1f}x "
                "(paper: 7.7x)")
    result.note("paper shape: sequencer flat at its ceiling; Eunomia scales "
                "with offered load, saturating near 60 partitions")
    return result
