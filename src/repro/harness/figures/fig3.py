"""Figure 3 — fault-tolerance overhead (§7.1).

Maximum throughput of fault-tolerant Eunomia with 1–3 replicas, normalized
against the non-fault-tolerant service, next to a plain and a 3-node
chain-replicated sequencer.  Expected shape: FT-Eunomia pays a small
(~9%), replica-count-independent overhead — replicas never coordinate, so
the leader's only extra work is acknowledgements — while chain replication
costs the sequencer ~33% because every request traverses every node.

Beyond the paper, ``sharded_ft=(K, R)`` measures the same penalty for the
Alg. 4 × K composition against a K-shard non-FT baseline: the overhead
*shrinks* with K because the per-batch acknowledgements — the leader's
only coordination-free extra work — are spread over K shard workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...calibration import Calibration
from ...core.config import EunomiaConfig
from ..loadgen import build_eunomia_rig, build_sequencer_rig
from ..report import FigureResult

__all__ = ["Fig3Params", "run"]


@dataclass
class Fig3Params:
    n_partitions: int = 60
    replica_counts: tuple = (1, 2, 3)
    chain_length: int = 3
    #: beyond the paper: also measure the Alg. 4 × K composition —
    #: ``(K, R)`` adds a K-shard non-FT baseline row and a K-shard
    #: R-replica row normalized against it (None skips the pair)
    sharded_ft: Optional[tuple] = (4, 3)
    duration: float = 2.0
    seed: int = 31

    @classmethod
    def quick(cls) -> "Fig3Params":
        # Overhead only shows at saturation, so the partition count stays at
        # the paper's 60 even in quick mode; only the run is shortened.
        return cls(replica_counts=(1, 3), duration=1.2)


def run(params: Optional[Fig3Params] = None) -> FigureResult:
    p = params or Fig3Params()
    cal = Calibration()
    result = FigureResult(
        "Figure 3", "Fault-tolerance overhead (normalized max throughput)",
        ["variant", "ops_s", "normalized"],
    )

    base_rig = build_eunomia_rig(p.n_partitions, config=EunomiaConfig(),
                                 calibration=cal, seed=p.seed)
    base_rig.run(p.duration)
    base = base_rig.throughput()
    result.add_row("eunomia non-FT", base, 1.0)

    for replicas in p.replica_counts:
        config = EunomiaConfig(fault_tolerant=True, n_replicas=replicas)
        rig = build_eunomia_rig(p.n_partitions, config=config,
                                calibration=cal, seed=p.seed)
        rig.run(p.duration)
        thpt = rig.throughput()
        result.add_row(f"eunomia {replicas}-FT", thpt, thpt / base)

    if p.sharded_ft is not None:
        # The Alg. 4 × K composition, normalized against its own K-shard
        # non-FT baseline: the paper's claim (FT costs ~9%, independent of
        # replica count) should survive sharding because replicas still
        # never coordinate — only the leader's shards ack and serialize.
        k, r = p.sharded_ft
        shard_rig = build_eunomia_rig(
            p.n_partitions, config=EunomiaConfig(n_shards=k),
            calibration=cal, seed=p.seed)
        shard_rig.run(p.duration)
        shard_base = shard_rig.throughput()
        result.add_row(f"eunomia K{k} non-FT", shard_base, 1.0)
        config = EunomiaConfig(n_shards=k, n_replicas=r, fault_tolerant=True)
        ft_rig = build_eunomia_rig(p.n_partitions, config=config,
                                   calibration=cal, seed=p.seed)
        ft_rig.run(p.duration)
        ft = ft_rig.throughput()
        result.add_row(f"eunomia K{k}x{r}-FT", ft, ft / shard_base)
        result.note(f"K{k} rows are normalized against the K{k} non-FT "
                    "baseline, not the single-stabilizer one")

    seq_rig = build_sequencer_rig(p.n_partitions, calibration=cal,
                                  seed=p.seed)
    seq_rig.run(p.duration)
    seq = seq_rig.throughput()
    result.add_row("sequencer non-FT", seq, seq / base)

    chain_rig = build_sequencer_rig(p.n_partitions,
                                    chain_length=p.chain_length,
                                    calibration=cal, seed=p.seed)
    chain_rig.run(p.duration)
    chain = chain_rig.throughput()
    result.add_row(f"sequencer {p.chain_length}-FT", chain, chain / base)

    result.note(f"sequencer FT penalty: {(1 - chain / seq) * 100:.1f}% "
                "(paper: ~33%); Eunomia FT penalty ~9% for any replica count")
    return result
