"""Figure 1 — the motivating tradeoff (§2).

Left plot: p90 remote-update visibility latency at dc2 for updates born at
dc1, for GentleRain and Cure, as the global-stabilization ("clock
computation") interval sweeps from 1 ms to 100 ms.  Right plot: throughput
penalty versus an eventually consistent baseline for S-Seq, A-Seq,
GentleRain, and Cure.

Expected shapes (paper): sequencer penalties are flat in the interval
(S-Seq ≈ −15% purely from synchronous waiting, A-Seq ≈ 0); GentleRain/Cure
trade throughput for visibility along the sweep, and even at 100 ms Cure
still pays double-digit throughput (−11.6% in the paper) from per-op vector
handling.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Optional

from ...baselines.gst import GstTimings
from ...geo.system import GeoSystemSpec
from ...workload.generator import WorkloadSpec
from ..experiment import run_geo, visibility_p
from ..report import FigureResult

__all__ = ["Fig1Params", "run"]


@dataclass
class Fig1Params:
    intervals_ms: tuple = (1, 10, 20, 50, 100)
    duration: float = 6.0
    partitions: int = 4
    clients: int = 8
    n_keys: int = 500
    read_ratio: float = 0.75
    seed: int = 11

    @classmethod
    def quick(cls) -> "Fig1Params":
        return cls(intervals_ms=(1, 10, 100), duration=3.0, clients=6)


def run(params: Optional[Fig1Params] = None) -> FigureResult:
    p = params or Fig1Params()
    result = FigureResult(
        "Figure 1", "Update visibility latency vs throughput tradeoff",
        ["system", "interval_ms", "thpt_ops_s", "penalty_pct", "vis_p90_ms"],
    )
    spec = GeoSystemSpec(n_dcs=3, partitions_per_dc=p.partitions,
                         clients_per_dc=p.clients, seed=p.seed)
    workload = WorkloadSpec(read_ratio=p.read_ratio, n_keys=p.n_keys)

    baseline = run_geo("eventual", spec, workload, p.duration)
    base_thpt = baseline.total_throughput()
    result.add_row("eventual", "-", base_thpt, 0.0, 0.0)

    def penalty(thpt: float) -> float:
        return (thpt - base_thpt) / base_thpt * 100.0

    for protocol in ("sseq", "aseq"):
        system = run_geo(protocol, spec, workload, p.duration)
        thpt = system.total_throughput()
        result.add_row(protocol, "-", thpt, penalty(thpt),
                       visibility_p(system, 0, 1, 90.0))

    for protocol in ("gentlerain", "cure"):
        for interval_ms in p.intervals_ms:
            timings = GstTimings(gst_interval=interval_ms / 1e3)
            system = run_geo(protocol, spec, workload, p.duration,
                             timings=timings)
            thpt = system.total_throughput()
            result.add_row(f"{protocol}@{interval_ms}ms", interval_ms, thpt,
                           penalty(thpt), visibility_p(system, 0, 1, 90.0))

    result.note(f"workload {workload.ratio_label()} uniform, "
                f"{p.partitions} partitions x 3 DCs, {p.duration}s runs")
    result.note("paper shapes: S-Seq flat ~-15%, A-Seq ~0%; GentleRain/Cure "
                "visibility grows with the interval; Cure still ~-12% at 100ms")
    return result
