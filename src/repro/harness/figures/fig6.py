"""Figure 6 — remote update visibility CDFs (§7.2.2).

Cumulative distributions of the *extra* visibility delay (network transit
factored out) for EunomiaKV, GentleRain, and Cure on two datacenter pairs:

* **left** (dc1 → dc2, 40 ms one-way): EunomiaKV far ahead (paper: 95% of
  updates within 15 ms extra); Cure in the middle; GentleRain cannot make
  anything visible with less than ~40 ms extra — the scalar's false
  dependency on the farthest datacenter;
* **right** (dc2 → dc3, 80 ms one-way): the vector buys Cure nothing here,
  so GentleRain beats Cure (vector overhead), and EunomiaKV still leads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...geo.system import GeoSystemSpec
from ...metrics import cdf, percentile
from ...workload.generator import WorkloadSpec
from ..experiment import run_geo
from ..report import FigureResult

__all__ = ["Fig6Params", "run"]

# Registry-ordered subset: the causal stores whose visibility the figure
# compares, each deployed through the one shared spine.
from ...core.protocols import PROTOCOL_ORDER

PROTOCOLS = tuple(p for p in PROTOCOL_ORDER
                  if p in ("eunomia", "gentlerain", "cure"))
PAIRS = {"dc1->dc2": (0, 1), "dc2->dc3": (1, 2)}


@dataclass
class Fig6Params:
    duration: float = 10.0
    partitions: int = 4
    clients: int = 8
    n_keys: int = 1000
    read_ratio: float = 0.9
    seed: int = 61

    @classmethod
    def quick(cls) -> "Fig6Params":
        return cls(duration=5.0, clients=6)


def run(params: Optional[Fig6Params] = None) -> FigureResult:
    p = params or Fig6Params()
    result = FigureResult(
        "Figure 6", "Remote update visibility CDFs (extra delay, ms)",
        ["system", "pair", "p50_ms", "p90_ms", "p95_ms", "min_ms",
         "pct_within_15ms"],
    )
    spec = GeoSystemSpec(n_dcs=3, partitions_per_dc=p.partitions,
                         clients_per_dc=p.clients, seed=p.seed)
    workload = WorkloadSpec(read_ratio=p.read_ratio, n_keys=p.n_keys)

    for protocol in PROTOCOLS:
        system = run_geo(protocol, spec, workload, p.duration)
        for pair_label, (origin, dest) in PAIRS.items():
            extras = system.visibility_extra_ms(origin, dest)
            if not extras:
                continue
            within = sum(1 for v in extras if v <= 15.0) / len(extras) * 100
            result.add_row(f"{protocol}", pair_label,
                           percentile(extras, 50), percentile(extras, 90),
                           percentile(extras, 95), min(extras), within)
            result.add_series(f"{protocol}:{pair_label}",
                              cdf(extras, resolution=1.0))
    result.note("paper shapes: left pair EunomiaKV ~15ms@95%, GentleRain "
                "floored at ~40ms; right pair GentleRain < Cure, EunomiaKV "
                "best on both")
    return result
