"""Figure 4 — impact of replica failures on Eunomia (§7.1).

Timeline of stabilization throughput, normalized against the non-FT
average, while Eunomia replicas crash: the current leader at t₁ and (for
multi-replica groups) the next leader at t₂.  Expected shape: 1-FT drops to
zero at t₁ and never recovers; 2-FT survives t₁ (short dip while the Ω
detector suspects the old leader, then back to ~95–100%) and dies at t₂;
3-FT survives both.  The paper's 700-second timeline is compressed — the
phenomena (failover gap ≈ the suspicion timeout, full recovery) are
interval-free.

With ``n_shards > 1`` the same schedule crashes whole
:class:`~repro.core.shard.ShardedReplicaGroup` pipelines (Alg. 4 × K):
the expected shape is identical, which is the point — replicating the
sharded stabilizer buys the paper's failover story at K-shard throughput.

The **amnesia → rejoin** variant (``rejoin_at`` set, beyond the paper)
replaces the second crash with a recovery: the leader crashed at t₁ *loses
its state* (``crash(lose_state=True)``) and rejoins at t₂ via the
durability subsystem — checkpoint + WAL replay, then peer state transfer —
reclaiming leadership (lowest id).  Expected shape: the t₁ failover dip,
full throughput under the interim leader, a second (small) dip at the
rejoin handover, then full throughput under the restored leader.  Requires
``durability="wal"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...calibration import Calibration
from ...core.config import EunomiaConfig
from ...metrics import mean
from ..loadgen import build_eunomia_rig
from ..report import FigureResult

__all__ = ["Fig4Params", "run"]


@dataclass
class Fig4Params:
    n_partitions: int = 10
    replica_counts: tuple = (1, 2, 3)
    #: 1 reproduces the paper's figure; >1 runs the same crash schedule
    #: against replicated *sharded* groups (Alg. 4 × K) — each crash takes
    #: down a whole K-shard replica pipeline.
    n_shards: int = 1
    duration: float = 45.0
    crash1: float = 12.0
    crash2: float = 30.0
    window: float = 1.5
    batch_interval: float = 0.005   # coarser ticks keep the event count sane
    seed: int = 41
    #: durability mode threaded into every rig (the amnesia timeline
    #: requires "wal"; "none" reproduces the paper's crash-stop figure)
    durability: str = "none"
    #: when set, the t₁ crash is an amnesia crash (state lost) and the
    #: crashed unit *rejoins* at this time instead of a successor dying
    #: at ``crash2``
    rejoin_at: Optional[float] = None

    @classmethod
    def quick(cls) -> "Fig4Params":
        return cls(n_partitions=6, duration=24.0, crash1=7.0, crash2=16.0,
                   window=1.0)

    @classmethod
    def quick_sharded(cls) -> "Fig4Params":
        """The failover timeline for K=2-sharded replica groups."""
        quick = cls.quick()
        quick.n_shards = 2
        return quick

    @classmethod
    def quick_amnesia(cls) -> "Fig4Params":
        """Crash → amnesia → rejoin for K=2-sharded 3-replica groups."""
        quick = cls.quick()
        quick.n_shards = 2
        quick.replica_counts = (3,)
        quick.durability = "wal"
        quick.rejoin_at = 15.0
        return quick


def _phase_mean(timeline, start: float, end: float) -> float:
    return mean([rate for t, rate in timeline if start <= t < end])


def run(params: Optional[Fig4Params] = None) -> FigureResult:
    p = params or Fig4Params()
    if p.rejoin_at is not None and p.durability != "wal":
        # Fail fast: scheduling rejoin() after an amnesia crash without a
        # WAL would raise mid-simulation, 12 seconds in.
        raise ValueError(
            "the amnesia->rejoin timeline (rejoin_at) requires "
            "durability='wal'")
    cal = Calibration()
    result = FigureResult(
        "Figure 4", "Impact of replica failures (normalized throughput)",
        ["variant", "before_crash1", "between_crashes", "after_crash2"],
    )

    def make_config(ft: bool, replicas: int) -> EunomiaConfig:
        return EunomiaConfig(fault_tolerant=ft, n_replicas=replicas,
                             n_shards=p.n_shards,
                             batch_interval=p.batch_interval,
                             heartbeat_interval=p.batch_interval,
                             durability=p.durability)

    base_rig = build_eunomia_rig(p.n_partitions,
                                 config=make_config(False, 1),
                                 calibration=cal, seed=p.seed)
    base_rig.run(p.duration)
    base_rate = mean([r for _, r in base_rig.throughput_timeline(p.window)])
    result.add_row("non-FT (baseline)", 1.0, 1.0, 1.0)

    for replicas in p.replica_counts:
        rig = build_eunomia_rig(p.n_partitions,
                                config=make_config(True, replicas),
                                calibration=cal, seed=p.seed)
        # Crash the initial leader at t1 and its successor at t2.  Replica
        # ids are elected lowest-first, so the leadership order is 0, 1, 2.
        # ``rig.groups`` holds the crash units — Alg. 4 replicas when
        # K=1, whole ShardedReplicaGroups (K shards + coordinator) when
        # the stabilizer is sharded.
        groups = rig.groups
        if p.rejoin_at is not None:
            # Amnesia timeline: the leader loses its state at t1 and
            # rejoins at t2 through the WAL/checkpoint/state-transfer path
            # (a ShardedReplicaGroup or an Alg. 4 replica — both expose
            # crash(lose_state=True) and rejoin()).
            target = groups[0]
            rig.env.loop.schedule_at(
                p.crash1, lambda t=target: t.crash(lose_state=True))
            rig.env.loop.schedule_at(p.rejoin_at, target.rejoin)
            t2 = p.rejoin_at
        else:
            rig.env.loop.schedule_at(p.crash1, groups[0].crash)
            if replicas >= 2:
                rig.env.loop.schedule_at(p.crash2, groups[1].crash)
            t2 = p.crash2
        rig.run(p.duration)

        variant = (f"{replicas}-FT+rejoin" if p.rejoin_at is not None
                   else f"{replicas}-FT")
        timeline = [(t, rate / base_rate)
                    for t, rate in rig.throughput_timeline(p.window)]
        result.add_series(variant, timeline)
        result.add_row(
            variant,
            _phase_mean(timeline, 0.0, p.crash1),
            _phase_mean(timeline, p.crash1 + 3.0, t2),
            _phase_mean(timeline, t2 + 3.0, p.duration),
        )

    if p.rejoin_at is not None:
        result.note(f"amnesia crash of the leader at t={p.crash1}s "
                    f"(state lost, durability={p.durability!r}), rejoin at "
                    f"t={p.rejoin_at}s via WAL replay + state transfer; "
                    "after_crash2 column = after the rejoin handover")
        result.note("expected shape: failover dip at t1, interim leader at "
                    "~full throughput, small handover dip at rejoin, then "
                    "the restored leader at ~full throughput")
    else:
        result.note(f"leader crash at t={p.crash1}s, successor crash at "
                    f"t={p.crash2}s; suspicion timeout "
                    f"{EunomiaConfig().replica_suspect_timeout}s")
        result.note("paper shape: 1-FT dies at t1; 2-FT dies at t2; 3-FT "
                    "recovers to ~95-100% after each failover dip")
    return result
