"""One module per figure of the paper's evaluation (the harness registry)."""

from . import fig1, fig2, fig3, fig4, fig5, fig6, fig7

FIGURES = {
    1: fig1,
    2: fig2,
    3: fig3,
    4: fig4,
    5: fig5,
    6: fig6,
    7: fig7,
}

__all__ = ["FIGURES", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7"]
