"""Randomized chaos matrix: adversarial fault schedules × every protocol.

The paper evaluates protocols on a healthy testbed; this module asks the
complementary question — *do the implementations keep their promises under
faults?* — using two oracles:

1. the **causal checker** (:mod:`repro.checker`): every recorded session
   must satisfy the causal session guarantees, and every read must return
   a value some write actually produced;
2. **exactly-once, lossless delivery**: after every fault heals and the
   system drains, all datacenters converge to identical stores, and (in
   the rig-based drill) the deduplicated stable output equals the
   fault-free golden run's — each generated op delivered at least once,
   duplicates only where retries are supposed to create them.

A :class:`ChaosSchedule` is a seeded, JSON-serializable sample from the
fault space; `python -m repro.harness.chaos --matrix` runs many seeds ×
protocols, and a failing case's schedule is written out so the exact run
can be replayed (``--replay file.json``) while debugging.

Fault classes are sampled per protocol from its *reliability envelope*:
the simulator's channels are lossy when cut, and these protocols (like
their real counterparts over TCP) assume reliable delivery wherever no
retry exists.  So schedules cut only paths covered by retry/repair
machinery (uplink retransmission, sequencer request retries, periodic
state-carrying reports) or crash only infrastructure with failover
(stabilizer replica groups, chain nodes); gray faults (delay, slow disks,
clock trouble) are lossless by nature and apply everywhere.  That is
exactly the regime where the recovery idioms added for the chaos matrix —
bounded timeouts, retry-with-backoff, re-election, chain repair — must
make every oracle hold on every seed.
"""

from __future__ import annotations

import argparse
import bisect
import json
import random
import sys
import zlib
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional

from ..checker import CausalChecker, SessionHistory
from ..core.config import EunomiaConfig
from ..geo.system import GeoSystemSpec, build_geo_system
from ..workload.generator import WorkloadSpec
from .loadgen import build_eunomia_rig

__all__ = [
    "FAULT_CLASSES",
    "CHAOS_PROTOCOLS",
    "CHAOS_PLACEMENTS",
    "FaultEvent",
    "ChaosSchedule",
    "sample_schedule",
    "apply_schedule",
    "run_case",
    "run_exactly_once_drill",
    "run_matrix",
]

#: Every fault class the chaos generator can inject.  Values are the
#: ``FaultEvent.cls`` tags; the per-protocol menu below decides which
#: classes a given protocol is sampled with.
FAULT_CLASSES = (
    "infra_crash",      # crash + recover a failover-covered infrastructure
                        # process: stabilizer replica group / chain node
    "isolation",        # network-partition a retried control path, then heal
    "gray_link",        # slow-not-dead links: extra one-way delay window
    "gray_disk",        # degraded fsync latency on a WAL's disk
    "wal_fault",        # injected fsync failures - commit retry must cover
    "clock_drift",      # drift-rate change + phase step on one node's clock
    "ntp_outage",       # suspend clock discipline for a window
    "region_outage",    # crash every process in one datacenter - sampled
                        # only for island DCs of a partial placement, whose
                        # data replicates nowhere and whose clients retry
)

#: The protocols the matrix runs by default, with the deployment options
#: that give each one its fault-tolerance machinery (Eunomia runs the
#: paper's fault-tolerant K=4 × R=3 stabilizer with a WAL; the sequencer
#: runs the §7.1 chain, length 3, with repair).
CHAOS_PROTOCOLS: dict[str, dict] = {
    "eunomia": {},          # config built per-run (mutable); see _options_for
    "gentlerain": {},
    "cure": {},
    "sseq": {"chain_length": 3},
}

#: fault classes each protocol is sampled from (its reliability envelope)
_MENU: dict[str, tuple] = {
    "eunomia": ("infra_crash", "isolation", "gray_link", "gray_disk",
                "wal_fault", "clock_drift", "ntp_outage"),
    "gentlerain": ("isolation", "gray_link", "clock_drift", "ntp_outage"),
    "cure": ("isolation", "gray_link", "clock_drift", "ntp_outage"),
    "sseq": ("infra_crash", "isolation", "gray_link", "clock_drift",
             "ntp_outage"),
}

_SPEC = dict(n_dcs=3, partitions_per_dc=4, clients_per_dc=2)
_WORKLOAD = dict(read_ratio=0.75, n_keys=48)
_RUN_FOR = 2.2          # fault window lives in [0.4, 1.6]
_DRAIN = 3.0            # generous: covers re-election + retry backoff caps

#: Placement shapes the matrix can run under.  ``"island"`` gives dc2 a
#: partition set that overlaps nobody — the only shape where crashing an
#: entire region is recoverable by construction (its data replicates
#: nowhere, so no inter-DC stream is lost) — which is exactly what the
#: ``region_outage`` fault class is gated on.  Partial-placement runs get
#: client retries: forwarded sessions would otherwise stall forever when
#: their remote target crashes.
CHAOS_PLACEMENTS: dict[str, Optional[str]] = {
    "full": None,
    "island": "dc0=0,1;dc1=0,1;dc2=2,3",
}
_CLIENT_RETRY = 0.25    # > any RTT + backoff; << the post-heal drain

#: ``clock_mode="physical"`` models loosely disciplined physical clocks
#: (NTP residual ~2.5 ms instead of the calibrated 100 us) — the regime
#: where timestamp-ordered protocols must absorb real clock error.
_PHYSICAL_RESIDUAL_US = 2500.0


def _options_for(protocol: str, placement: str = "full") -> dict:
    if protocol == "eunomia":
        # Island placements leave each DC with 2 resident partitions, so
        # the stabilizer cannot spread them over more than 2 shards.
        n_shards = 4 if placement == "full" else 2
        return {"config": EunomiaConfig(n_shards=n_shards, n_replicas=3,
                                        fault_tolerant=True,
                                        durability="wal")}
    return dict(CHAOS_PROTOCOLS[protocol])


@dataclass
class FaultEvent:
    """One sampled fault: a class tag, a window, and role-based targets.

    ``params`` names targets by *role* (``dc``, ``partition``, ``unit``…)
    rather than by object, so an event serializes to JSON and re-resolves
    against a freshly built system on replay.
    """

    cls: str
    start: float
    stop: float
    params: dict = field(default_factory=dict)


@dataclass
class ChaosSchedule:
    """A seeded, serializable fault schedule for one protocol run."""

    protocol: str
    seed: int
    events: list[FaultEvent] = field(default_factory=list)
    #: ``"hybrid"`` (calibrated NTP discipline) or ``"physical"`` (loose
    #: discipline, ~2.5 ms residual) — a sampled axis, not a fault window
    clock_mode: str = "hybrid"
    #: key into :data:`CHAOS_PLACEMENTS`; ``"full"`` replays pre-placement
    #: schedules bit-for-bit (both fields default for old JSON artifacts)
    placement: str = "full"

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ChaosSchedule":
        raw = json.loads(text)
        events = [FaultEvent(**e) for e in raw.pop("events", [])]
        return cls(events=events, **raw)


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------
def sample_schedule(protocol: str, seed: int,
                    n_faults: Optional[int] = None,
                    placement: str = "full") -> ChaosSchedule:
    """Sample a fault schedule for ``protocol`` from its class menu.

    Deterministic in ``(protocol, seed, placement)``; fault windows land
    inside the run (healed well before drain) and may overlap —
    overlapping faults are the point of a chaos *matrix*.

    ``placement="full"`` reproduces the historical event streams exactly
    (the clock-mode draw happens after all event draws).  A placement
    with island DCs adds ``region_outage`` to the menu, targeted at an
    island DC — the one shape where losing a whole region drops no
    replication stream.
    """
    if protocol not in _MENU:
        raise ValueError(f"no chaos menu for protocol {protocol!r}; "
                         f"known: {sorted(_MENU)}")
    placement_spec = CHAOS_PLACEMENTS[placement]
    menu = _MENU[protocol]
    islands: tuple = ()
    if placement_spec is not None:
        from ..core.placement import PlacementMap

        islands = PlacementMap.from_spec(
            _SPEC["n_dcs"], _SPEC["partitions_per_dc"],
            placement_spec).island_dcs()
        if islands:
            menu = menu + ("region_outage",)
    # str hash is process-randomized; use a stable digest so a (protocol,
    # seed) pair names the same schedule in every interpreter
    tag = zlib.crc32(protocol.encode())
    rng = random.Random((seed << 8) ^ tag)
    count = n_faults if n_faults is not None else rng.randint(2, 4)
    n_dcs = _SPEC["n_dcs"]
    n_parts = _SPEC["partitions_per_dc"]
    events: list[FaultEvent] = []
    for _ in range(count):
        cls = rng.choice(menu)
        start = round(rng.uniform(0.4, 1.2), 3)
        stop = round(start + rng.uniform(0.2, 0.45), 3)
        dc = rng.randrange(n_dcs)
        part = rng.randrange(n_parts)
        params: dict = {"dc": dc}
        if cls == "region_outage":
            # retarget onto an island DC without extra draws, keeping the
            # per-event draw count class-independent
            params["dc"] = islands[dc % len(islands)]
        elif cls == "infra_crash":
            params["unit"] = rng.randrange(
                3 if protocol in ("eunomia", "sseq") else 1)
        elif cls == "isolation":
            params["partition"] = part
            # Ω-style asymmetric reachability on some samples: the isolated
            # node still *hears* the group but cannot reach it.
            params["symmetric"] = rng.random() < 0.7
        elif cls == "gray_link":
            params["partition"] = part
            params["extra_ms"] = round(rng.uniform(5.0, 40.0), 1)
        elif cls == "gray_disk":
            params["factor"] = round(rng.uniform(2.0, 8.0), 1)
        elif cls == "wal_fault":
            params["count"] = rng.randint(1, 3)
        elif cls == "clock_drift":
            params["partition"] = part
            params["drift_ppm"] = round(rng.uniform(-300.0, 300.0), 1)
            params["step_us"] = round(rng.uniform(0.0, 400.0), 1)
        events.append(FaultEvent(cls, start, stop, params))
    events.sort(key=lambda e: (e.start, e.cls))
    # Drawn after every event draw so the "full" event streams stay
    # byte-identical to the pre-axis sampler for a given (protocol, seed).
    clock_mode = rng.choice(("hybrid", "physical"))
    return ChaosSchedule(protocol=protocol, seed=seed, events=events,
                         clock_mode=clock_mode, placement=placement)


# ----------------------------------------------------------------------
# Resolution: role descriptors -> FailureSchedule DSL calls
# ----------------------------------------------------------------------
def _crash_unit(system, dc, event):
    units = (dc.stack.crash_units() if dc.stack is not None
             else [p for p in dc.extras if hasattr(p, "counter")])
    if not units:
        raise ValueError(f"{system.protocol}: no crashable infrastructure")
    return units[event.params["unit"] % len(units)]


def _isolation_groups(system, dc, event):
    part = dc.partitions[event.params.get("partition", 0) % len(dc.partitions)]
    if system.protocol == "eunomia":
        return [part], list(dc.stack.processes())
    if system.protocol in ("gentlerain", "cure"):
        # isolate the current aggregator from its local peers: the exact
        # "dead aggregator stalls its DC" shape, without losing data
        aggregator = dc.partitions[0]
        return [aggregator], [p for p in dc.partitions if p is not aggregator]
    if system.protocol in ("sseq", "aseq"):
        return [part], list(dc.extras)
    raise ValueError(f"no isolation target for {system.protocol!r}")


def _gray_pairs(system, dc, event):
    a, b = _isolation_groups(system, dc, event)
    pairs = [(x, y) for x in a for y in b] + [(y, x) for x in a for y in b]
    if system.protocol in ("gentlerain", "cure"):
        # also slow the victim partition's inter-DC sibling links (the
        # heartbeat/replication paths the GST is computed over)
        part = dc.partitions[event.params.get("partition", 0)
                             % len(dc.partitions)]
        for other in system.datacenters:
            if other is not dc:
                sibling = other.partitions[part.index]
                pairs.append((part, sibling))
                pairs.append((sibling, part))
    return pairs


def _durable_members(dc):
    return [p for p in (dc.stack.processes() if dc.stack else [])
            if getattr(p, "wal", None) is not None]


def _region_processes(system, dc):
    """Every process a whole-region outage takes down: resident
    partitions (non-resident ones never started), the receiver, the
    stabilizer stack, protocol extras (sequencer chains), and the DC's
    own clients."""
    procs = list(dc.resident_partitions())
    if dc.receiver is not None:
        procs.append(dc.receiver)
    if dc.stack is not None:
        procs.extend(dc.stack.processes())
    procs.extend(dc.extras)
    procs.extend(c for c in system.clients if c.dc_id == dc.dc_id)
    return procs


def apply_schedule(system, schedule: ChaosSchedule) -> None:
    """Program ``schedule`` into ``system.failures()``.

    Every window-shaped fault arms both its onset and its heal, so a full
    schedule always returns the system to a healthy configuration.
    """
    fs = system.failures()
    for event in schedule.events:
        dc = system.datacenters[event.params.get("dc", 0)
                                % len(system.datacenters)]
        if event.cls == "region_outage":
            if system.placement is None or dc.dc_id not in \
                    system.placement.island_dcs():
                raise ValueError(
                    f"region_outage targets dc{dc.dc_id}, which is not an "
                    f"island of the placement — a replicated region's "
                    f"dropped streams are unrecoverable by design")
            for proc in _region_processes(system, dc):
                fs.crash_at(event.start, proc)
                fs.recover_at(event.stop, proc)
        elif event.cls == "infra_crash":
            unit = _crash_unit(system, dc, event)
            fs.crash_at(event.start, unit)
            fs.recover_at(event.stop, unit)
        elif event.cls == "isolation":
            a, b = _isolation_groups(system, dc, event)
            fs.partition_at(event.start, a, b,
                            symmetric=event.params.get("symmetric", True))
            fs.heal_at(event.stop, a, b)
        elif event.cls == "gray_link":
            pairs = _gray_pairs(system, dc, event)
            fs.degrade_links_at(event.start, pairs,
                                event.params["extra_ms"] / 1e3)
            fs.restore_links_at(event.stop, pairs)
        elif event.cls == "gray_disk":
            for proc in _durable_members(dc):
                fs.degrade_disk_at(event.start, proc.wal.disk,
                                   event.params["factor"])
                fs.restore_disk_at(event.stop, proc.wal.disk)
        elif event.cls == "wal_fault":
            members = _durable_members(dc)
            if members:
                victim = members[event.params.get("unit", 0) % len(members)]
                fs.wal_fail_fsyncs_at(event.start, victim.wal,
                                      event.params["count"])
        elif event.cls == "clock_drift":
            part = dc.partitions[event.params.get("partition", 0)
                                 % len(dc.partitions)]
            fs.clock_drift_at(event.start, part.clock,
                              event.params["drift_ppm"],
                              step_us=event.params.get("step_us", 0.0))
        elif event.cls == "ntp_outage":
            if system.ntp is not None:
                fs.ntp_outage(event.start, event.stop, system.ntp)
        else:
            raise ValueError(f"unknown fault class {event.cls!r}")


# ----------------------------------------------------------------------
# One case = one (protocol, seed) run against both oracles
# ----------------------------------------------------------------------
@dataclass
class CaseResult:
    schedule: ChaosSchedule
    ok: bool
    failures: list[str] = field(default_factory=list)
    fired: list[str] = field(default_factory=list)
    throughput: float = 0.0
    #: one entry per scheduled fault: {cls, start, stop, mttr_s} where
    #: mttr_s is the delay from the fault's heal to the next completed
    #: client op (None if the run never produced one)
    mttr: list = field(default_factory=list)
    #: Chrome-trace-event dict (sampled spans + gauges + fault windows),
    #: Perfetto-loadable; None only when the run crashed before digesting
    trace: Optional[dict] = None


def _mttr_samples(system, schedule: ChaosSchedule) -> list:
    """Time-to-recover per scheduled fault: heal → next completed op."""
    marks = sorted(system.metrics.mark_times("ops"))
    samples = []
    for event in schedule.events:
        i = bisect.bisect_right(marks, event.stop)
        mttr_s = marks[i] - event.stop if i < len(marks) else None
        if mttr_s is not None:
            system.metrics.record(f"mttr_s:{event.cls}", mttr_s)
        samples.append({"fault": event.cls, "start": event.start,
                        "stop": event.stop, "mttr_s": mttr_s})
    return samples


def run_case(schedule: ChaosSchedule, scheduler: str = "heap",
             observe: bool = True) -> CaseResult:
    """Run one chaos case and evaluate every oracle.

    Never raises on an oracle failure — the verdict (and the evidence)
    comes back in the :class:`CaseResult` so the matrix can keep going
    and artifacts can be written for every failing seed.  ``observe``
    (default on: it is golden-invisible and the runs are small) attaches
    the repro.obs surface so every result carries a Perfetto-loadable
    trace with fault windows, MTTR slices, spans, and gauges on one
    timeline.
    """
    history = SessionHistory()
    spec_kwargs = dict(_SPEC)
    placement_spec = CHAOS_PLACEMENTS[schedule.placement]
    if placement_spec is not None:
        spec_kwargs["placement"] = placement_spec
        spec_kwargs["client_retry"] = _CLIENT_RETRY
    if schedule.clock_mode == "physical":
        spec_kwargs["ntp_residual_us"] = _PHYSICAL_RESIDUAL_US
    spec = GeoSystemSpec(seed=schedule.seed, scheduler=scheduler,
                         **spec_kwargs)
    system = build_geo_system(schedule.protocol, spec,
                              WorkloadSpec(**_WORKLOAD), history=history,
                              **_options_for(schedule.protocol,
                                             schedule.placement))
    apply_schedule(system, schedule)
    obs = system.observe(sample_every=16) if observe else None
    failures: list[str] = []
    try:
        system.run(_RUN_FOR)
        system.quiesce(_DRAIN)
    except Exception as exc:          # a crash mid-sim is itself a finding
        return CaseResult(schedule, False, [f"run crashed: {exc!r}"],
                          [l for _, l in system.failures().log])
    checker = CausalChecker(history)
    violations = checker.check()
    if violations:
        failures.append(f"causal violations: {violations[:3]}")
    pairs = checker.check_write_read_pairs()
    if pairs:
        failures.append(f"write/read pair violations: {pairs[:3]}")
    if system.placement is not None:
        routing = checker.check_placement_routing(
            system.placement, system.datacenters[0].ring)
        if routing:
            failures.append(f"placement routing violations: {routing[:3]}")
    if not system.converged():
        failures.append("datacenters did not converge after heal + drain")
    throughput = system.total_throughput()
    if throughput <= 0:
        failures.append("no progress: zero committed throughput")
    last_stop = max((e.stop for e in schedule.events), default=0.0)
    post_fault = [r for c in history.clients()
                  for r in history.session(c) if r.time > last_stop + 0.2]
    if not post_fault:
        failures.append("stall: no client ops after the last fault healed")
    mttr = _mttr_samples(system, schedule)
    trace = None
    if obs is not None:
        from ..obs import chrome_trace

        trace = chrome_trace(tracer=obs.tracer, metrics=system.metrics,
                             fault_log=system.failures().log, mttr=mttr)
    return CaseResult(schedule, not failures, failures,
                      [l for _, l in system.failures().log], throughput,
                      mttr=mttr, trace=trace)


def run_exactly_once_drill(seed: int, n_partitions: int = 4) -> list[str]:
    """Golden-equivalence oracle on the Eunomia rig (open-loop drivers).

    A fault-free run and a faulty run (leader replica crash + fsync
    failures mid-stream) of the same seed; generation is open-loop, so the
    comparison normalizes both runs to what their drivers emitted.  The
    oracle: **deduplicated stable output = exactly the generated set** in
    both runs, and the fault-free run has no duplicates at all — i.e. the
    faulty run's deduped output is the fault-free golden output for the
    same offered load.
    """
    def build(faulty: bool):
        config = EunomiaConfig(n_replicas=3, fault_tolerant=True)
        rig = build_eunomia_rig(n_partitions, config=config, seed=seed)
        rig.sink.record = True
        sched = None
        if faulty:
            from ..sim.failure import FailureSchedule
            sched = FailureSchedule(rig.env)
            leader = rig.groups[0]
            sched.crash_at(0.3, leader)
            sched.recover_at(0.55, leader)
            sched.arm()
        return rig

    failures: list[str] = []
    outputs = {}
    for label, faulty in (("golden", False), ("faulty", True)):
        rig = build(faulty)
        rig.start()
        rig.env.run(until=0.8)
        for driver in rig.drivers:
            driver.stop()
        rig.env.run(until=4.0)
        generated = {(0, d.index, s)
                     for d in rig.drivers for s in range(1, d._seq + 1)}
        collected = list(rig.sink.collected)
        deduped = set(collected)
        if label == "golden" and len(collected) != len(deduped):
            failures.append("golden run delivered duplicates")
        missing = generated - deduped
        extra = deduped - generated
        if missing:
            failures.append(f"{label}: {len(missing)} generated ops never "
                            f"delivered (e.g. {sorted(missing)[:3]})")
        if extra:
            failures.append(f"{label}: {len(extra)} unknown ops delivered")
        outputs[label] = deduped
    return failures


# ----------------------------------------------------------------------
# The matrix + CLI
# ----------------------------------------------------------------------
def run_matrix(seeds, protocols=None, out: Optional[Path] = None,
               progress=lambda line: None,
               placement: str = "full") -> list[CaseResult]:
    """seeds × protocols, writing a replayable artifact per failing case."""
    protocols = list(protocols or CHAOS_PROTOCOLS)
    results: list[CaseResult] = []
    for protocol in protocols:
        for seed in seeds:
            schedule = sample_schedule(protocol, seed, placement=placement)
            result = run_case(schedule)
            results.append(result)
            status = "ok" if result.ok else "FAIL"
            progress(f"{protocol:<11} seed {seed:<4} {status}  "
                     f"[{', '.join(l for l in result.fired)}]")
            if not result.ok:
                for line in result.failures:
                    progress(f"    {line}")
                if out is not None:
                    out.mkdir(parents=True, exist_ok=True)
                    path = out / f"failing_{protocol}_seed{seed}.json"
                    payload = json.loads(schedule.to_json())
                    payload["oracle_failures"] = result.failures
                    payload["fired"] = result.fired
                    payload["mttr"] = result.mttr
                    path.write_text(json.dumps(payload, indent=2))
                    progress(f"    schedule written to {path}")
                    if result.trace is not None:
                        # the sampled spans + gauge series + fault windows,
                        # Perfetto-loadable next to the replayable schedule
                        trace_path = (out /
                                      f"failing_{protocol}_seed{seed}"
                                      f"_trace.json")
                        trace_path.write_text(json.dumps(result.trace))
                        progress(f"    trace written to {trace_path}")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.chaos",
        description="Randomized chaos matrix over every registered protocol")
    parser.add_argument("--matrix", action="store_true",
                        help="run the full seeds × protocols matrix")
    parser.add_argument("--seeds", type=int, default=20,
                        help="number of seeds per protocol (default 20)")
    parser.add_argument("--seed-base", type=int, default=1000,
                        help="first seed (seeds are base..base+n-1)")
    parser.add_argument("--protocols", nargs="*",
                        default=list(CHAOS_PROTOCOLS),
                        help="protocol subset (default: all four)")
    parser.add_argument("--placement", choices=sorted(CHAOS_PLACEMENTS),
                        default="full",
                        help="replication shape for the matrix runs "
                             "(island shapes unlock region_outage)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for failing-schedule artifacts")
    parser.add_argument("--replay", type=Path, default=None,
                        help="re-run one failing schedule JSON artifact")
    parser.add_argument("--drill", action="store_true",
                        help="also run the rig exactly-once drills")
    args = parser.parse_args(argv)

    if args.replay is not None:
        schedule = ChaosSchedule.from_json(args.replay.read_text())
        result = run_case(schedule)
        print(f"{schedule.protocol} seed {schedule.seed}: "
              f"{'ok' if result.ok else 'FAIL'}")
        for line in result.fired:
            print(f"  fired: {line}")
        for sample in result.mttr:
            mttr_s = sample["mttr_s"]
            shown = "never recovered" if mttr_s is None else f"{mttr_s * 1e3:.2f} ms"
            print(f"  mttr: {sample['fault']} healed at {sample['stop']}s "
                  f"-> {shown}")
        for line in result.failures:
            print(f"  oracle: {line}")
        return 0 if result.ok else 1

    if not args.matrix and not args.drill:
        parser.error("nothing to do: pass --matrix and/or --drill")

    rc = 0
    if args.matrix:
        seeds = range(args.seed_base, args.seed_base + args.seeds)
        results = run_matrix(seeds, args.protocols, out=args.out,
                             progress=print, placement=args.placement)
        failed = [r for r in results if not r.ok]
        print(f"matrix: {len(results) - len(failed)}/{len(results)} cases ok")
        if failed:
            rc = 1
    if args.drill:
        for seed in range(3):
            failures = run_exactly_once_drill(seed)
            status = "ok" if not failures else "FAIL"
            print(f"exactly-once drill seed {seed}: {status}")
            for line in failures:
                print(f"  {line}")
            if failures:
                rc = 1
    return rc


if __name__ == "__main__":
    sys.exit(main())
