"""Golden fingerprints: byte-stable digests of a whole protocol run.

The deployment-spine refactor (one ``ProtocolSpec`` plugin per protocol
over ``core/protocols.py`` + ``geo/``) must not change a single bit of any
protocol's behaviour — the paper's measurement argument rests on every
system sharing the same frame, and ours rests on the frame *swap* being
observationally invisible.  This module defines the fingerprint that
proves it: for a fixed seed, a digest over

* the per-datacenter store fingerprints and sorted store snapshots
  (client-visible final state),
* the *ordered* remote-visibility series per datacenter pair — the
  ``vis_total_ms``/``vis_extra_ms`` points in emission order, which pin
  down the full timing of every remote install, and
* the completed-operation count (throughput-side behaviour).

``capture_golden`` computes one; ``scripts/capture_goldens.py`` recorded
``tests/golden/baseline_goldens.json`` against the *pre-refactor* builders
and ``tests/test_protocol_goldens.py`` asserts the post-refactor spine
reproduces them bit-for-bit.

``vis_sorted_sha`` is an order-*independent* variant of the visibility
digest: structures that legally reorder installs within one stabilization
round (e.g. Cure's run-aware pending set versus the classic scan) emit the
same point multiset in a different order, so equivalence across pending
backends is asserted against the sorted digest while same-backend
equivalence uses the strict ordered one.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["GOLDEN_SPEC", "GOLDEN_WORKLOAD", "GOLDEN_SEEDS",
           "capture_golden", "run_fingerprint"]

#: deployment shape every golden is captured at (small but multi-partition,
#: multi-client — enough concurrency to exercise all wiring paths)
GOLDEN_SPEC = dict(n_dcs=3, partitions_per_dc=2, clients_per_dc=2)
GOLDEN_WORKLOAD = dict(read_ratio=0.75, n_keys=64)
GOLDEN_SEEDS = (1234, 77)
_RUN_SECONDS = 2.0
_DRAIN_SECONDS = 2.5


def _sha(payload: Any) -> str:
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()[:20]


def _visibility_points(system) -> list:
    """Every remote-visibility point, per (origin, dest) pair, in order."""
    series = []
    n = system.spec.n_dcs
    for k in range(n):
        for m in range(n):
            if k == m:
                continue
            for label in (f"vis_total_ms:{k}->{m}", f"vis_extra_ms:{k}->{m}"):
                points = system.metrics.point_series(label)
                series.append((label, [(t, v) for t, v in points]))
    return series


def run_fingerprint(system) -> dict:
    """Digest a finished (run + quiesced) :class:`GeoSystem` run."""
    snapshots = []
    for dc in system.datacenters:
        snapshot = dc.store_snapshot()
        snapshots.append(_sha(sorted(snapshot.items(), key=lambda kv: str(kv[0]))))
    vis = _visibility_points(system)
    flat_points = sorted((label, t, v) for label, pts in vis
                         for t, v in pts)
    return {
        "fingerprints": [format(dc.fingerprint() & 0xFFFFFFFF, "08x")
                         for dc in system.datacenters],
        "snapshot_sha": snapshots,
        "stable_sha": _sha(vis),
        "vis_sorted_sha": _sha(flat_points),
        "ops": len(system.metrics.mark_times("ops")),
        "converged": system.converged(),
    }


def capture_golden(protocol: str, seed: int,
                   run_seconds: float = _RUN_SECONDS,
                   drain_seconds: float = _DRAIN_SECONDS,
                   scheduler: str = "heap",
                   observe: bool = False,
                   **kwargs) -> dict:
    """Build ``protocol`` at ``seed`` on the golden frame and digest it.

    ``scheduler`` picks the event-loop backend (``"heap"``/``"wheel"``);
    backends fire in identical (time, seq) order, so the digest must not
    depend on the choice — the cross-backend golden test asserts exactly
    that.  ``observe=True`` attaches the full observability surface
    (tracing + SLO sketches + gauges, ``repro.obs``) before the run; the
    instruments draw no randomness and schedule only read-only periodics,
    so the digest must not depend on this flag either — the
    golden-preservation test asserts exactly that.
    """
    from ..baselines import build_system
    from ..geo.system import GeoSystemSpec
    from ..workload.generator import WorkloadSpec

    spec = GeoSystemSpec(seed=seed, scheduler=scheduler, **GOLDEN_SPEC)
    workload = WorkloadSpec(**GOLDEN_WORKLOAD)
    system = build_system(protocol, spec, workload, **kwargs)
    if observe:
        system.observe(sample_every=16)
    system.run(run_seconds)
    system.quiesce(drain_seconds)
    out = {"protocol": protocol, "seed": seed}
    out.update(run_fingerprint(system))
    return out
