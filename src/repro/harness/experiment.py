"""Small helpers shared by the per-figure experiment modules."""

from __future__ import annotations

from typing import Optional

from ..baselines import build_system
from ..geo.system import GeoSystem, GeoSystemSpec
from ..metrics import percentile
from ..workload.generator import WorkloadSpec

__all__ = ["run_geo", "visibility_p"]


def run_geo(protocol: str, spec: GeoSystemSpec, workload: WorkloadSpec,
            duration: float, drain: float = 0.0, history=None,
            **kwargs) -> GeoSystem:
    """Build a deployment, run it for ``duration`` seconds, maybe drain."""
    system = build_system(protocol, spec, workload, history=history, **kwargs)
    system.run(duration)
    if drain > 0.0:
        system.quiesce(drain)
    return system


def visibility_p(system: GeoSystem, origin: int, dest: int,
                 pct: float) -> float:
    """Percentile of remote-update *extra* visibility latency (ms)."""
    return percentile(system.visibility_extra_ms(origin, dest), pct)
