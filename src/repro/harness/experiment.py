"""Small helpers shared by the per-figure experiment modules."""

from __future__ import annotations

from ..geo.system import GeoSystem, GeoSystemSpec, build_geo_system
from ..metrics import percentile
from ..workload.generator import WorkloadSpec

__all__ = ["run_geo", "visibility_p"]


def run_geo(protocol: str, spec: GeoSystemSpec, workload: WorkloadSpec,
            duration: float, drain: float = 0.0, history=None,
            **kwargs) -> GeoSystem:
    """Build a deployment of any registered protocol (one spine for all —
    every figure's cross-protocol comparison is plumbing-identical by
    construction), run it for ``duration`` seconds, maybe drain."""
    system = build_geo_system(protocol, spec, workload, history=history,
                              **kwargs)
    system.run(duration)
    if drain > 0.0:
        system.quiesce(drain)
    return system


def visibility_p(system: GeoSystem, origin: int, dest: int,
                 pct: float) -> float:
    """Percentile of remote-update *extra* visibility latency (ms)."""
    return percentile(system.visibility_extra_ms(origin, dest), pct)
