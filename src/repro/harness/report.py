"""Result containers and plain-text rendering for the figure harness.

Every ``figN.run(...)`` returns a :class:`FigureResult`: the table the paper
prints (rows/columns), optional named series (CDFs, timelines), and notes on
parameters and expected shapes.  ``render_text()`` produces the fixed-width
report the benchmarks emit and EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

__all__ = ["FigureResult", "format_table"]


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(columns: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width table with a header rule."""
    grid = [[_fmt(c) for c in row] for row in rows]
    widths = [len(col) for col in columns]
    for row in grid:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                  for i, cell in enumerate(row))
        for row in grid
    ]
    return "\n".join([header, rule, *body])


@dataclass
class FigureResult:
    """One reproduced figure: table, optional series, provenance notes."""

    figure: str
    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    series: dict[str, list[tuple]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        self.rows.append(list(cells))

    def add_series(self, name: str, points: Sequence[tuple]) -> None:
        self.series[name] = list(points)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def row_value(self, label: str, column: str) -> Any:
        """Look up a cell by first-column label + column name (tests)."""
        col = self.columns.index(column)
        for row in self.rows:
            if row[0] == label:
                return row[col]
        raise KeyError(label)

    def render_text(self) -> str:
        out = [f"== {self.figure}: {self.title} ==",
               format_table(self.columns, self.rows)]
        for name, points in self.series.items():
            preview = ", ".join(f"({x:.3g}, {y:.3g})" for x, y in points[:6])
            suffix = " ..." if len(points) > 6 else ""
            out.append(f"series {name}: {preview}{suffix}  [{len(points)} pts]")
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out)
