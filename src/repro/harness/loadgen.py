"""§7.1 load rigs: driving Eunomia and sequencers to saturation.

The paper stretches both services by connecting load generators *directly*,
bypassing the data store: "each client simulates a different partition in a
multi-server datacenter", which lets the authors emulate datacenters far
larger than their testbed.  This module reproduces that methodology:

* :class:`PartitionEmulator` — an eager closed-loop producer that owns a
  hybrid clock and a full Eunomia uplink (batching, acks, heartbeats), i.e.
  exactly the partition-side protocol with the storage stripped away;
* :class:`SequencerLoadClient` — the equivalent driver for a sequencer:
  request a number, wait, request the next (the waiting *is* the point);
* :class:`RemoteSink` — stands in for a remote datacenter's receiver, so
  Eunomia pays its propagation cost (its real bottleneck per §7.1);
* rig builders assembling each service with N drivers on an intra-DC
  network.

Throughput is read from the service-side marks: ``eunomia_stable:dc0``
(ops leaving PROCESS_STABLE) and ``seq_assigned:dc0`` (numbers issued).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..calibration import Calibration
from ..clocks.hlc import HybridLogicalClock
from ..clocks.physical import PhysicalClock
from ..core.assembly import build_stabilizer_stack
from ..core.config import EunomiaConfig
from ..core.messages import BatchAck
from ..core.uplink import EunomiaUplink
from ..kvstore.types import Update
from ..metrics import MetricsHub, steady_window, throughput
from ..sim.env import Environment
from ..sim.latency import ConstantLatency
from ..sim.network import Network
from ..sim.process import Process
from .. import baselines
from ..baselines.messages import SeqReply, SeqRequest
from ..baselines.sequencer import Sequencer, build_chain

__all__ = [
    "RemoteSink",
    "PartitionEmulator",
    "SequencerLoadClient",
    "ServiceRig",
    "build_eunomia_rig",
    "build_sequencer_rig",
]

INTRA_DC_LATENCY = 0.00015  # 150 µs LAN hop, as in the geo deployments


class RemoteSink(Process):
    """Counts ordered updates arriving from a service (a remote DC stand-in).

    Set ``record = True`` (before the run) to also keep the exact arrival
    sequence of update uids — the sharded-determinism tests compare these
    across shard counts.
    """

    def __init__(self, env: Environment, name: str = "sink"):
        super().__init__(env, name, site=1)
        self.received = 0
        self.last_batch_ts = 0
        self.record = False
        self.collected: list[tuple] = []

    def on_remote_stable_batch(self, msg, src: Process) -> None:
        self.received += len(msg.ops)
        if msg.ops:
            self.last_batch_ts = msg.ops[-1].ts
            if self.record:
                self.collected.extend(op.uid for op in msg.ops)


class PartitionEmulator(Process):
    """An eagerly-updating partition without the storage substrate."""

    def __init__(self, env: Environment, name: str, index: int,
                 config: EunomiaConfig,
                 calibration: Optional[Calibration] = None,
                 metrics: Optional[MetricsHub] = None):
        super().__init__(env, name, site=0)
        cal = calibration or Calibration()
        self.index = index
        self.config = config
        self.clock = PhysicalClock.random(env, env.rng.stream(f"empart/{name}"))
        self.hlc = HybridLogicalClock(self.clock)
        self.batch_interval = config.batch_interval
        self.gen_cost = cal.cost("emulated_partition_gen")
        self.uplink = EunomiaUplink(
            host=self, partition_index=index, config=config,
            hlc=self.hlc, clock=self.clock,
            op_cost=cal.cost("uplink_op"),
            batch_cost=cal.overhead("uplink_batch"),
        )
        self._seq = 0
        self._stopped = False
        self.generated = 0

    def set_eunomia(self, replicas: list[Process]) -> None:
        self.uplink.set_replicas(replicas)

    def start(self) -> None:
        self.uplink.start()
        self._enqueue(self._generate, self.gen_cost)

    def recover(self) -> None:
        """Rejoin after a crash: re-arm the uplink and restart the loop."""
        super().recover()
        self.uplink.restart()
        if not self._stopped:
            self._enqueue(self._generate, self.gen_cost)

    def stop(self) -> None:
        """Stop generating load; the uplink stays alive and drains."""
        self._stopped = True

    def _generate(self) -> None:
        if self._stopped:
            return
        ts = self.hlc.tick()
        self._seq += 1
        self.uplink.record(Update(
            key=self._seq & 1023, value=None, origin_dc=0,
            partition_index=self.index, seq=self._seq, ts=ts, vts=(ts,),
            commit_time=self.now,
        ))
        self.generated += 1
        self._enqueue(self._generate, self.gen_cost)

    def on_batch_ack(self, msg: BatchAck, src: Process) -> None:
        self.uplink.on_ack(msg, src)


class SequencerLoadClient(Process):
    """Closed-loop driver of a (possibly chain-replicated) sequencer.

    Fault-tolerant like the real partitions: an in-flight request that
    outlives ``retry_timeout`` is re-sent — round-robin through ``group``
    when one is supplied (the chain standbys) — with capped exponential
    backoff, and a late original reply racing the retry's is deduplicated
    by uid so one request never completes twice.
    """

    def __init__(self, env: Environment, name: str, index: int,
                 head: Process,
                 calibration: Optional[Calibration] = None,
                 group: Optional[list] = None,
                 retry_timeout: float = 0.05):
        super().__init__(env, name, site=0)
        cal = calibration or Calibration()
        self.index = index
        self.head = head
        self.group: list[Process] = list(group) if group else [head]
        self.retry_timeout = retry_timeout
        self.gen_cost = cal.cost("emulated_partition_gen")
        self._seq = 0
        self._outstanding = None        # uid of the in-flight request
        self._target_idx = 0
        self.completed = 0
        self.retries = 0
        self.duplicate_replies = 0

    def start(self) -> None:
        self._enqueue(self._request, self.gen_cost)

    def _request(self) -> None:
        self._seq += 1
        update = Update(
            key=self._seq & 1023, value=None, origin_dc=0,
            partition_index=self.index, seq=self._seq, ts=0, vts=(0,),
            commit_time=self.now,
        )
        self._outstanding = update.uid
        self._target_idx = 0
        self.send(self.group[0], SeqRequest(update))
        self.after(self.retry_timeout, self._maybe_retry, update, 0)

    def _maybe_retry(self, update, attempt: int) -> None:
        if self._outstanding != update.uid:
            return                      # answered meanwhile — timer is moot
        self.retries += 1
        self._target_idx = (self._target_idx + 1) % len(self.group)
        self.send(self.group[self._target_idx],
                  SeqRequest(replace(update, value=None)))
        delay = min(self.retry_timeout * (1 << (attempt + 1)),
                    max(self.retry_timeout, 0.5))
        self.after(delay, self._maybe_retry, update, attempt + 1)

    def on_seq_reply(self, msg: SeqReply, src: Process) -> None:
        if msg.uid != self._outstanding:
            self.duplicate_replies += 1
            return
        self._outstanding = None
        self.completed += 1
        self._enqueue(self._request, self.gen_cost)


@dataclass
class ServiceRig:
    """A service (Eunomia or sequencer) under synthetic partition load."""

    env: Environment
    metrics: MetricsHub
    drivers: list
    service_processes: list
    sink: RemoteSink
    throughput_mark: str
    #: replica-failure targets, in election order (Alg. 4 replicas or
    #: :class:`~repro.core.shard.ShardedReplicaGroup`s); empty when the
    #: service has no replicas to crash
    groups: list = field(default_factory=list)
    _run_window: tuple[float, float] = field(default=(0.0, 0.0))

    def start(self) -> None:
        for proc in self.service_processes:
            proc.start()
        for driver in self.drivers:
            driver.start()

    def observe(self, sample_every: int = 16):
        """Attach a sampled causal tracer to the rig (see repro.obs).

        Rig ops are emulator-generated (no client issue stamp), so spans
        open at service ingestion; WAL group commits are hooked the same
        way the geo spine does it.  Returns the tracer.
        """
        from ..obs import Tracer  # local import keeps obs optional here

        tracer = Tracer(sample_every=sample_every)
        self.metrics.tracer = tracer
        for proc in self.service_processes:
            wal = getattr(proc, "wal", None)
            if wal is not None:
                site = getattr(proc, "site", 0)
                wal.obs_hook = tracer.wal_hook(self.env, site)
        return tracer

    def run(self, duration: float) -> None:
        self.start()
        start = self.env.now
        self.env.run(until=start + duration)
        self._run_window = (start, self.env.now)

    def throughput(self) -> float:
        """Service ops/second over the steady-state window."""
        window = steady_window(*self._run_window)
        return throughput(self.metrics.mark_times(self.throughput_mark), window)

    def throughput_timeline(self, width: float = 1.0) -> list[tuple[float, float]]:
        from ..metrics import windowed_rate

        start, end = self._run_window
        return windowed_rate(self.metrics.mark_times(self.throughput_mark),
                             start, end, width)


def build_eunomia_rig(n_partitions: int,
                      config: Optional[EunomiaConfig] = None,
                      calibration: Optional[Calibration] = None,
                      seed: int = 0,
                      metrics: Optional[MetricsHub] = None) -> ServiceRig:
    """Eunomia under emulator load, in any of the four stabilizer shapes
    (plain, Alg. 4 replicated, K-sharded, or fault-tolerant K × R)."""
    config = config or EunomiaConfig()
    config.validate()
    cal = calibration or Calibration()
    metrics = metrics or MetricsHub()
    env = Environment(seed=seed)
    Network(env, ConstantLatency(INTRA_DC_LATENCY))

    stack = build_stabilizer_stack(env, 0, n_partitions, config, cal,
                                   metrics=metrics,
                                   stable_mark="eunomia_stable:dc0")
    sink = RemoteSink(env)
    for propagator in stack.propagators():
        propagator.add_destination(sink)

    drivers = [
        PartitionEmulator(env, f"part{i}", i, config, calibration=cal,
                          metrics=metrics)
        for i in range(n_partitions)
    ]
    service_processes: list[Process] = stack.processes()
    service_processes.extend(stack.wire_uplinks(drivers))

    return ServiceRig(env, metrics, drivers, service_processes, sink,
                      throughput_mark="eunomia_stable:dc0",
                      groups=stack.crash_units())


def build_sequencer_rig(n_clients: int, chain_length: int = 1,
                        calibration: Optional[Calibration] = None,
                        seed: int = 0,
                        metrics: Optional[MetricsHub] = None) -> ServiceRig:
    """A sequencer (chain-replicated if ``chain_length > 1``) under load."""
    cal = calibration or Calibration()
    metrics = metrics or MetricsHub()
    env = Environment(seed=seed)
    Network(env, ConstantLatency(INTRA_DC_LATENCY))

    sink = RemoteSink(env)
    if chain_length == 1:
        head: Process = Sequencer(env, "sequencer", 0, calibration=cal,
                                  metrics=metrics,
                                  assign_mark="seq_assigned:dc0")
        head.add_destination(sink)
        service_processes: list[Process] = []
    else:
        nodes = build_chain(env, 0, chain_length, calibration=cal,
                            metrics=metrics)
        for node in nodes:
            node.assign_mark = "seq_assigned:dc0"
        nodes[-1].add_destination(sink)
        head = nodes[0]
        service_processes = []

    drivers = [
        SequencerLoadClient(env, f"client{i}", i, head, calibration=cal)
        for i in range(n_clients)
    ]
    return ServiceRig(env, metrics, drivers, service_processes, sink,
                      throughput_mark="seq_assigned:dc0")
