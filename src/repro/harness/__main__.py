"""Command-line entry point: regenerate any figure of the paper.

    python -m repro.harness --figure 2          # quick parameters
    python -m repro.harness --figure 6 --full   # paper-shaped parameters
    python -m repro.harness --all --full
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import FIGURES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the evaluation figures of the Eunomia paper "
                    "(Gunawardhana et al., USENIX ATC'17).",
    )
    parser.add_argument("--figure", type=int, choices=sorted(FIGURES),
                        help="which figure to regenerate")
    parser.add_argument("--all", action="store_true",
                        help="regenerate every figure")
    parser.add_argument("--full", action="store_true",
                        help="use full parameters (slower) instead of the "
                             "quick defaults")
    args = parser.parse_args(argv)

    if not args.all and args.figure is None:
        parser.error("pick --figure N or --all")
    targets = sorted(FIGURES) if args.all else [args.figure]

    for number in targets:
        module = FIGURES[number]
        params_cls = getattr(module, f"Fig{number}Params")
        params = params_cls() if args.full else params_cls.quick()
        started = time.time()
        result = module.run(params)
        elapsed = time.time() - started
        print(result.render_text())
        print(f"[figure {number} regenerated in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
