"""Benchmark harness: §7.1 load rigs, one experiment module per paper
figure, and plain-text reporting.  ``python -m repro.harness --all``
regenerates the full evaluation."""

from .experiment import run_geo, visibility_p
from .figures import FIGURES
from .loadgen import (
    PartitionEmulator,
    RemoteSink,
    SequencerLoadClient,
    ServiceRig,
    build_eunomia_rig,
    build_sequencer_rig,
)
from .report import FigureResult, format_table

__all__ = [
    "FIGURES",
    "FigureResult",
    "format_table",
    "run_geo",
    "visibility_p",
    "PartitionEmulator",
    "SequencerLoadClient",
    "RemoteSink",
    "ServiceRig",
    "build_eunomia_rig",
    "build_sequencer_rig",
]
