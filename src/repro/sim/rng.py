"""Seeded, splittable random streams.

Every stochastic component in the simulator (network jitter, workload key
choice, think times, clock drift) draws from its own named stream derived from
a single root seed.  This makes experiments reproducible *and* robust to code
changes: adding a new consumer of randomness does not perturb the draws of
existing components, because each stream is seeded independently from
``(root_seed, name)``.
"""

from __future__ import annotations

import random
import zlib

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of named, independently seeded :class:`random.Random` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            # Mix the root seed with a stable hash of the name.  zlib.crc32 is
            # deterministic across processes (unlike hash()).
            derived = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode())) & 0xFFFFFFFF
            rng = random.Random(derived)
            self._streams[name] = rng
        return rng

    def fork(self, salt: str) -> "RngRegistry":
        """Derive an independent registry (e.g. per datacenter)."""
        derived = (self.seed * 0x85EBCA6B + zlib.crc32(salt.encode())) & 0xFFFFFFFF
        return RngRegistry(derived)
