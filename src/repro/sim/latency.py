"""Network latency models.

The paper's testbed emulates WAN delays with netem: round-trip times of 80 ms
between dc1↔dc2 and dc1↔dc3, and 160 ms between dc2↔dc3 (approximating
Virginia / Oregon / Ireland on EC2).  :class:`RttMatrix` reproduces exactly
that; :class:`ConstantLatency` and :class:`JitteredLatency` serve unit tests
and micro-experiments.

All models return **one-way** delays in seconds for a concrete (src, dst)
process pair; site membership is read from ``process.site``.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "JitteredLatency",
    "RttMatrix",
    "PAPER_RTT_MS",
    "paper_topology",
]

#: RTTs used throughout the paper's evaluation (§7.2), in milliseconds.
PAPER_RTT_MS: tuple[tuple[float, float, float], ...] = (
    (0.0, 80.0, 80.0),
    (80.0, 0.0, 160.0),
    (80.0, 160.0, 0.0),
)


class LatencyModel:
    """Interface: one-way delay for a (src, dst) process pair."""

    def delay(self, src, dst, rng: random.Random) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Fixed one-way delay for every pair (unit-test friendly)."""

    def __init__(self, delay_s: float = 0.0001):
        self.delay_s = delay_s

    def delay(self, src, dst, rng: random.Random) -> float:
        return self.delay_s


class JitteredLatency(LatencyModel):
    """Base delay plus uniform jitter in ``[0, jitter_s]``."""

    def __init__(self, base_s: float, jitter_s: float):
        self.base_s = base_s
        self.jitter_s = jitter_s

    def delay(self, src, dst, rng: random.Random) -> float:
        return self.base_s + rng.random() * self.jitter_s


class RttMatrix(LatencyModel):
    """Site-to-site delays from an RTT matrix, plus intra-site LAN delay.

    One-way delay between different sites is ``rtt/2`` plus a small relative
    jitter; within a site it is ``intra_us`` microseconds (a Gigabit-switch
    LAN hop, as in the paper's private cloud) plus jitter.
    """

    def __init__(self, rtt_ms: Sequence[Sequence[float]] = PAPER_RTT_MS,
                 intra_us: float = 150.0, jitter_frac: float = 0.02):
        self.rtt_ms = [list(row) for row in rtt_ms]
        self.intra_us = intra_us
        self.jitter_frac = jitter_frac
        n = len(self.rtt_ms)
        for row in self.rtt_ms:
            if len(row) != n:
                raise ValueError("RTT matrix must be square")

    @property
    def n_sites(self) -> int:
        return len(self.rtt_ms)

    def one_way_s(self, src_site: int, dst_site: int) -> float:
        """Deterministic (jitter-free) one-way delay between two sites."""
        if src_site == dst_site:
            return self.intra_us / 1e6
        return self.rtt_ms[src_site][dst_site] / 2.0 / 1e3

    def delay(self, src, dst, rng: random.Random) -> float:
        base = self.one_way_s(src.site, dst.site)
        if self.jitter_frac:
            base *= 1.0 + rng.random() * self.jitter_frac
        return base


def paper_topology(n_sites: int = 3, intra_us: float = 150.0,
                   jitter_frac: float = 0.02) -> RttMatrix:
    """The paper's 3-DC topology; for other sizes, a ring-distance synthetic.

    For ``n_sites != 3`` we synthesize RTTs of ``80 * ring-distance`` ms,
    which preserves the property that some DC pairs are twice as far apart
    as others (the ingredient behind GentleRain's false-dependency delays).
    """
    if n_sites == 3:
        return RttMatrix(PAPER_RTT_MS, intra_us=intra_us, jitter_frac=jitter_frac)
    rtt = [[0.0] * n_sites for _ in range(n_sites)]
    for i in range(n_sites):
        for j in range(n_sites):
            if i != j:
                ring = min(abs(i - j), n_sites - abs(i - j))
                rtt[i][j] = 80.0 * ring
    return RttMatrix(rtt, intra_us=intra_us, jitter_frac=jitter_frac)
