"""Simulated message-passing network.

Provides the properties the paper's protocols assume:

* **FIFO links** between any pair of processes (Eunomia's Property 2 and the
  geo-replication layer both require FIFO channels).  With jittered latency
  models, FIFO is enforced by never delivering a message earlier than the
  previous one on the same (src, dst) link.
* **Configurable loss** — globally or per link — used to exercise the
  at-least-once / prefix-property machinery of fault-tolerant Eunomia.
* **Partitions** — pairs (or whole processes) can be disconnected and later
  reconnected, for failure-injection experiments.

Delivery goes through the destination's service queue
(:meth:`repro.sim.process.Process.deliver`), so a message to an overloaded
server queues behind its backlog — the effect underlying every throughput
result in the paper.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from .env import Environment
from .latency import ConstantLatency, LatencyModel
from .process import Process

__all__ = ["Network"]


class Network:
    """Point-to-point network with FIFO links, loss, and partitions."""

    def __init__(self, env: Environment, latency: Optional[LatencyModel] = None,
                 loss_rate: float = 0.0):
        self.env = env
        self._loop = env.loop   # hot-path alias (the loop never changes)
        self.latency = latency or ConstantLatency()
        self.loss_rate = loss_rate
        self._rng = env.rng.stream("network")
        self._last_delivery: dict[tuple[int, int], float] = {}
        self._link_loss: dict[tuple[int, int], float] = {}
        self._link_extra_delay: dict[tuple[int, int], float] = {}
        self._blocked: set[tuple[int, int]] = set()
        self._processes: dict[int, Process] = {}
        #: every message handed to the network, whether or not it survives
        #: the crash/partition/loss checks (the offered load)
        self.messages_attempted = 0
        #: messages actually scheduled for delivery (crashed-source,
        #: partitioned, and lost messages are excluded — so crash schedules
        #: cannot inflate reported send throughput)
        self.messages_sent = 0
        self.messages_dropped = 0
        #: bytes of delivered-path messages (same rule as ``messages_sent``)
        self.bytes_sent = 0
        env.network = self

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, process: Process) -> None:
        self._processes[process.pid] = process

    def processes(self) -> list[Process]:
        return list(self._processes.values())

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def set_link_loss(self, src: Process, dst: Process, rate: float) -> None:
        """Set a loss probability for the directed link src→dst."""
        self._link_loss[(src.pid, dst.pid)] = rate

    def set_link_extra_delay(self, src: Process, dst: Process,
                             extra_s: float) -> None:
        """Add fixed delay on the directed link src→dst (0 restores normal).

        Used to model degraded paths, e.g. a partition whose connection to
        its local sequencer straggles (Figure 7's sequencer comparison).
        """
        if extra_s:
            self._link_extra_delay[(src.pid, dst.pid)] = extra_s
        else:
            self._link_extra_delay.pop((src.pid, dst.pid), None)

    def disconnect(self, src: Process, dst: Process, both_ways: bool = True) -> None:
        self._blocked.add((src.pid, dst.pid))
        if both_ways:
            self._blocked.add((dst.pid, src.pid))

    def reconnect(self, src: Process, dst: Process, both_ways: bool = True) -> None:
        self._blocked.discard((src.pid, dst.pid))
        if both_ways:
            self._blocked.discard((dst.pid, src.pid))

    def partition(self, group_a: Iterable[Process], group_b: Iterable[Process],
                  symmetric: bool = True) -> None:
        """Partition two node sets: block every ``a → b`` link.

        ``symmetric=True`` (the default) blocks ``b → a`` too — a clean
        split.  ``symmetric=False`` blocks only ``a → b``, modelling
        *asymmetric reachability*: ``b``'s traffic still reaches ``a``, but
        ``a`` has gone silent from ``b``'s point of view — the regime in
        which Ω-style failure detectors can split-brain.  Links within a
        group are untouched; already-in-flight messages still deliver
        (partitions drop at send time, like crash-stop).
        """
        for a in group_a:
            for b in group_b:
                self.disconnect(a, b, both_ways=symmetric)

    def heal(self, group_a: Iterable[Process],
             group_b: Iterable[Process]) -> None:
        """Restore both directions between two node sets (idempotent; also
        heals partitions that were created asymmetric)."""
        for a in group_a:
            for b in group_b:
                self.reconnect(a, b, both_ways=True)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, src: Process, dst: Process, msg: Any) -> None:
        """Transmit ``msg``; it is delivered after the modelled latency.

        Messages from/to crashed processes and across partitioned links are
        silently dropped (crash-stop model).  Lost messages count in
        ``messages_dropped``.

        This is the per-message hot path (every protocol message in every
        experiment funnels through it), so the lookups it repeats are
        hoisted into locals and the fault-injection tables — empty in the
        common non-faulty run — are tested for emptiness before being
        probed.
        """
        self.messages_attempted += 1
        key = (src.pid, dst.pid)
        if src.crashed or (self._blocked and key in self._blocked):
            self.messages_dropped += 1
            return
        rate = (self._link_loss.get(key, self.loss_rate)
                if self._link_loss else self.loss_rate)
        if rate > 0.0 and self._rng.random() < rate:
            self.messages_dropped += 1
            return
        self.messages_sent += 1
        self.bytes_sent += getattr(msg, "size_bytes", 0)
        loop = self._loop
        delay = self.latency.delay(src, dst, self._rng)
        if self._link_extra_delay:
            delay += self._link_extra_delay.get(key, 0.0)
        deliver_at = loop._now + delay
        # FIFO per directed link: never overtake the previous delivery.
        last = self._last_delivery
        previous = last.get(key)
        if previous is not None and deliver_at < previous:
            deliver_at = previous
        last[key] = deliver_at
        loop.schedule_at(deliver_at, dst.deliver, msg, src)

    def send_many(self, src: Process, dst: Process,
                  msgs: Sequence[Any]) -> None:
        """Transmit a batch of messages over one link, one event per group.

        Semantically identical to calling :meth:`send` once per message, in
        order: the per-message loss and latency draws consume the network
        RNG in exactly the same sequence, and the per-link FIFO clamp is
        applied message by message.  The difference is purely mechanical —
        messages that end up with the *same* delivery time (always the case
        under jitter-free latency models, where the FIFO clamp makes
        deliver-at times non-decreasing and batches collapse) are scheduled
        as ONE event that hands the whole group to
        :meth:`repro.sim.process.Process.deliver_batch`.  Consecutive
        sequence numbers mean no foreign event can interleave a same-time
        group, so the merged firing is order-isomorphic to the per-message
        schedule.
        """
        n = len(msgs)
        if n == 0:
            return
        if n == 1:
            self.send(src, dst, msgs[0])
            return
        self.messages_attempted += n
        key = (src.pid, dst.pid)
        if src.crashed or (self._blocked and key in self._blocked):
            self.messages_dropped += n
            return
        rate = (self._link_loss.get(key, self.loss_rate)
                if self._link_loss else self.loss_rate)
        loop = self._loop
        now = loop._now
        latency_delay = self.latency.delay
        rng = self._rng
        extra = (self._link_extra_delay.get(key, 0.0)
                 if self._link_extra_delay else 0.0)
        previous = self._last_delivery.get(key)
        group: list[Any] = []
        group_at = 0.0
        delivered = 0
        bytes_out = 0
        for msg in msgs:
            if rate > 0.0 and rng.random() < rate:
                self.messages_dropped += 1
                continue
            deliver_at = now + latency_delay(src, dst, rng) + extra
            if previous is not None and deliver_at < previous:
                deliver_at = previous
            previous = deliver_at
            delivered += 1
            bytes_out += getattr(msg, "size_bytes", 0)
            if group and deliver_at == group_at:
                group.append(msg)
                continue
            self._flush_group(group, group_at, dst, src)
            group = [msg]
            group_at = deliver_at
        self._flush_group(group, group_at, dst, src)
        if previous is not None:
            self._last_delivery[key] = previous
        self.messages_sent += delivered
        self.bytes_sent += bytes_out

    def _flush_group(self, group: list, deliver_at: float, dst: Process,
                     src: Process) -> None:
        """Schedule one pending delivery group (no-op when empty)."""
        if not group:
            return
        if len(group) == 1:
            self._loop.schedule_at(deliver_at, dst.deliver, group[0], src)
        else:
            self._loop.schedule_at(deliver_at, dst.deliver_batch,
                                   tuple(group), src)

    def multicast(self, src: Process, dsts: Iterable[Process],
                  msg: Any) -> None:
        """Send one message to each destination, in iteration order.

        Pure fan-out sugar over :meth:`send` — per-destination links draw
        loss/latency independently, so nothing can be merged across
        destinations; the value is a single audited entry point for the
        propagation/heartbeat/gossip fan-outs instead of ad-hoc loops.
        """
        for dst in dsts:
            self.send(src, dst, msg)
