"""Simulated message-passing network.

Provides the properties the paper's protocols assume:

* **FIFO links** between any pair of processes (Eunomia's Property 2 and the
  geo-replication layer both require FIFO channels).  With jittered latency
  models, FIFO is enforced by never delivering a message earlier than the
  previous one on the same (src, dst) link.
* **Configurable loss** — globally or per link — used to exercise the
  at-least-once / prefix-property machinery of fault-tolerant Eunomia.
* **Partitions** — pairs (or whole processes) can be disconnected and later
  reconnected, for failure-injection experiments.

Delivery goes through the destination's service queue
(:meth:`repro.sim.process.Process.deliver`), so a message to an overloaded
server queues behind its backlog — the effect underlying every throughput
result in the paper.
"""

from __future__ import annotations

from typing import Any, Optional

from .env import Environment
from .latency import ConstantLatency, LatencyModel
from .process import Process

__all__ = ["Network"]


class Network:
    """Point-to-point network with FIFO links, loss, and partitions."""

    def __init__(self, env: Environment, latency: Optional[LatencyModel] = None,
                 loss_rate: float = 0.0):
        self.env = env
        self.latency = latency or ConstantLatency()
        self.loss_rate = loss_rate
        self._rng = env.rng.stream("network")
        self._last_delivery: dict[tuple[int, int], float] = {}
        self._link_loss: dict[tuple[int, int], float] = {}
        self._link_extra_delay: dict[tuple[int, int], float] = {}
        self._blocked: set[tuple[int, int]] = set()
        self._processes: dict[int, Process] = {}
        self.messages_sent = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        env.network = self

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, process: Process) -> None:
        self._processes[process.pid] = process

    def processes(self) -> list[Process]:
        return list(self._processes.values())

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def set_link_loss(self, src: Process, dst: Process, rate: float) -> None:
        """Set a loss probability for the directed link src→dst."""
        self._link_loss[(src.pid, dst.pid)] = rate

    def set_link_extra_delay(self, src: Process, dst: Process,
                             extra_s: float) -> None:
        """Add fixed delay on the directed link src→dst (0 restores normal).

        Used to model degraded paths, e.g. a partition whose connection to
        its local sequencer straggles (Figure 7's sequencer comparison).
        """
        if extra_s:
            self._link_extra_delay[(src.pid, dst.pid)] = extra_s
        else:
            self._link_extra_delay.pop((src.pid, dst.pid), None)

    def disconnect(self, src: Process, dst: Process, both_ways: bool = True) -> None:
        self._blocked.add((src.pid, dst.pid))
        if both_ways:
            self._blocked.add((dst.pid, src.pid))

    def reconnect(self, src: Process, dst: Process, both_ways: bool = True) -> None:
        self._blocked.discard((src.pid, dst.pid))
        if both_ways:
            self._blocked.discard((dst.pid, src.pid))

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, src: Process, dst: Process, msg: Any) -> None:
        """Transmit ``msg``; it is delivered after the modelled latency.

        Messages from/to crashed processes and across partitioned links are
        silently dropped (crash-stop model).  Lost messages count in
        ``messages_dropped``.

        This is the per-message hot path (every protocol message in every
        experiment funnels through it), so the lookups it repeats are
        hoisted into locals and the fault-injection tables — empty in the
        common non-faulty run — are tested for emptiness before being
        probed.
        """
        self.messages_sent += 1
        self.bytes_sent += getattr(msg, "size_bytes", 0)
        key = (src.pid, dst.pid)
        if src.crashed or (self._blocked and key in self._blocked):
            self.messages_dropped += 1
            return
        rate = (self._link_loss.get(key, self.loss_rate)
                if self._link_loss else self.loss_rate)
        if rate > 0.0 and self._rng.random() < rate:
            self.messages_dropped += 1
            return
        loop = self.env.loop
        delay = self.latency.delay(src, dst, self._rng)
        if self._link_extra_delay:
            delay += self._link_extra_delay.get(key, 0.0)
        deliver_at = loop.now + delay
        # FIFO per directed link: never overtake the previous delivery.
        last = self._last_delivery
        previous = last.get(key)
        if previous is not None and deliver_at < previous:
            deliver_at = previous
        last[key] = deliver_at
        loop.schedule_at(deliver_at, dst.deliver, msg, src)
