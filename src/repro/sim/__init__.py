"""Discrete-event simulation substrate.

The paper evaluates Eunomia on a 20-machine private cloud with netem-emulated
WAN latencies.  This package is the laptop-scale stand-in: a deterministic
discrete-event simulator with

* an event loop (:mod:`repro.sim.loop`),
* processes that consume modelled CPU time per message
  (:mod:`repro.sim.process`),
* a FIFO network driven by latency models, including the paper's exact
  3-datacenter RTT matrix (:mod:`repro.sim.network`,
  :mod:`repro.sim.latency`),
* failure and straggler injection (:mod:`repro.sim.failure`), and
* named, reproducible RNG streams (:mod:`repro.sim.rng`).
"""

from .disk import DiskModel
from .env import DEFAULT_SCHEDULER, SCHEDULER_BACKENDS, Environment
from .failure import FailureSchedule, Straggler
from .latency import (
    PAPER_RTT_MS,
    ConstantLatency,
    JitteredLatency,
    LatencyModel,
    RttMatrix,
    paper_topology,
)
from .loop import (
    Event,
    EventLoop,
    PeriodicHandle,
    SimulationError,
    TimeWheelLoop,
)
from .network import Network
from .process import CostModel, PeriodicTask, Process
from .rng import RngRegistry

__all__ = [
    "DiskModel",
    "Environment",
    "Event",
    "EventLoop",
    "TimeWheelLoop",
    "PeriodicHandle",
    "SimulationError",
    "SCHEDULER_BACKENDS",
    "DEFAULT_SCHEDULER",
    "Network",
    "Process",
    "CostModel",
    "PeriodicTask",
    "RngRegistry",
    "LatencyModel",
    "ConstantLatency",
    "JitteredLatency",
    "RttMatrix",
    "PAPER_RTT_MS",
    "paper_topology",
    "FailureSchedule",
    "Straggler",
]
