"""Failure & anomaly injection schedules.

Experiments in the paper inject two kinds of trouble:

* **Crashes** of Eunomia replicas (Figure 4): a replica stops at a given
  instant; surviving replicas elect a new leader and resume stabilization.
* **Stragglers** (Figure 7): one partition contacts its local Eunomia less
  frequently (every 10 / 100 / 1000 ms instead of every millisecond) during a
  window, then heals.

:class:`FailureSchedule` is a declarative list of such actions bound to an
environment; the harness figures build their timelines with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .env import Environment
from .process import Process

__all__ = ["FailureSchedule", "Straggler"]


@dataclass
class _Action:
    time: float
    fn: Callable[[], Any]
    label: str


class FailureSchedule:
    """Declarative, time-ordered fault injection for one environment."""

    def __init__(self, env: Environment):
        self.env = env
        self._actions: list[_Action] = []
        self.log: list[tuple[float, str]] = []

    def crash_at(self, time: float, process: Process) -> "FailureSchedule":
        """Crash-stop ``process`` at absolute simulation time ``time``."""
        return self.at(time, process.crash, f"crash {process.name}")

    def recover_at(self, time: float, process: Process) -> "FailureSchedule":
        """Recover ``process`` at absolute simulation time ``time``."""
        return self.at(time, process.recover, f"recover {process.name}")

    def at(self, time: float, fn: Callable[[], Any], label: str = "") -> "FailureSchedule":
        """Run an arbitrary action at ``time`` (builder style, returns self)."""
        self._actions.append(_Action(time, fn, label or getattr(fn, "__name__", "action")))
        return self

    def arm(self) -> None:
        """Schedule every recorded action on the event loop."""
        for action in self._actions:
            def fire(a: _Action = action) -> None:
                self.log.append((self.env.now, a.label))
                a.fn()
            self.env.loop.schedule_at(action.time, fire)


@dataclass
class Straggler:
    """A window during which one partition's Eunomia-contact interval grows.

    ``apply`` retargets any object exposing a mutable ``batch_interval``
    attribute (Eunomia-aware partitions do).  The original interval is
    restored when the window closes.
    """

    partition: Any
    start: float
    end: float
    straggle_interval: float
    _saved: float = field(default=0.0, init=False)

    def arm(self, schedule: FailureSchedule) -> None:
        def begin() -> None:
            self._saved = self.partition.batch_interval
            self.partition.batch_interval = self.straggle_interval

        def heal() -> None:
            self.partition.batch_interval = self._saved

        schedule.at(self.start, begin, f"straggle {self.partition.name} "
                                       f"@{self.straggle_interval * 1e3:.0f}ms")
        schedule.at(self.end, heal, f"heal {self.partition.name}")
