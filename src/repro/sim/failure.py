"""Failure & anomaly injection schedules.

Experiments in the paper inject two kinds of trouble:

* **Crashes** of Eunomia replicas (Figure 4): a replica stops at a given
  instant; surviving replicas elect a new leader and resume stabilization.
* **Stragglers** (Figure 7): one partition contacts its local Eunomia less
  frequently (every 10 / 100 / 1000 ms instead of every millisecond) during a
  window, then heals.

:class:`FailureSchedule` is a declarative list of such actions bound to an
environment; the harness figures build their timelines with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .env import Environment
from .process import Process

__all__ = ["FailureSchedule", "Straggler"]


@dataclass
class _Action:
    time: float
    fn: Callable[[], Any]
    label: str
    armed: bool = False


class FailureSchedule:
    """Declarative, time-ordered fault injection for one environment."""

    def __init__(self, env: Environment):
        self.env = env
        self._actions: list[_Action] = []
        self._armed = False
        self.log: list[tuple[float, str]] = []

    def crash_at(self, time: float, process: Process,
                 lose_state: bool = False) -> "FailureSchedule":
        """Crash-stop ``process`` at absolute simulation time ``time``.

        ``lose_state=True`` makes it an amnesia crash: volatile protocol
        state is wiped and only durable media (WAL, checkpoints) survive.
        """
        label = ("amnesia-crash " if lose_state else "crash ") + process.name
        return self.at(time, lambda: process.crash(lose_state=lose_state),
                       label)

    def recover_at(self, time: float, process: Process) -> "FailureSchedule":
        """Recover ``process`` at absolute simulation time ``time``."""
        return self.at(time, process.recover, f"recover {process.name}")

    # ------------------------------------------------------------------
    # Partial-group failures: one shard of a sharded replica group
    # ------------------------------------------------------------------
    def crash_shard_at(self, time: float, group, shard_id: int,
                       lose_state: bool = False) -> "FailureSchedule":
        """Crash one :class:`~repro.core.shard.EunomiaShard` of ``group``.

        A partial-group failure: the group's coordinator stays up, so no
        failover is triggered — the dead shard simply stops announcing its
        ShardStableTime and the coordinator's ``min(shards)`` (and with it
        the whole site's stable output) stalls until the shard rejoins.
        """
        label = (("amnesia-crash " if lose_state else "crash ")
                 + f"{group.name} shard {shard_id}")
        return self.at(time,
                       lambda: group.crash_shard(shard_id,
                                                 lose_state=lose_state),
                       label)

    def recover_shard_at(self, time: float, group,
                         shard_id: int) -> "FailureSchedule":
        """Rejoin one crashed shard of ``group`` (durable restore if the
        crash was an amnesia crash)."""
        return self.at(time, lambda: group.recover_shard(shard_id),
                       f"recover {group.name} shard {shard_id}")

    def at(self, time: float, fn: Callable[[], Any], label: str = "") -> "FailureSchedule":
        """Run an arbitrary action at ``time`` (builder style, returns self).

        Actions added after :meth:`arm` are scheduled immediately, so a
        schedule can keep growing mid-run; a late addition whose time is
        already in the past fails loudly (the event loop rejects it)
        rather than silently never firing.
        """
        action = _Action(time, fn,
                         label or getattr(fn, "__name__", "action"))
        self._actions.append(action)
        if self._armed:
            self._schedule(action)
        return self

    def _schedule(self, action: _Action) -> None:
        action.armed = True

        def fire() -> None:
            self.log.append((self.env.now, action.label))
            action.fn()

        self.env.loop.schedule_at(action.time, fire)

    def arm(self) -> None:
        """Schedule every recorded action on the event loop (idempotent:
        re-arming schedules only actions not yet armed)."""
        self._armed = True
        for action in self._actions:
            if not action.armed:
                self._schedule(action)


@dataclass
class Straggler:
    """A window during which one partition's Eunomia-contact interval grows.

    ``apply`` retargets any object exposing a mutable ``batch_interval``
    attribute (Eunomia-aware partitions do).  The original interval is
    restored when the window closes.
    """

    partition: Any
    start: float
    end: float
    straggle_interval: float
    _saved: float = field(default=0.0, init=False)

    def arm(self, schedule: FailureSchedule) -> None:
        def begin() -> None:
            self._saved = self.partition.batch_interval
            self.partition.batch_interval = self.straggle_interval

        def heal() -> None:
            self.partition.batch_interval = self._saved

        schedule.at(self.start, begin, f"straggle {self.partition.name} "
                                       f"@{self.straggle_interval * 1e3:.0f}ms")
        schedule.at(self.end, heal, f"heal {self.partition.name}")
