"""Failure & anomaly injection schedules — the fault-space DSL.

Experiments in the paper inject two kinds of trouble:

* **Crashes** of Eunomia replicas (Figure 4): a replica stops at a given
  instant; surviving replicas elect a new leader and resume stabilization.
* **Stragglers** (Figure 7): one partition contacts its local Eunomia less
  frequently (every 10 / 100 / 1000 ms instead of every millisecond) during a
  window, then heals.

The chaos matrix (``harness/chaos.py``) needs a much wider fault space, so
:class:`FailureSchedule` is a declarative DSL over every injectable fault
class the simulator knows:

* crash / amnesia-crash / recover of processes, shards, and replica groups;
* **network partitions** over node *sets* (:meth:`partition_at` /
  :meth:`heal_at`), including asymmetric reachability (``symmetric=False``
  blocks one direction only — the split-brain shape Ω failure detectors
  must survive);
* **gray links** — slow-not-dead paths via per-link extra delay sweeps
  (:meth:`degrade_links_at` / :meth:`restore_links_at`);
* **gray disks** — a degraded-latency :class:`repro.sim.disk.DiskModel`
  mode (:meth:`degrade_disk_at`), so WAL group commits stall without dying;
* **disk faults** — injected fsync errors and torn-tail truncation of a
  :class:`repro.durability.wal.WriteAheadLog`
  (:meth:`wal_fail_fsyncs_at` / :meth:`wal_tear_tail_at`);
* **clock trouble** — drift-rate changes and phase steps on a
  :class:`repro.clocks.physical.PhysicalClock` (:meth:`clock_drift_at`) and
  NTP outages (:meth:`ntp_outage`), the headline hybrid-vs-physical axis.

Every action appends ``(time, label)`` to :attr:`FailureSchedule.log` when
it fires, so a schedule's observable timeline is comparable across runs
(and across scheduler backends — the log is deterministic for a fixed seed
and schedule).

All injection state lives in tables the hot paths test for emptiness
(``Network``) or neutral defaults (``DiskModel``), so an un-armed schedule
costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from .env import Environment
from .process import Process

__all__ = ["FailureSchedule", "Straggler"]


@dataclass
class _Action:
    time: float
    fn: Callable[[], Any]
    label: str
    armed: bool = False


class FailureSchedule:
    """Declarative, time-ordered fault injection for one environment."""

    def __init__(self, env: Environment):
        self.env = env
        self._actions: list[_Action] = []
        self._armed = False
        self.log: list[tuple[float, str]] = []

    def crash_at(self, time: float, process: Process,
                 lose_state: bool = False) -> "FailureSchedule":
        """Crash-stop ``process`` at absolute simulation time ``time``.

        ``lose_state=True`` makes it an amnesia crash: volatile protocol
        state is wiped and only durable media (WAL, checkpoints) survive.
        """
        label = ("amnesia-crash " if lose_state else "crash ") + process.name
        return self.at(time, lambda: process.crash(lose_state=lose_state),
                       label)

    def recover_at(self, time: float, process: Process) -> "FailureSchedule":
        """Recover ``process`` at absolute simulation time ``time``."""
        return self.at(time, process.recover, f"recover {process.name}")

    # ------------------------------------------------------------------
    # Partial-group failures: one shard of a sharded replica group
    # ------------------------------------------------------------------
    def crash_shard_at(self, time: float, group, shard_id: int,
                       lose_state: bool = False) -> "FailureSchedule":
        """Crash one :class:`~repro.core.shard.EunomiaShard` of ``group``.

        A partial-group failure: the group's coordinator stays up, so no
        failover is triggered — the dead shard simply stops announcing its
        ShardStableTime and the coordinator's ``min(shards)`` (and with it
        the whole site's stable output) stalls until the shard rejoins.
        """
        label = (("amnesia-crash " if lose_state else "crash ")
                 + f"{group.name} shard {shard_id}")
        return self.at(time,
                       lambda: group.crash_shard(shard_id,
                                                 lose_state=lose_state),
                       label)

    def recover_shard_at(self, time: float, group,
                         shard_id: int) -> "FailureSchedule":
        """Rejoin one crashed shard of ``group`` (durable restore if the
        crash was an amnesia crash)."""
        return self.at(time, lambda: group.recover_shard(shard_id),
                       f"recover {group.name} shard {shard_id}")

    # ------------------------------------------------------------------
    # Network partitions & gray links
    # ------------------------------------------------------------------
    def partition_at(self, time: float, group_a: Iterable[Process],
                     group_b: Iterable[Process],
                     symmetric: bool = True) -> "FailureSchedule":
        """Partition two node sets: block every ``a → b`` link (and ``b → a``
        when ``symmetric``).

        ``symmetric=False`` models *asymmetric reachability* — ``a`` can
        still hear ``b`` but not the reverse — the regime where Ω-style
        failure detectors split-brain (each side suspects the other while
        still receiving its traffic, or vice versa).
        """
        a, b = list(group_a), list(group_b)
        arrow = "<->" if symmetric else "->"
        label = (f"partition {_group_label(a)} {arrow} {_group_label(b)}")
        return self.at(
            time, lambda: self.env.network.partition(a, b,
                                                     symmetric=symmetric),
            label)

    def heal_at(self, time: float, group_a: Iterable[Process],
                group_b: Iterable[Process]) -> "FailureSchedule":
        """Heal a partition: restore both directions between the node sets
        (idempotent; heals asymmetric partitions too)."""
        a, b = list(group_a), list(group_b)
        label = f"heal {_group_label(a)} <-> {_group_label(b)}"
        return self.at(time, lambda: self.env.network.heal(a, b), label)

    def degrade_links_at(self, time: float,
                         pairs: Iterable[tuple[Process, Process]],
                         extra_s: float) -> "FailureSchedule":
        """Gray links: add ``extra_s`` of one-way delay on each directed
        ``(src, dst)`` pair — slow-not-dead, so FIFO and delivery are
        preserved but every protocol timeout built on these paths stretches.
        """
        pairs = [tuple(p) for p in pairs]
        label = f"gray-links +{extra_s * 1e3:.1f}ms x{len(pairs)}"

        def apply() -> None:
            for src, dst in pairs:
                self.env.network.set_link_extra_delay(src, dst, extra_s)

        return self.at(time, apply, label)

    def restore_links_at(self, time: float,
                         pairs: Iterable[tuple[Process, Process]],
                         ) -> "FailureSchedule":
        """End a gray-link window: remove the extra delay on each pair."""
        pairs = [tuple(p) for p in pairs]
        label = f"heal-links x{len(pairs)}"

        def apply() -> None:
            for src, dst in pairs:
                self.env.network.set_link_extra_delay(src, dst, 0.0)

        return self.at(time, apply, label)

    # ------------------------------------------------------------------
    # Gray disks & WAL faults
    # ------------------------------------------------------------------
    def degrade_disk_at(self, time: float, disk,
                        factor: float) -> "FailureSchedule":
        """Gray disk: multiply every fsync's cost by ``factor`` (≥ 1) —
        group commits stall without failing, the slow-not-dead device."""
        return self.at(time, lambda: disk.degrade(factor),
                       f"gray-disk x{factor:g}")

    def restore_disk_at(self, time: float, disk) -> "FailureSchedule":
        """End a gray-disk window: restore normal fsync latency."""
        return self.at(time, lambda: disk.degrade(1.0), "heal-disk")

    def wal_fail_fsyncs_at(self, time: float, wal,
                           count: int) -> "FailureSchedule":
        """Make the next ``count`` WAL commits fail (fsync errors).

        Staged records stay volatile across a failed commit; ack-after-fsync
        stabilizers must *not* acknowledge and instead retry with backoff
        (see :meth:`repro.core.service.StabilizerBase._commit_and_ack`).
        """
        return self.at(time, lambda: wal.fail_fsyncs(count),
                       f"fsync-fail {wal.name} x{count}")

    def wal_tear_tail_at(self, time: float, wal,
                         records: int) -> "FailureSchedule":
        """Torn write: drop up to ``records`` records off the durable tail.

        Models a torn tail discovered when the log is re-opened, so it is
        meant to fire together with (right after) an amnesia crash of the
        WAL's owner; recovery replays the surviving prefix (validated for
        per-origin monotonicity) and the at-least-once uplink / peer state
        transfer re-covers the torn suffix.
        """
        return self.at(time, lambda: wal.tear_tail(records),
                       f"torn-tail {wal.name} x{records}")

    # ------------------------------------------------------------------
    # Clock trouble
    # ------------------------------------------------------------------
    def clock_drift_at(self, time: float, clock, drift_ppm: float,
                       step_us: float = 0.0,
                       label: str = "") -> "FailureSchedule":
        """Re-rate a physical clock mid-run (and optionally step its phase).

        The drift change is continuous (no retroactive jump —
        :meth:`repro.clocks.physical.PhysicalClock.set_drift` rebases the
        offset); a positive ``step_us`` additionally steps the phase
        forward.  Backward steps are absorbed by the monotone read clamp.
        """
        def apply() -> None:
            clock.set_drift(drift_ppm)
            if step_us:
                clock.step_us(step_us)

        return self.at(time, apply,
                       label or f"clock-drift {drift_ppm:g}ppm"
                       + (f" step {step_us:g}us" if step_us else ""))

    def ntp_outage(self, start: float, end: float, ntp) -> "FailureSchedule":
        """Suspend NTP discipline during ``[start, end)``: clock offsets
        re-grow at each clock's full drift rate, unbounded, until the
        synchronizer resumes — the paper's hybrid-vs-physical stress axis.
        """
        self.at(start, ntp.suspend, "ntp-outage begin")
        self.at(end, ntp.resume, "ntp-outage end")
        return self

    def at(self, time: float, fn: Callable[[], Any], label: str = "") -> "FailureSchedule":
        """Run an arbitrary action at ``time`` (builder style, returns self).

        Actions added after :meth:`arm` are scheduled immediately, so a
        schedule can keep growing mid-run; a late addition whose time is
        already in the past fails loudly (the event loop rejects it)
        rather than silently never firing.
        """
        action = _Action(time, fn,
                         label or getattr(fn, "__name__", "action"))
        self._actions.append(action)
        if self._armed:
            self._schedule(action)
        return self

    def _schedule(self, action: _Action) -> None:
        action.armed = True

        def fire() -> None:
            self.log.append((self.env.now, action.label))
            action.fn()

        self.env.loop.schedule_at(action.time, fire)

    def arm(self) -> None:
        """Schedule every recorded action on the event loop (idempotent:
        re-arming schedules only actions not yet armed)."""
        self._armed = True
        for action in self._actions:
            if not action.armed:
                self._schedule(action)


def _group_label(procs: list) -> str:
    """Compact node-set label for partition log lines."""
    if len(procs) == 1:
        return procs[0].name
    return "{" + ",".join(p.name for p in procs[:3]) + (
        ",…" if len(procs) > 3 else "") + "}"


@dataclass
class Straggler:
    """A window during which one partition's Eunomia-contact interval grows.

    ``arm`` retargets any object exposing a mutable ``batch_interval``
    attribute (Eunomia-aware partitions do).  The original interval is
    restored when the window closes.

    ``begin``/``heal`` are idempotent and safe against crash/recover
    interleavings: the pre-straggle interval is saved only on the first
    ``begin`` of a window (a repeated ``begin`` can never clobber the saved
    value with the straggle interval), and ``heal`` restores only when a
    window is actually open — so a partition that amnesia-crashes and
    recovers mid-window (re-initializing ``batch_interval`` on its own)
    cannot have a stale pre-crash interval forced back over it by a
    ``heal`` firing after an already-healed window.
    """

    partition: Any
    start: float
    end: float
    straggle_interval: float
    _saved: Optional[float] = field(default=None, init=False)

    def begin(self) -> None:
        if self._saved is None:
            self._saved = self.partition.batch_interval
        self.partition.batch_interval = self.straggle_interval

    def heal(self) -> None:
        if self._saved is None:
            return
        self.partition.batch_interval = self._saved
        self._saved = None

    def arm(self, schedule: FailureSchedule) -> None:
        schedule.at(self.start, self.begin,
                    f"straggle {self.partition.name} "
                    f"@{self.straggle_interval * 1e3:.0f}ms")
        schedule.at(self.end, self.heal, f"heal {self.partition.name}")
