"""Disk latency model for durable state (write-ahead logs, checkpoints).

The simulator charges CPU through per-process service lanes
(:mod:`repro.sim.process`); durable writes need the same treatment for the
*storage* device, or an fsync would be free and durability would look like a
no-cost switch.  :class:`DiskModel` is the shared cost model: an fsync pays a
fixed device latency (the flush barrier) plus a sequential-bandwidth term for
the bytes written since the last flush — the classic group-commit shape,
where many staged records share one barrier.  Recovery replay pays a small
per-record cost (decode + re-apply), which is what makes long un-truncated
logs *visibly* expensive to restart from and checkpoint truncation worth its
write cost.

Processes charge these costs on a dedicated ``"disk"`` lane, so log flushes
contend with each other (one device) but not with protocol CPU — matching a
real deployment where the WAL lives on its own NVMe queue and only the
*acknowledgement* of a batch waits for the fsync, not the ingest path.
"""

from __future__ import annotations

__all__ = ["DiskModel"]


class DiskModel:
    """Fsync/replay cost model, in seconds (one device per process)."""

    __slots__ = ("fsync_latency_s", "byte_time_s", "replay_record_s",
                 "_slowdown")

    def __init__(self, fsync_latency_s: float = 30e-6,
                 byte_time_s: float = 1e-9,
                 replay_record_s: float = 0.5e-6):
        self.fsync_latency_s = fsync_latency_s
        self.byte_time_s = byte_time_s
        self.replay_record_s = replay_record_s
        self._slowdown = 1.0

    def degrade(self, factor: float) -> None:
        """Enter (or leave, with ``factor=1.0``) gray-failure mode.

        Every subsequent fsync costs ``factor``× its normal time: the device
        is slow-not-dead, so WAL group commits stall — and with them every
        ack-after-fsync acknowledgement — without any crash a failure
        detector could see.  Idempotent; the factor replaces (not stacks
        with) any previous degradation.
        """
        if factor < 1.0:
            raise ValueError("degradation factor must be >= 1.0")
        self._slowdown = factor

    @classmethod
    def from_calibration(cls, cal) -> "DiskModel":
        """Build from :class:`repro.calibration.Calibration` overheads."""
        return cls(
            fsync_latency_s=cal.overhead("wal_fsync"),
            byte_time_s=cal.overhead("wal_byte"),
            replay_record_s=cal.overhead("wal_replay_record"),
        )

    def fsync_cost(self, n_bytes: int) -> float:
        """One flush barrier covering ``n_bytes`` of staged log records."""
        cost = self.fsync_latency_s + n_bytes * self.byte_time_s
        if self._slowdown != 1.0:
            cost *= self._slowdown
        return cost

    def replay_cost(self, n_records: int) -> float:
        """Sequential re-read + re-apply of ``n_records`` log records."""
        return n_records * self.replay_record_s
