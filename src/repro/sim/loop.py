"""Deterministic discrete-event loop.

This is the heart of the simulation substrate.  Every other component
(processes, network links, clocks, failure injectors) schedules callbacks on a
single :class:`EventLoop`.  The loop is deterministic: events fire in
``(time, sequence-number)`` order, where the sequence number is the order in
which events were scheduled.  Two runs with the same seed therefore produce
bit-identical histories, which the test suite and the causal-consistency
checker rely on.

Time is a ``float`` measured in **seconds** since the start of the run.
Protocol-level timestamps, by contrast, are integers in microseconds (see
:mod:`repro.clocks`); the two are related through per-process clock models so
that clock drift can be simulated.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional, Union

__all__ = ["Event", "EventLoop", "PeriodicHandle", "SimulationError",
           "TimeWheelLoop"]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the event loop (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`EventLoop.schedule` and can be used to
    cancel the callback before it fires.  Cancelled events stay in the heap
    but are skipped when popped (lazy deletion), which keeps cancellation
    O(1).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_loop")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any],
                 args: tuple, loop: "Optional[EventLoop]" = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._loop = loop

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; a no-op after firing.

        The loop detaches itself when the event fires, so a late cancel
        (e.g. a timeout cancelled after it already went off) cannot skew
        the loop's live-event counter.
        """
        if not self.cancelled:
            self.cancelled = True
            if self._loop is not None:
                self._loop._pending -= 1
                self._loop = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} seq={self.seq} {name} {state}>"


class PeriodicHandle:
    """Cancellable handle for a repeating callback.

    Returned by :meth:`EventLoop.schedule_periodic`.  The interval may be a
    number of seconds or a zero-argument callable returning one — re-read
    before every re-arm, so callers can change the period at runtime (the
    Figure 7 straggler injector mutates a host's batch interval this way).

    The callback is re-armed *after* it returns, never before: any events
    the callback schedules are sequenced ahead of the next firing, exactly
    like the hand-rolled ``fn(); loop.schedule(period, fire)`` chains this
    API replaces — which is what keeps golden histories bit-identical.
    """

    __slots__ = ("interval", "fn", "cancelled", "_event")

    def __init__(self, interval: Union[float, Callable[[], float]],
                 fn: Callable[[], Any]):
        self.interval = interval
        self.fn = fn
        self.cancelled = False
        self._event: Optional[Event] = None

    def cancel(self) -> None:
        """Stop future firings.  Idempotent; safe from inside the callback."""
        if not self.cancelled:
            self.cancelled = True
            if self._event is not None:
                self._event.cancel()
                self._event = None

    @property
    def active(self) -> bool:
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<PeriodicHandle {name} {state}>"


class EventLoop:
    """A priority-queue driven simulation clock.

    Example
    -------
    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.schedule(1.5, fired.append, "a")
    >>> _ = loop.schedule(0.5, fired.append, "b")
    >>> loop.run()
    >>> fired
    ['b', 'a']
    >>> loop.now
    1.5
    """

    def __init__(self) -> None:
        #: heap of ``(time, seq, event)`` entries: heapq then compares
        #: plain tuples at C speed, and ``seq`` is unique so comparison
        #: never falls through to the event object — this removes the
        #: millions of ``Event.__lt__`` interpreter frames that used to
        #: dominate paper-scale runs.  Firing order is unchanged: it is
        #: the same ``(time, seq)`` total order.
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._now: float = 0.0
        self._running = False
        self._processed = 0
        self._pending = 0     # live (scheduled, not cancelled, not fired)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events that have fired so far (cancelled ones excluded)."""
        return self._processed

    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events.

        O(1): a live counter maintained on schedule/cancel/pop, so monitors
        can poll it every tick without scanning the heap.
        """
        return self._pending

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, already at t={self._now!r}"
            )
        event = Event(time, next(self._seq), fn, args, self)
        heapq.heappush(self._heap, (time, event.seq, event))
        self._pending += 1
        return event

    def schedule_periodic(self, interval: Union[float, Callable[[], float]],
                          fn: Callable[[], Any],
                          phase: Optional[float] = None) -> PeriodicHandle:
        """Run ``fn()`` every ``interval`` seconds; returns a cancellable
        :class:`PeriodicHandle`.

        ``interval`` may be a callable, re-evaluated at every re-arm.
        ``phase`` delays the first firing (defaults to one full interval).
        The handle re-arms *after* ``fn`` returns (even if it raises), and
        stops as soon as :meth:`PeriodicHandle.cancel` is called — including
        from inside ``fn`` itself.
        """
        handle = PeriodicHandle(interval, fn)

        def fire() -> None:
            handle._event = None
            try:
                fn()
            finally:
                if not handle.cancelled:
                    step = handle.interval
                    if callable(step):
                        step = step()
                    handle._event = self.schedule(step, fire)

        first = phase
        if first is None:
            first = interval() if callable(interval) else interval
        handle._event = self.schedule(first, fire)
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False if none remain."""
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            event = heappop(heap)[2]
            if event.cancelled:
                continue
            self._pending -= 1
            event._loop = None    # fired: a late cancel() must not decrement
            self._now = event.time
            self._processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or ``max_events`` fire.

        When ``until`` is given the loop's clock is advanced to exactly
        ``until`` even if the last event fired earlier, so back-to-back
        ``run(until=...)`` calls behave like contiguous wall-clock windows.
        """
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        # Hot loop: this drains millions of events per experiment.  The heap
        # list and heappop are hoisted into locals (callbacks push onto the
        # same list object, so the alias stays valid); ``self._now`` and the
        # counters must stay instance state — callbacks read ``loop.now``,
        # ``pending()`` and ``processed_events`` mid-drain.
        heap = self._heap
        heappop = heapq.heappop
        unbounded = until is None and max_events is None
        fired = 0
        try:
            while heap:
                event = heap[0][2]
                if event.cancelled:
                    heappop(heap)
                    continue
                if not unbounded:
                    if until is not None and event.time > until:
                        break
                    if max_events is not None and fired >= max_events:
                        break
                    fired += 1
                heappop(heap)
                self._pending -= 1
                event._loop = None    # fired: late cancel() must not decrement
                self._now = event.time
                self._processed += 1
                event.fn(*event.args)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until


class TimeWheelLoop(EventLoop):
    """Slotted time-wheel scheduler: same semantics, batch-friendly layout.

    Experiment schedules are dominated by short-horizon events (periodic
    stabilizer/GST/gossip ticks, service-queue completions, intra-DC
    deliveries), so instead of one global heap this backend hashes events
    into fixed-width time slots: ``slot = floor(time / resolution)``, a ring
    of ``wheel_slots`` buckets covering ``resolution * wheel_slots`` seconds
    of horizon.  Each bucket is a *small* heap (a few events), so pushes and
    pops touch O(log bucket) elements instead of O(log total).  Events
    beyond the horizon overflow into an auxiliary heap and migrate into the
    ring as the cursor sweeps forward.

    Firing order is exactly the base loop's ``(time, seq)`` total order:
    buckets partition the time axis, and within a bucket the heap compares
    the same ``(time, seq, event)`` entries as the base loop — the property test in
    ``tests/test_sim_batching.py`` drives arbitrary one-shot/periodic/
    cancelled mixes through both backends and asserts identical histories.
    The heap backend stays the reference implementation and the default
    (``Environment(scheduler="heap")``).
    """

    def __init__(self, resolution: float = 1e-3,
                 wheel_slots: int = 4096) -> None:
        super().__init__()
        if resolution <= 0.0:
            raise SimulationError("wheel resolution must be positive")
        if wheel_slots < 2:
            raise SimulationError("wheel needs at least two slots")
        self._res = resolution
        self._n = wheel_slots
        #: buckets and overflow hold the same ``(time, seq, event)``
        #: entries as the base loop's heap (C-level tuple comparisons).
        self._buckets: list[list[tuple]] = [[] for _ in range(wheel_slots)]
        self._overflow: list[tuple] = []     # events beyond the horizon
        self._cursor = 0                     # absolute slot index being drained
        self._wheel_count = 0                # events (incl. cancelled) in ring

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, already at t={self._now!r}"
            )
        event = Event(time, next(self._seq), fn, args, self)
        self._insert(event)
        self._pending += 1
        return event

    def _insert(self, event: Event) -> None:
        idx = int(event.time / self._res)
        entry = (event.time, event.seq, event)
        if idx - self._cursor < self._n:
            heapq.heappush(self._buckets[idx % self._n], entry)
            self._wheel_count += 1
        else:
            heapq.heappush(self._overflow, entry)

    def _migrate(self) -> None:
        """Pull overflow events that now fall inside the ring's horizon."""
        overflow = self._overflow
        if not overflow:
            return
        res, n = self._res, self._n
        horizon = self._cursor + n
        while overflow and int(overflow[0][0] / res) < horizon:
            entry = heapq.heappop(overflow)
            heapq.heappush(self._buckets[int(entry[0] / res) % n], entry)
            self._wheel_count += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _pop_next(self) -> Optional[Event]:
        """Next live event in ``(time, seq)`` order, or None when drained.

        Within a drain the cursor only moves forward, so the empty-slot
        scan is amortized over simulated time; when the ring is empty it
        jumps straight to the overflow head's slot instead of sweeping.

        Invariant on return: whenever control goes back to user code the
        cursor sits at or before ``now``'s slot, because anything scheduled
        next only promises ``time >= now`` — a cursor left ahead (by the
        overflow jump or by sweeping past cancelled events) would strand
        such events in already-swept buckets, firing them a whole lap late.
        Returning an event restores it naturally (``now`` becomes the
        event's time, whose slot is exactly the cursor); the drained path
        rewinds explicitly (the ring and overflow are both empty, so there
        is nothing to re-bucket); :meth:`_push_back` handles the third exit.
        """
        buckets, n = self._buckets, self._n
        while self._wheel_count or self._overflow:
            if not self._wheel_count:
                self._cursor = int(self._overflow[0][0] / self._res)
                self._migrate()
                continue
            bucket = buckets[self._cursor % n]
            while bucket:
                event = heapq.heappop(bucket)[2]
                self._wheel_count -= 1
                if event.cancelled:
                    continue
                self._pending -= 1
                event._loop = None  # fired: late cancel() must not decrement
                return event
            self._cursor += 1
            self._migrate()
        self._cursor = int(self._now / self._res)
        return None

    def _push_back(self, event: Event) -> None:
        """Undo a pop (the event was past an ``until`` boundary).

        :meth:`_pop_next` may have left the cursor beyond ``now``'s slot —
        via the empty-ring overflow jump, or by sweeping empty/cancelled
        buckets on its way to this event.  Rewind it (see the invariant on
        :meth:`_pop_next`), spilling any ring events back to overflow
        since their buckets were hashed relative to the overshot cursor.
        """
        cursor_floor = int(self._now / self._res)
        if self._cursor > cursor_floor:
            if self._wheel_count:
                overflow = self._overflow
                for bucket in self._buckets:
                    if bucket:
                        overflow.extend(bucket)
                        bucket.clear()
                heapq.heapify(overflow)
                self._wheel_count = 0
            self._cursor = cursor_floor
        event._loop = self
        self._pending += 1
        self._insert(event)

    def step(self) -> bool:
        event = self._pop_next()
        if event is None:
            return False
        self._now = event.time
        self._processed += 1
        event.fn(*event.args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        fired = 0
        try:
            while max_events is None or fired < max_events:
                event = self._pop_next()
                if event is None:
                    break
                if until is not None and event.time > until:
                    self._push_back(event)
                    break
                fired += 1
                self._now = event.time
                self._processed += 1
                event.fn(*event.args)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
            # Skip the empty-slot sweep up to ``until`` only when nothing is
            # pending: with live events still queued (push-back, max_events)
            # the cursor must stay behind their slots, and with an empty
            # ring the overflow jump makes the sweep free anyway.
            if not self._wheel_count and not self._overflow:
                self._cursor = int(self._now / self._res)
