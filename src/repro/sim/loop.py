"""Deterministic discrete-event loop.

This is the heart of the simulation substrate.  Every other component
(processes, network links, clocks, failure injectors) schedules callbacks on a
single :class:`EventLoop`.  The loop is deterministic: events fire in
``(time, sequence-number)`` order, where the sequence number is the order in
which events were scheduled.  Two runs with the same seed therefore produce
bit-identical histories, which the test suite and the causal-consistency
checker rely on.

Time is a ``float`` measured in **seconds** since the start of the run.
Protocol-level timestamps, by contrast, are integers in microseconds (see
:mod:`repro.clocks`); the two are related through per-process clock models so
that clock drift can be simulated.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

__all__ = ["Event", "EventLoop", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the event loop (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`EventLoop.schedule` and can be used to
    cancel the callback before it fires.  Cancelled events stay in the heap
    but are skipped when popped (lazy deletion), which keeps cancellation
    O(1).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_loop")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any],
                 args: tuple, loop: "Optional[EventLoop]" = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._loop = loop

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; a no-op after firing.

        The loop detaches itself when the event fires, so a late cancel
        (e.g. a timeout cancelled after it already went off) cannot skew
        the loop's live-event counter.
        """
        if not self.cancelled:
            self.cancelled = True
            if self._loop is not None:
                self._loop._pending -= 1
                self._loop = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} seq={self.seq} {name} {state}>"


class EventLoop:
    """A priority-queue driven simulation clock.

    Example
    -------
    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.schedule(1.5, fired.append, "a")
    >>> _ = loop.schedule(0.5, fired.append, "b")
    >>> loop.run()
    >>> fired
    ['b', 'a']
    >>> loop.now
    1.5
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now: float = 0.0
        self._running = False
        self._processed = 0
        self._pending = 0     # live (scheduled, not cancelled, not fired)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events that have fired so far (cancelled ones excluded)."""
        return self._processed

    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events.

        O(1): a live counter maintained on schedule/cancel/pop, so monitors
        can poll it every tick without scanning the heap.
        """
        return self._pending

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, already at t={self._now!r}"
            )
        event = Event(time, next(self._seq), fn, args, self)
        heapq.heappush(self._heap, event)
        self._pending += 1
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False if none remain."""
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            event = heappop(heap)
            if event.cancelled:
                continue
            self._pending -= 1
            event._loop = None    # fired: a late cancel() must not decrement
            self._now = event.time
            self._processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or ``max_events`` fire.

        When ``until`` is given the loop's clock is advanced to exactly
        ``until`` even if the last event fired earlier, so back-to-back
        ``run(until=...)`` calls behave like contiguous wall-clock windows.
        """
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        # Hot loop: this drains millions of events per experiment.  The heap
        # list and heappop are hoisted into locals (callbacks push onto the
        # same list object, so the alias stays valid); ``self._now`` and the
        # counters must stay instance state — callbacks read ``loop.now``,
        # ``pending()`` and ``processed_events`` mid-drain.
        heap = self._heap
        heappop = heapq.heappop
        unbounded = until is None and max_events is None
        fired = 0
        try:
            while heap:
                event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    continue
                if not unbounded:
                    if until is not None and event.time > until:
                        break
                    if max_events is not None and fired >= max_events:
                        break
                    fired += 1
                heappop(heap)
                self._pending -= 1
                event._loop = None    # fired: late cancel() must not decrement
                self._now = event.time
                self._processed += 1
                event.fn(*event.args)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
