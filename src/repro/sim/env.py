"""Simulation environment: the bundle every simulated component hangs off.

An :class:`Environment` owns the event loop and the root RNG registry, and —
once a :class:`repro.sim.network.Network` is attached — gives processes a way
to reach each other.  Builders (``repro.geo.system``, baselines, the harness)
create one Environment per experiment.
"""

from __future__ import annotations

from typing import Optional

from .loop import EventLoop, TimeWheelLoop
from .rng import RngRegistry

__all__ = ["Environment", "SCHEDULER_BACKENDS", "DEFAULT_SCHEDULER"]

#: Recognized event-scheduler strategy names (the ablation knob).
SCHEDULER_BACKENDS = ("heap", "wheel")

#: The binary heap is the reference backend and the default; ``"wheel"``
#: selects the slotted time-wheel (:class:`repro.sim.loop.TimeWheelLoop`),
#: which fires the identical ``(time, seq)`` order with cheaper slot-local
#: heaps — the backend the batched benchmarks run under.
DEFAULT_SCHEDULER = "heap"


class Environment:
    """Shared simulation state: event loop, RNG streams, network."""

    def __init__(self, seed: int = 0, scheduler: str = DEFAULT_SCHEDULER):
        if scheduler == "heap":
            self.loop = EventLoop()
        elif scheduler == "wheel":
            self.loop = TimeWheelLoop()
        else:
            raise ValueError(
                f"unknown scheduler backend {scheduler!r} (expected one of "
                f"{', '.join(SCHEDULER_BACKENDS)})"
            )
        self.scheduler = scheduler
        self.rng = RngRegistry(seed)
        self.network = None  # attached by Network.__init__
        self._next_pid = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.loop.now

    def now_us(self) -> int:
        """Current *true* simulation time in integer microseconds.

        Individual processes should normally read their own (possibly
        drifting) :class:`repro.clocks.physical.PhysicalClock` instead.
        """
        return int(round(self.loop.now * 1_000_000))

    def allocate_pid(self) -> int:
        """Hand out unique process ids (used for deterministic tie-breaks)."""
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def run(self, until: Optional[float] = None) -> None:
        """Run the simulation (see :meth:`repro.sim.loop.EventLoop.run`)."""
        self.loop.run(until=until)
