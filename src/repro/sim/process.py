"""Simulated processes with a single-server CPU service queue.

Modelling CPU time is what lets the simulator reproduce the paper's
throughput results: a traditional sequencer saturates because every client
update costs it a slice of service time on one core, while Eunomia's
off-critical-path handling is much cheaper per operation.  Each
:class:`Process` therefore owns a FIFO service queue: work (delivered
messages or periodic local tasks) is served one item at a time, each item
occupying the process for its *service cost* before its handler runs.

Handlers are discovered by naming convention: a message of class ``AddOp``
is dispatched to ``on_add_op(msg, src)``.  Unhandled messages raise, so
protocol typos fail loudly.

Work is scheduled on named **lanes**, each an independent single server
(defaulting to one lane, ``"cpu"``).  Storage partitions route remote-
replication work to a ``"replication"`` lane — modelling the background
scheduler threads real stores use — so geo-replication applies do not queue
behind foreground client operations.  Override :meth:`Process.lane_of` to
choose lanes per message.

Crash-stop failures are supported: :meth:`Process.crash` drops everything in
flight for the process and makes future deliveries no-ops until
:meth:`Process.recover`.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Optional

from .env import Environment

__all__ = ["CostModel", "Process", "PeriodicTask"]

_CAMEL_RE = re.compile(r"(?<!^)(?=[A-Z])")


def _snake(name: str) -> str:
    return _CAMEL_RE.sub("_", name).lower()


class CostModel:
    """Per-message-type CPU service costs, in seconds.

    ``costs`` maps message class names to seconds — or to a callable taking
    the message and returning seconds, for size-dependent work such as batch
    processing.  ``default`` applies to everything else.  ``per_byte`` adds a
    size-proportional component for messages that expose a ``size_bytes``
    attribute (used to charge Cure for its fatter vector metadata, for
    example).
    """

    __slots__ = ("costs", "default", "per_byte")

    def __init__(self, default: float = 0.0,
                 costs: Optional[dict[str, Any]] = None,
                 per_byte: float = 0.0):
        self.default = default
        self.costs = dict(costs or {})
        self.per_byte = per_byte

    def cost_of(self, msg: Any) -> float:
        base = self.costs.get(type(msg).__name__, self.default)
        if callable(base):
            base = base(msg)
        if self.per_byte:
            size = getattr(msg, "size_bytes", 0)
            base += size * self.per_byte
        return base


class PeriodicTask:
    """Handle for a repeating local task; ``stop()`` cancels future firings.

    A thin crash-aware veneer over the loop-level
    :class:`repro.sim.loop.PeriodicHandle`: ``period`` stays a mutable
    attribute (and may be a zero-argument callable), re-read before every
    firing, preserving the historical contract that runtime mutation takes
    effect on the next tick.
    """

    __slots__ = ("_stopped", "_handle", "period")

    def __init__(self, period):
        self.period = period
        self._stopped = False
        self._handle = None   # wired by Process.periodic

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped

    def _interval(self) -> float:
        period = self.period
        return period() if callable(period) else period


class Process:
    """Base class for every simulated server, service, or client."""

    def __init__(self, env: Environment, name: str, site: int = 0,
                 cost_model: Optional[CostModel] = None):
        self.env = env
        self._loop = env.loop   # hot-path alias (the loop never changes)
        self.name = name
        self.site = site
        self.pid = env.allocate_pid()
        self.cost_model = cost_model or CostModel()
        self.crashed = False
        self.state_lost = False   # set by an amnesia crash, cleared on restore
        self._epoch = 0           # bumped on crash; stale callbacks are dropped
        self._lane_busy: dict[str, float] = {}   # lane -> end of last slot
        self._handler_cache: dict[type, Callable] = {}
        if env.network is not None:
            env.network.register(self)

    # ------------------------------------------------------------------
    # Time helpers
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._loop._now

    def after(self, delay: float, fn: Callable[..., Any], *args: Any):
        """Run ``fn`` after ``delay`` seconds (no CPU cost, crash-aware)."""
        return self._loop.schedule(delay, self._run_deferred, self._epoch,
                                   fn, args)

    def _run_deferred(self, epoch: int, fn: Callable[..., Any],
                      args: tuple) -> None:
        """Crash/epoch-guarded trampoline for :meth:`after` callbacks."""
        if not self.crashed and self._epoch == epoch:
            fn(*args)

    def periodic(self, period, fn: Callable[[], Any],
                 cost: float = 0.0, phase: Optional[float] = None) -> PeriodicTask:
        """Run ``fn`` every ``period`` seconds.

        ``cost`` > 0 routes each firing through the service queue, charging
        the process CPU time — this is how the periodic global-stabilization
        work of GentleRain/Cure is made expensive.  ``phase`` staggers the
        first firing (defaults to one full period).  ``period`` may be a
        zero-argument callable, re-read before every firing (the straggler
        injector mutates intervals at runtime).

        Built on :meth:`repro.sim.loop.EventLoop.schedule_periodic`: the
        returned :class:`PeriodicTask` wraps the loop-level handle, and the
        crash guard retires the whole chain (one uniform re-arm point —
        recovery paths simply call the owning component's ``start()`` again).
        """
        task = PeriodicTask(period)
        epoch = self._epoch

        def body() -> None:
            if task.stopped or self.crashed or self._epoch != epoch:
                task.stop()
                return
            if cost > 0.0:
                self._enqueue(fn, cost)
            else:
                fn()

        task._handle = self.env.loop.schedule_periodic(
            task._interval, body,
            phase=task._interval() if phase is None else phase)
        return task

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dst: "Process", msg: Any) -> None:
        """Send ``msg`` to ``dst`` over the environment's network."""
        self.env.network.send(self, dst, msg)

    def send_many(self, dst: "Process", msgs) -> None:
        """Ship a batch of messages to ``dst`` as one network batch.

        Order, FIFO, and per-message loss statistics match a loop of
        :meth:`send` calls exactly (see
        :meth:`repro.sim.network.Network.send_many`); same-delivery-time
        runs collapse into a single scheduled event.
        """
        self.env.network.send_many(self, dst, msgs)

    def multicast(self, dsts, msg: Any) -> None:
        """Fan one message out to every destination, in iteration order."""
        self.env.network.multicast(self, dsts, msg)

    def lane_of(self, msg: Any) -> str:
        """Service lane for ``msg`` (override to add background servers)."""
        return "cpu"

    def deliver(self, msg: Any, src: "Process") -> None:
        """Called by the network at delivery time; feeds the service queue.

        This is :meth:`_enqueue` inlined for the dominant per-message case:
        the service-slot reservation is identical, but the scheduled event
        carries ``(epoch, msg, src)`` as plain args into
        :meth:`_run_delivery` instead of allocating two closures per
        message (the dispatch lambda and the guard) — same completion time,
        same event order, two fewer allocations on the hottest path in the
        simulator.
        """
        if self.crashed:
            return
        cost = self.cost_model.cost_of(msg)
        lane = self.lane_of(msg)
        busy = self._lane_busy
        loop = self._loop
        start = busy.get(lane, 0.0)
        now = loop._now
        if start < now:
            start = now
        complete = start + cost
        busy[lane] = complete
        loop.schedule_at(complete, self._run_delivery, self._epoch, msg, src)

    def _run_delivery(self, epoch: int, msg: Any, src: "Process") -> None:
        """Service-slot completion: dispatch unless crashed/re-epoched."""
        if not self.crashed and self._epoch == epoch:
            self._dispatch(msg, src)

    def deliver_batch(self, msgs: tuple, src: "Process") -> None:
        """One network batch arriving as a single event (``send_many``).

        Equivalence contract: the observable behaviour must match ``msgs``
        being delivered back to back at the same instant.  Free messages
        (zero service cost, one shared lane) dispatch as one merged group —
        a single event replaces the whole per-message ``_enqueue`` fan —
        which is where batched delivery earns its throughput.  The group
        run is scheduled one hop later (like ``_enqueue``'s zero-cost run),
        not dispatched inline: per-message delivery always takes two hops,
        so an inline dispatch would let the group overtake a same-time
        single message whose run event is already queued.  Any message
        with a nonzero cost falls back to the exact per-message
        service-queue path, since merging *those* would move their
        individual completion times.
        """
        if self.crashed:
            return
        cost_of = self.cost_model.cost_of
        lane_of = self.lane_of
        loop = self._loop
        costs = [cost_of(msg) for msg in msgs]
        if not any(costs):
            lanes = {lane_of(msg) for msg in msgs}
            if len(lanes) == 1 and not self._lane_busy.get(lanes.pop(), 0.0) > loop._now:
                loop.schedule_at(loop._now, self._run_group, self._epoch,
                                 msgs, src)
                return
        busy = self._lane_busy
        now = loop._now
        run_delivery = self._run_delivery
        epoch = self._epoch
        for msg, cost in zip(msgs, costs):
            lane = lane_of(msg)
            start = busy.get(lane, 0.0)
            if start < now:
                start = now
            complete = start + cost
            busy[lane] = complete
            loop.schedule_at(complete, run_delivery, epoch, msg, src)

    def _run_group(self, epoch: int, msgs: tuple, src: "Process") -> None:
        """Fire one merged free-message group (``deliver_batch``)."""
        dispatch = self._dispatch
        for msg in msgs:
            # A handler may crash (or crash+recover) the process mid-batch;
            # the per-message path's delivery guard drops the remainder, so
            # the group run must too.
            if self.crashed or self._epoch != epoch:
                return
            dispatch(msg, src)

    def _enqueue(self, fn: Callable[[], Any], cost: float,
                 lane: str = "cpu") -> None:
        """Reserve a ``cost``-second slot on ``lane``, then run ``fn``."""
        loop = self._loop
        start = max(loop._now, self._lane_busy.get(lane, 0.0))
        complete = start + cost
        self._lane_busy[lane] = complete
        loop.schedule_at(complete, self._run_enqueued, self._epoch, fn)

    def _run_enqueued(self, epoch: int, fn: Callable[[], Any]) -> None:
        """Crash/epoch-guarded trampoline for :meth:`_enqueue` slots."""
        if not self.crashed and self._epoch == epoch:
            fn()

    def _dispatch(self, msg: Any, src: "Process") -> None:
        handler = self._handler_cache.get(type(msg))
        if handler is None:
            handler = getattr(self, "on_" + _snake(type(msg).__name__), None)
            if handler is None:
                raise NotImplementedError(
                    f"{type(self).__name__} {self.name!r} has no handler for "
                    f"{type(msg).__name__}"
                )
            self._handler_cache[type(msg)] = handler
        handler(msg, src)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash(self, lose_state: bool = False) -> None:
        """Crash-stop: drop queued work and ignore deliveries until recovery.

        With ``lose_state=True`` this is an *amnesia* crash: the process's
        volatile protocol state is discarded too (via the
        :meth:`_lose_state` hook), modelling a machine whose memory is gone.
        Only state held in durable media (e.g. a
        :class:`repro.durability.wal.WriteAheadLog`) survives; recovery then
        requires an explicit restore path, not just :meth:`recover`.
        """
        self.crashed = True
        self._epoch += 1
        if lose_state:
            self.state_lost = True
            self._lose_state()

    def _lose_state(self) -> None:
        """Hook: discard volatile protocol state (amnesia crash).

        Subclasses with protocol state override this; durable media owned by
        the process (WALs, checkpoint stores) must survive untouched apart
        from dropping their own volatile staging buffers.
        """

    def recover(self) -> None:
        """Restart the process with an empty service queue.

        Protocol state is *not* reset here; subclasses that need clean-slate
        recovery override this and re-initialize their own fields.
        """
        self.crashed = False
        self._epoch += 1
        self._lane_busy.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def busy_until(self) -> float:
        """End time of the latest reserved service window on any lane."""
        return max(self._lane_busy.values(), default=0.0)

    def utilization_horizon(self, lane: str = "cpu") -> float:
        """Seconds of already-committed future work on ``lane``."""
        return max(0.0, self._lane_busy.get(lane, 0.0) - self.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} site={self.site}>"
