"""NTP-style clock discipline.

The paper's testbed synchronizes physical clocks "using the NTP protocol
through a near NTP server" before each run.  :class:`NtpSynchronizer` models
the steady-state effect: every ``interval`` seconds each registered clock's
phase error is reset to a small residual drawn from ±``residual_us``.
Between corrections the offset re-grows with the clock's drift rate, so the
system always operates with realistic (bounded but non-zero) skew — the
regime Eunomia's hybrid clocks are designed for.
"""

from __future__ import annotations

from ..sim.env import Environment
from .physical import PhysicalClock

__all__ = ["NtpSynchronizer"]


class NtpSynchronizer:
    """Periodically disciplines a set of :class:`PhysicalClock` instances."""

    def __init__(self, env: Environment, interval: float = 16.0,
                 residual_us: float = 100.0):
        self.env = env
        self.interval = interval
        self.residual_us = residual_us
        self._clocks: list[PhysicalClock] = []
        self._rng = env.rng.stream("ntp")
        self._task = None
        self._suspended = False
        self.corrections_skipped = 0

    def manage(self, clock: PhysicalClock) -> PhysicalClock:
        """Register ``clock`` for periodic correction; returns it unchanged."""
        self._clocks.append(clock)
        if self._task is None:
            self._task = self.env.loop.schedule_periodic(self.interval,
                                                         self._sync)
        return clock

    def suspend(self) -> None:
        """NTP outage: stop disciplining until :meth:`resume`.

        Offsets re-grow at each clock's full drift rate, unbounded — the
        regime where physical-clock stabilization degrades with skew while
        hybrid clocks stay safe (the paper's headline clock axis).
        """
        self._suspended = True

    def resume(self) -> None:
        """End an outage: the next periodic tick disciplines again."""
        self._suspended = False

    def _sync(self) -> None:
        if self._suspended:
            self.corrections_skipped += 1
            return
        for clock in self._clocks:
            clock.ntp_correct(self._rng.uniform(-self.residual_us, self.residual_us))

    def max_skew_us(self) -> float:
        """Largest pairwise skew across managed clocks right now."""
        if not self._clocks:
            return 0.0
        skews = [clock.skew_us() for clock in self._clocks]
        return max(skews) - min(skews)
