"""Clock models: physical clocks with drift, NTP discipline, hybrid logical
clocks (the timestamp source of Algorithm 2), vector clocks (§4), and Lamport
clocks (testing oracle)."""

from .hlc import HybridLogicalClock
from .lamport import LamportClock
from .ntp import NtpSynchronizer
from .physical import PhysicalClock
from .vector import (
    VectorClock,
    vc_bump,
    vc_concurrent,
    vc_leq,
    vc_lt,
    vc_merge,
    vc_zero,
)

__all__ = [
    "PhysicalClock",
    "HybridLogicalClock",
    "LamportClock",
    "NtpSynchronizer",
    "VectorClock",
    "vc_zero",
    "vc_merge",
    "vc_leq",
    "vc_lt",
    "vc_concurrent",
    "vc_bump",
]
