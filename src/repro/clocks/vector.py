"""Vector clocks with one entry per datacenter (§4 of the paper).

The geo-replication layer tags every update with a vector timestamp
``u.vts`` of M entries (M = number of datacenters).  Compared with
GentleRain's single scalar, vectors add no *false* cross-datacenter
dependencies: an update from dc1 can become visible at dc2 as soon as dc2 has
applied the dc1-prefix and the explicitly named dependencies — not when a
heartbeat from the farthest datacenter arrives.

Protocol hot paths operate on plain tuples for speed; :class:`VectorClock`
wraps a tuple with the comparison algebra and is the type exposed through the
public API.  The free functions work on raw sequences and are what the
protocol modules import.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

__all__ = [
    "VectorClock",
    "vc_zero",
    "vc_merge",
    "vc_leq",
    "vc_lt",
    "vc_concurrent",
    "vc_bump",
]

Vec = Tuple[int, ...]


def vc_zero(n: int) -> Vec:
    """The bottom element: a vector of ``n`` zeros."""
    return (0,) * n


def vc_merge(a: Sequence[int], b: Sequence[int]) -> Vec:
    """Entry-wise maximum (the read-side MAX of §4)."""
    return tuple(x if x >= y else y for x, y in zip(a, b))


def vc_leq(a: Sequence[int], b: Sequence[int]) -> bool:
    """True iff ``a <= b`` entry-wise (a happened-before-or-equals b)."""
    return all(x <= y for x, y in zip(a, b))


def vc_lt(a: Sequence[int], b: Sequence[int]) -> bool:
    """Strict causal order: ``a <= b`` and ``a != b``."""
    return vc_leq(a, b) and tuple(a) != tuple(b)


def vc_concurrent(a: Sequence[int], b: Sequence[int]) -> bool:
    """Neither dominates: the events are causally unrelated."""
    return not vc_leq(a, b) and not vc_leq(b, a)


def vc_bump(a: Sequence[int], index: int, value: int) -> Vec:
    """Copy of ``a`` with ``a[index] = value``."""
    out = list(a)
    out[index] = value
    return tuple(out)


class VectorClock:
    """Immutable vector clock value (public-API convenience wrapper)."""

    __slots__ = ("entries",)

    def __init__(self, entries: Iterable[int]):
        self.entries: Vec = tuple(int(e) for e in entries)

    @classmethod
    def zero(cls, n: int) -> "VectorClock":
        return cls(vc_zero(n))

    def merge(self, other: "VectorClock") -> "VectorClock":
        return VectorClock(vc_merge(self.entries, other.entries))

    def bump(self, index: int, value: int) -> "VectorClock":
        return VectorClock(vc_bump(self.entries, index, value))

    def __getitem__(self, index: int) -> int:
        return self.entries[index]

    def __len__(self) -> int:
        return len(self.entries)

    def __le__(self, other: "VectorClock") -> bool:
        return vc_leq(self.entries, other.entries)

    def __lt__(self, other: "VectorClock") -> bool:
        return vc_lt(self.entries, other.entries)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self.entries == other.entries

    def __hash__(self) -> int:
        return hash(self.entries)

    def concurrent_with(self, other: "VectorClock") -> bool:
        return vc_concurrent(self.entries, other.entries)

    def __repr__(self) -> str:
        return f"VectorClock{self.entries!r}"
