"""Plain Lamport logical clocks.

Not used by Eunomia itself (hybrid clocks are), but kept in the library for
two reasons: the paper's discussion (§3.2) contrasts hybrid clocks against
purely logical ones — stabilization with logical clocks progresses only as
fast as the *slowest* partition receives updates — and the test suite uses
Lamport clocks as the simplest causality oracle in property tests.
"""

from __future__ import annotations

__all__ = ["LamportClock"]


class LamportClock:
    """Classic Lamport clock: integer counter with send/receive rules."""

    __slots__ = ("_value",)

    def __init__(self, initial: int = 0):
        self._value = initial

    @property
    def value(self) -> int:
        return self._value

    def tick(self) -> int:
        """Advance for a local or send event; returns the new value."""
        self._value += 1
        return self._value

    def update(self, received: int) -> int:
        """Advance past a received timestamp; returns the new value."""
        self._value = max(self._value, received) + 1
        return self._value
