"""Drifting physical clocks.

The paper assumes each partition has a physical clock, loosely synchronized
with NTP; correctness never depends on precision, but large skew hurts how
fast updates stabilize (§3.2).  :class:`PhysicalClock` models exactly that: a
clock reads true simulation time scaled by a drift rate plus an offset.
:class:`repro.clocks.ntp.NtpSynchronizer` periodically bounds the offset the
way a near NTP server would.

Clock readings are **integer microseconds** — the unit used for every
protocol timestamp in this code base.  Reads are monotone non-decreasing even
when NTP steps a fast clock backwards (a real clock discipline slews; we
clamp, which preserves the paper's Property 2 requirements).
"""

from __future__ import annotations

import random
from typing import Optional

from ..sim.env import Environment

__all__ = ["PhysicalClock"]

US = 1_000_000  # microseconds per second


class PhysicalClock:
    """A per-process clock: ``reading = true_time * (1 + drift) + offset``."""

    def __init__(self, env: Environment, drift_ppm: float = 0.0,
                 offset_us: float = 0.0):
        self.env = env
        self.drift_ppm = drift_ppm
        self.offset_us = offset_us
        self._last_reading = 0

    @classmethod
    def random(cls, env: Environment, rng: random.Random,
               max_drift_ppm: float = 50.0,
               max_offset_us: float = 500.0) -> "PhysicalClock":
        """A clock with drift/offset drawn uniformly from ±max bounds.

        50 ppm drift and sub-millisecond initial offset are typical for
        NTP-disciplined servers on a LAN, matching the paper's testbed.
        """
        return cls(
            env,
            drift_ppm=rng.uniform(-max_drift_ppm, max_drift_ppm),
            offset_us=rng.uniform(-max_offset_us, max_offset_us),
        )

    def read_us(self) -> int:
        """Current clock value in integer microseconds (monotone)."""
        true_us = self.env.loop.now * US
        raw = true_us * (1.0 + self.drift_ppm / 1e6) + self.offset_us
        reading = int(raw)
        if reading < self._last_reading:
            reading = self._last_reading
        else:
            self._last_reading = reading
        return reading

    def skew_us(self) -> float:
        """Signed error versus true time, in microseconds (for diagnostics)."""
        true_us = self.env.loop.now * US
        return true_us * (self.drift_ppm / 1e6) + self.offset_us

    def set_drift(self, drift_ppm: float) -> None:
        """Re-rate the oscillator without stepping the current reading.

        Fault injection mutates drift mid-run (thermal events, a VM landing
        on a worse host).  A naive ``self.drift_ppm = x`` would be
        retroactive — the new rate re-scales all *past* true time, stepping
        the phase by an amount proportional to how long the run has been
        going.  Rebasing the offset keeps the reading continuous: only time
        *after* this instant accumulates at the new rate.
        """
        true_us = self.env.loop.now * US
        current = true_us * (1.0 + self.drift_ppm / 1e6) + self.offset_us
        self.drift_ppm = drift_ppm
        self.offset_us = current - true_us * (1.0 + drift_ppm / 1e6)

    def step_us(self, delta_us: float) -> None:
        """Step the phase by ``delta_us`` (fault injection).

        Positive steps jump the reading forward immediately; negative steps
        are absorbed by the monotone read clamp (the clock holds still until
        true time catches up — the slewing behaviour a sane clock discipline
        exhibits, and what keeps Property 2 intact under injected steps).
        """
        self.offset_us += delta_us

    def ntp_correct(self, residual_us: float) -> None:
        """Discipline the clock: reset accumulated offset to ``residual_us``.

        Called by the NTP model.  The drift rate is left untouched (NTP
        corrects phase much faster than frequency), so between corrections
        the offset re-grows at ``drift_ppm`` µs/s.
        """
        true_us = self.env.loop.now * US
        self.offset_us = residual_us - true_us * (self.drift_ppm / 1e6)
