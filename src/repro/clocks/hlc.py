"""Hybrid logical clocks (Kulkarni et al., OPODIS'14) as used by Eunomia.

The paper folds the hybrid clock into Algorithm 2 line 5::

    MaxTs_n <- MAX(Clock_n, Clock_c + 1, MaxTs_n + 1)

i.e. a single integer timestamp that tracks physical time when possible and
falls back to logical increments when the physical clock lags behind either
the causal past (``Clock_c``) or the partition's own last timestamp.  This
avoids the "wait until the physical clock catches up" stalls of pure
physical-clock designs (Clock-SI, GentleRain) while keeping timestamps close
to real time, which is what makes the site stabilization procedure progress
at wall-clock speed.

:class:`HybridLogicalClock` packages exactly that update rule.
"""

from __future__ import annotations

from .physical import PhysicalClock

__all__ = ["HybridLogicalClock"]


class HybridLogicalClock:
    """Scalar hybrid clock: physical microseconds with logical catch-up."""

    __slots__ = ("physical", "_max_ts")

    def __init__(self, physical: PhysicalClock):
        self.physical = physical
        self._max_ts = 0

    @property
    def last(self) -> int:
        """The last timestamp generated (0 if none yet)."""
        return self._max_ts

    def tick(self) -> int:
        """Timestamp a local event with no external dependency.

        Equivalent to :meth:`update` with ``dependency = 0``.
        """
        self._max_ts = max(self.physical.read_us(), self._max_ts + 1)
        return self._max_ts

    def update(self, dependency: int) -> int:
        """Timestamp an event that causally follows ``dependency``.

        Implements Algorithm 2 line 5; the returned timestamp is strictly
        greater than both ``dependency`` and every timestamp previously
        produced by this clock (Properties 1 and 2 of the paper).
        """
        self._max_ts = max(self.physical.read_us(), dependency + 1, self._max_ts + 1)
        return self._max_ts

    def observe(self, remote_ts: int) -> None:
        """Fold a timestamp seen from elsewhere into the clock (no event).

        Keeps future :meth:`tick` results above anything already observed;
        used when a partition applies remote updates so that local updates
        overwriting them sort later.
        """
        if remote_ts > self._max_ts:
            self._max_ts = remote_ts

    def logical_lead_us(self) -> int:
        """How far the logical part runs ahead of the physical clock.

        Zero when physical time dominates; grows under clock skew or update
        bursts.  Heartbeat logic (Alg. 2 line 11) consults this: a partition
        only emits a heartbeat when its physical clock has caught up.
        """
        return max(0, self._max_ts - self.physical.read_us())
