"""The ordered buffer of unstable operations inside Eunomia.

``Ops`` in Algorithm 3 is a *set* in the abstract protocol; the implementation
(§6) keeps it ordered by timestamp so that FIND_STABLE is an in-order prefix
scan.  Every backend realizes that design over the total order
``(timestamp, origin partition id, per-partition sequence)`` — the last two
components break ties between concurrent updates from different partitions
(the paper allows any order for equal timestamps) while keeping keys unique.

Three interchangeable strategies (``EunomiaConfig.buffer_backend``):

* ``"runs"`` (default) — :class:`repro.datastruct.runbuffer.RunBuffer`:
  exploits Algorithm 3's per-origin monotonicity for O(1) appends and a
  k-way-merge FIND_STABLE.  Fastest; requires the monotone-ingestion
  contract the stabilizer already enforces via ``PartitionTime``.
* ``"rbtree"`` — :class:`TreeOpBuffer` over the paper's red–black tree:
  O(log n) everything, no ingestion-order assumptions.
* ``"avl"`` — :class:`TreeOpBuffer` over the AVL tree (§6 ablation).

:func:`OpBuffer` is the strategy facade: a factory returning the chosen
backend instance.  It is deliberately *not* a wrapper object — ``add()`` is
the hot path, and a delegation layer would tax every call; call sites hold
the backend directly.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .rbtree import RedBlackTree
from .runbuffer import RunBuffer

__all__ = ["OpBuffer", "TreeOpBuffer", "BUFFER_BACKENDS", "DEFAULT_BACKEND"]

#: Recognized ``buffer_backend`` strategy names.
BUFFER_BACKENDS = ("runs", "rbtree", "avl")

#: The run-aware buffer is the default: Algorithm 3 guarantees the monotone
#: ingestion it needs, and it wins every micro-benchmark (see
#: ``benchmarks/bench_trees.py::bench_opbuffer_ingestion``).
DEFAULT_BACKEND = "runs"


class TreeOpBuffer:
    """Timestamp-ordered buffer over a self-balancing tree (§6)."""

    __slots__ = ("_tree", "total_added")

    def __init__(self, tree_factory: Callable[[], Any] = RedBlackTree):
        self._tree = tree_factory()
        self.total_added = 0

    def __len__(self) -> int:
        return len(self._tree)

    def __bool__(self) -> bool:
        return bool(self._tree)

    def add(self, ts: int, origin: int, seq: int, op: Any) -> None:
        """Buffer ``op`` under its (unique) ordering key."""
        self._tree.insert((ts, origin, seq), op)
        self.total_added += 1

    def extend_run(self, entries: list) -> int:
        """Bulk-append interface parity with :class:`RunBuffer`.

        Trees gain nothing from batching — every key still pays its
        O(log n) insert — so this is the plain loop; it exists so the
        batched ingestion path is backend-agnostic.
        """
        insert = self._tree.insert
        for ts, origin, seq, op in entries:
            insert((ts, origin, seq), op)
        self.total_added += len(entries)
        return len(entries)

    def contains(self, ts: int, origin: int, seq: int) -> bool:
        return (ts, origin, seq) in self._tree

    def pop_stable(self, stable_ts: int) -> list:
        """Extract every op with ``ts <= stable_ts`` in total order.

        This is FIND_STABLE + removal (Alg. 3 lines 9–11): because the key's
        first component is the timestamp, ``pop_leq((stable_ts, inf, inf))``
        returns exactly the stable prefix, already serialized consistently
        with causality (Property 1) with deterministic tie-breaks.
        """
        bound = (stable_ts, float("inf"), float("inf"))
        return [op for _, op in self._tree.pop_leq(bound)]

    def min_ts(self) -> Optional[int]:
        """Timestamp of the oldest buffered op, or None when empty."""
        if not self._tree:
            return None
        (ts, _, _), _ = self._tree.min_item()
        return ts

    def drop_stable(self, stable_ts: int) -> int:
        """Discard the stable prefix without returning it (follower replicas).

        Alg. 4 lines 13–15: when a follower learns StableTime from the
        leader, it prunes ops known to have been processed — counting, not
        collecting, so no op list is built.  Returns the number dropped.
        """
        bound = (stable_ts, float("inf"), float("inf"))
        return self._tree.drop_leq(bound)


def OpBuffer(tree_factory: Optional[Callable[[], Any]] = None,
             backend: Optional[str] = None):
    """Strategy facade: build the op buffer for ``backend``.

    ``tree_factory`` forces a tree-backed buffer over that structure (the
    historical calling convention, kept for the §6 tree ablations); otherwise
    ``backend`` picks a strategy by name, defaulting to ``"runs"``.
    """
    if tree_factory is not None:
        return TreeOpBuffer(tree_factory)
    backend = backend or DEFAULT_BACKEND
    if backend == "runs":
        return RunBuffer()
    if backend == "rbtree":
        return TreeOpBuffer(RedBlackTree)
    if backend == "avl":
        from .avl import AVLTree

        return TreeOpBuffer(AVLTree)
    raise ValueError(
        f"unknown buffer backend {backend!r} (expected one of "
        f"{', '.join(BUFFER_BACKENDS)})"
    )
