"""The ordered buffer of unstable operations inside Eunomia.

``Ops`` in Algorithm 3 is a *set* in the abstract protocol; the implementation
(§6) keeps it ordered by timestamp so that FIND_STABLE is an in-order prefix
scan.  :class:`OpBuffer` realizes that design on top of a self-balancing tree
keyed by ``(timestamp, origin partition id, per-partition sequence)`` — the
last two components break ties between concurrent updates from different
partitions (the paper allows any order for equal timestamps) while keeping
keys unique.

The backing tree is pluggable (red–black by default, AVL for the ablation).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .rbtree import RedBlackTree

__all__ = ["OpBuffer"]


class OpBuffer:
    """Timestamp-ordered buffer with prefix extraction."""

    def __init__(self, tree_factory: Callable[[], Any] = RedBlackTree):
        self._tree = tree_factory()
        self.total_added = 0

    def __len__(self) -> int:
        return len(self._tree)

    def add(self, ts: int, origin: int, seq: int, op: Any) -> None:
        """Buffer ``op`` under its (unique) ordering key."""
        self._tree.insert((ts, origin, seq), op)
        self.total_added += 1

    def contains(self, ts: int, origin: int, seq: int) -> bool:
        return (ts, origin, seq) in self._tree

    def pop_stable(self, stable_ts: int) -> list:
        """Extract every op with ``ts <= stable_ts`` in total order.

        This is FIND_STABLE + removal (Alg. 3 lines 9–11): because the key's
        first component is the timestamp, ``pop_leq((stable_ts, inf, inf))``
        returns exactly the stable prefix, already serialized consistently
        with causality (Property 1) with deterministic tie-breaks.
        """
        bound = (stable_ts, float("inf"), float("inf"))
        return [op for _, op in self._tree.pop_leq(bound)]

    def min_ts(self) -> Optional[int]:
        """Timestamp of the oldest buffered op, or None when empty."""
        if not self._tree:
            return None
        (ts, _, _), _ = self._tree.min_item()
        return ts

    def drop_stable(self, stable_ts: int) -> int:
        """Discard the stable prefix without returning it (follower replicas).

        Alg. 4 lines 13–15: when a follower learns StableTime from the
        leader, it prunes ops known to have been processed.  Returns the
        number of ops dropped.
        """
        return len(self.pop_stable(stable_ts))
