"""Red–black tree (Guibas & Sedgewick), the core of the Eunomia service.

The paper (§6) reports that Eunomia's performance hinges on the structure
holding the set of unstable operations: it must support cheap inserts (every
local update lands here) and cheap in-order traversal of a prefix (every
stabilization round pops all operations with timestamp ≤ StableTime).  The
authors used a red–black tree and found it faster than AVL for their
insert-heavy mix; we implement both (see :mod:`repro.datastruct.avl`) and
benchmark the choice in ``benchmarks/bench_trees.py``.

This is a textbook CLRS implementation with a per-tree NIL sentinel, mapping
totally-ordered keys to values.  ``validate()`` checks the red–black
invariants and is exercised by property-based tests.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

__all__ = ["RedBlackTree"]

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "left", "right", "parent", "color")

    def __init__(self, key: Any, value: Any, color: bool, nil: "_Node" = None):
        self.key = key
        self.value = value
        self.left = nil
        self.right = nil
        self.parent = nil
        self.color = color


class RedBlackTree:
    """Ordered map with O(log n) insert/delete/search, O(n) ordered scan."""

    def __init__(self) -> None:
        self._nil = _Node(None, None, BLACK)
        self._nil.left = self._nil.right = self._nil.parent = self._nil
        self._root = self._nil
        self._size = 0

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: Any) -> bool:
        return self._find(key) is not self._nil

    def get(self, key: Any, default: Any = None) -> Any:
        node = self._find(key)
        return default if node is self._nil else node.value

    def min_item(self) -> Tuple[Any, Any]:
        """Smallest (key, value); raises KeyError when empty."""
        if self._root is self._nil:
            raise KeyError("min_item of empty tree")
        node = self._minimum(self._root)
        return node.key, node.value

    def max_item(self) -> Tuple[Any, Any]:
        """Largest (key, value); raises KeyError when empty."""
        if self._root is self._nil:
            raise KeyError("max_item of empty tree")
        node = self._root
        while node.right is not self._nil:
            node = node.right
        return node.key, node.value

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """In-order (sorted) iteration over (key, value) pairs."""
        stack: list[_Node] = []
        node = self._root
        while stack or node is not self._nil:
            while node is not self._nil:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[Any]:
        for key, _ in self.items():
            yield key

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Insert or overwrite ``key``."""
        parent = self._nil
        node = self._root
        while node is not self._nil:
            parent = node
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                node.value = value  # overwrite existing key
                return
        fresh = _Node(key, value, RED, self._nil)
        fresh.parent = parent
        if parent is self._nil:
            self._root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self._size += 1
        self._insert_fixup(fresh)

    def delete(self, key: Any) -> Any:
        """Remove ``key`` and return its value; raises KeyError if absent."""
        node = self._find(key)
        if node is self._nil:
            raise KeyError(key)
        value = node.value
        self._delete_node(node)
        return value

    def pop_min(self) -> Tuple[Any, Any]:
        """Remove and return the smallest (key, value)."""
        if self._root is self._nil:
            raise KeyError("pop_min of empty tree")
        node = self._minimum(self._root)
        item = (node.key, node.value)
        self._delete_node(node)
        return item

    def pop_leq(self, bound: Any) -> list:
        """Remove every entry with ``key <= bound``; return them in order.

        This is Eunomia's FIND_STABLE + removal in one call: after computing
        ``StableTime``, the service extracts the ordered stable prefix.
        Amortized O(log n) per extracted entry.
        """
        out = []
        while self._root is not self._nil:
            node = self._minimum(self._root)
            if bound < node.key:
                break
            out.append((node.key, node.value))
            self._delete_node(node)
        return out

    def drop_leq(self, bound: Any) -> int:
        """Remove every entry with ``key <= bound``; return only the count.

        The pruning-side twin of :meth:`pop_leq` for callers (follower
        replicas) that discard the stable prefix: nothing is collected, so
        no list of dropped entries is ever built.
        """
        dropped = 0
        while self._root is not self._nil:
            node = self._minimum(self._root)
            if bound < node.key:
                break
            self._delete_node(node)
            dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _find(self, key: Any) -> _Node:
        node = self._root
        while node is not self._nil:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return node
        return self._nil

    def _minimum(self, node: _Node) -> _Node:
        while node.left is not self._nil:
            node = node.left
        return node

    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not self._nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not self._nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent.color is RED:
            if z.parent is z.parent.parent.left:
                uncle = z.parent.parent.right
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    z.parent.parent.color = RED
                    z = z.parent.parent
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_right(z.parent.parent)
            else:
                uncle = z.parent.parent.left
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    z.parent.parent.color = RED
                    z = z.parent.parent
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_left(z.parent.parent)
        self._root.color = BLACK

    def _transplant(self, u: _Node, v: _Node) -> None:
        if u.parent is self._nil:
            self._root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _delete_node(self, z: _Node) -> None:
        y = z
        y_color = y.color
        if z.left is self._nil:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is self._nil:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        self._size -= 1
        if y_color is BLACK:
            self._delete_fixup(x)

    def _delete_fixup(self, x: _Node) -> None:
        while x is not self._root and x.color is BLACK:
            if x is x.parent.left:
                w = x.parent.right
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent)
                    w = x.parent.right
                if w.left.color is BLACK and w.right.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.right.color is BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._rotate_left(x.parent)
                    x = self._root
            else:
                w = x.parent.left
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent)
                    w = x.parent.left
                if w.right.color is BLACK and w.left.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.left.color is BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._rotate_right(x.parent)
                    x = self._root
        x.color = BLACK

    # ------------------------------------------------------------------
    # Invariant checking (tests only)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Assert the red–black invariants; raises AssertionError on breach."""
        assert self._root.color is BLACK, "root must be black"

        def walk(node: _Node, lo: Optional[Any], hi: Optional[Any]) -> int:
            if node is self._nil:
                return 1
            if lo is not None:
                assert lo < node.key, "BST order violated (left bound)"
            if hi is not None:
                assert node.key < hi, "BST order violated (right bound)"
            if node.color is RED:
                assert node.left.color is BLACK and node.right.color is BLACK, \
                    "red node with red child"
            lh = walk(node.left, lo, node.key)
            rh = walk(node.right, node.key, hi)
            assert lh == rh, "black-height mismatch"
            return lh + (1 if node.color is BLACK else 0)

        walk(self._root, None, None)
        assert self._size == sum(1 for _ in self.items()), "size out of sync"
