"""Columnar (structure-of-arrays) record of one shipped update batch.

Every hot ingestion path in the simulator receives the *same* shape of
input: a batch of updates from one origin partition, timestamp-ascending by
Property 2 and FIFO links.  Handling it op by op — attribute access, a
``PartitionTime`` comparison, a WAL call, and a buffer insert per op — makes
the Python interpreter the bottleneck long before the modelled costs do.

:class:`OpBlock` is the batch's columnar view: parallel tuples of the fields
the ingestion paths actually branch on (``origin``, ``ts``, ``seq``, ``key``,
``size``) extracted in one pass, with the op payloads kept alongside for the
consumers that eventually serialize them.  Because ``ts`` is a plain sorted
tuple, the per-op control flow of Algorithm 3's NEW_OP loop collapses into
two bisections:

* :meth:`first_above` (PartitionTime dedup) finds where the new suffix
  starts — everything before it is an at-least-once duplicate;
* a second :meth:`first_above` at ``StableTime`` splits the accepted suffix
  into ops that only advance PartitionTime and ops that enter the unstable
  buffer — which then ingests them wholesale via
  :meth:`repro.datastruct.runbuffer.RunBuffer.extend_run`.

The same block serves bulk WAL staging
(:meth:`repro.durability.wal.WriteAheadLog.stage_ops`) and any other
consumer of per-origin monotone runs (the GentleRain/Cure deferred-update
sets are ``RunBuffer``-backed and go through the same ``extend_run`` door).

State-identical by construction: blocks never reorder, drop, or mutate ops —
they only precompute the columns the per-op loop would have read anyway.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterable, Sequence

__all__ = ["OpBlock"]


class OpBlock:
    """Parallel columns over one origin partition's timestamp-ascending ops."""

    __slots__ = ("origin", "ts", "seq", "key", "size", "payload")

    def __init__(self, origin: Sequence[int], ts: Sequence[int],
                 seq: Sequence[int], key: Sequence, size: Sequence[int],
                 payload: Sequence[Any]):
        n = len(ts)
        if not (len(origin) == len(seq) == len(key) == len(size)
                == len(payload) == n):
            raise ValueError("OpBlock columns must have equal length")
        self.origin = tuple(origin)
        self.ts = tuple(ts)
        self.seq = tuple(seq)
        self.key = tuple(key)
        self.size = tuple(size)
        self.payload = tuple(payload)

    @classmethod
    def from_updates(cls, ops: Iterable[Any]) -> "OpBlock":
        """Columnarize update objects (one attribute pass per column)."""
        ops = tuple(ops)
        return cls(
            origin=[op.partition_index for op in ops],
            ts=[op.ts for op in ops],
            seq=[op.seq for op in ops],
            key=[op.key for op in ops],
            size=[getattr(op, "size_bytes", 0) for op in ops],
            payload=ops,
        )

    def __len__(self) -> int:
        return len(self.ts)

    def __bool__(self) -> bool:
        return bool(self.ts)

    # ------------------------------------------------------------------
    # Bisection helpers (the batched replacements for per-op branches)
    # ------------------------------------------------------------------
    def first_above(self, floor: int, lo: int = 0) -> int:
        """Index of the first op with ``ts > floor`` (= len when none).

        ``ts`` is ascending, so ops below the index are exactly those a
        per-op ``ts <= floor`` check would have skipped.
        """
        return bisect_right(self.ts, floor, lo)

    def total_bytes(self, start: int = 0) -> int:
        """Sum of the ``size`` column from ``start`` on."""
        return sum(self.size[start:])

    # ------------------------------------------------------------------
    # Consumers
    # ------------------------------------------------------------------
    def run_entries(self, start: int = 0) -> list[tuple]:
        """The ``(ts, origin, seq, op)`` run entries from ``start`` on.

        This is the exact entry layout :class:`RunBuffer` stores and the
        record layout the WAL stages, built in one ``zip`` pass instead of
        a tuple allocation per ``add()``/``stage_op()`` call; feed the
        result to ``extend_run`` / ``stage_ops``.
        """
        return list(zip(self.ts[start:], self.origin[start:],
                        self.seq[start:], self.payload[start:]))
