"""Columnar (structure-of-arrays) record of one shipped update batch.

Every hot ingestion path in the simulator receives the *same* shape of
input: a batch of updates from one origin partition, timestamp-ascending by
Property 2 and FIFO links.  Handling it op by op — attribute access, a
``PartitionTime`` comparison, a WAL call, and a buffer insert per op — makes
the Python interpreter the bottleneck long before the modelled costs do.

:class:`OpBlock` is the batch's columnar view: parallel tuples of the fields
the ingestion paths actually branch on (``origin``, ``ts``, ``seq``, ``key``,
``size``) extracted in one pass, with the op payloads kept alongside for the
consumers that eventually serialize them.  Because ``ts`` is a plain sorted
tuple, the per-op control flow of Algorithm 3's NEW_OP loop collapses into
two bisections:

* :meth:`first_above` (PartitionTime dedup) finds where the new suffix
  starts — everything before it is an at-least-once duplicate;
* a second :meth:`first_above` at ``StableTime`` splits the accepted suffix
  into ops that only advance PartitionTime and ops that enter the unstable
  buffer — which then ingests them wholesale via
  :meth:`repro.datastruct.runbuffer.RunBuffer.extend_run`.

The same block serves bulk WAL staging
(:meth:`repro.durability.wal.WriteAheadLog.stage_ops`) and any other
consumer of per-origin monotone runs (the GentleRain/Cure deferred-update
sets are ``RunBuffer``-backed and go through the same ``extend_run`` door).

State-identical by construction: blocks never reorder, drop, or mutate ops —
they only precompute the columns the per-op loop would have read anyway.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterable, Optional, Sequence

__all__ = ["OpBlock", "OpRunBuilder"]


class OpBlock:
    """Parallel columns over one origin partition's timestamp-ascending ops."""

    __slots__ = ("origin", "ts", "seq", "key", "size", "payload", "_wire")

    def __init__(self, origin: Sequence[int], ts: Sequence[int],
                 seq: Sequence[int], key: Sequence, size: Sequence[int],
                 payload: Sequence[Any]):
        n = len(ts)
        if not (len(origin) == len(seq) == len(key) == len(size)
                == len(payload) == n):
            raise ValueError("OpBlock columns must have equal length")
        self.origin = tuple(origin)
        self.ts = tuple(ts)
        self.seq = tuple(seq)
        self.key = tuple(key)
        self.size = tuple(size)
        self.payload = tuple(payload)
        self._wire: Optional[int] = None

    @classmethod
    def from_updates(cls, ops: Iterable[Any]) -> "OpBlock":
        """Columnarize update objects (one attribute pass per column)."""
        ops = tuple(ops)
        return cls(
            origin=[op.partition_index for op in ops],
            ts=[op.ts for op in ops],
            seq=[op.seq for op in ops],
            key=[op.key for op in ops],
            size=[getattr(op, "size_bytes", 0) for op in ops],
            payload=ops,
        )

    def __len__(self) -> int:
        return len(self.ts)

    def __bool__(self) -> bool:
        return bool(self.ts)

    def wire_bytes(self) -> int:
        """Total on-the-wire bytes of the block, §5 metadata rule applied.

        ``value=None`` ops (metadata-only shipping) cost ``metadata_bytes``,
        full ops ``size_bytes`` — the same sum the per-op frame properties
        historically computed on *every* ``size_bytes`` read.  Cached after
        the first call, so a window retransmitted to R replicas pays the
        per-op pass exactly once.
        """
        wire = self._wire
        if wire is None:
            wire = sum(op.size_bytes if op.value is not None
                       else op.metadata_bytes for op in self.payload)
            self._wire = wire
        return wire

    # ------------------------------------------------------------------
    # Bisection helpers (the batched replacements for per-op branches)
    # ------------------------------------------------------------------
    def first_above(self, floor: int, lo: int = 0) -> int:
        """Index of the first op with ``ts > floor`` (= len when none).

        ``ts`` is ascending, so ops below the index are exactly those a
        per-op ``ts <= floor`` check would have skipped.
        """
        return bisect_right(self.ts, floor, lo)

    def total_bytes(self, start: int = 0) -> int:
        """Sum of the ``size`` column from ``start`` on."""
        return sum(self.size[start:])

    # ------------------------------------------------------------------
    # Consumers
    # ------------------------------------------------------------------
    def run_entries(self, start: int = 0) -> list[tuple]:
        """The ``(ts, origin, seq, op)`` run entries from ``start`` on.

        This is the exact entry layout :class:`RunBuffer` stores and the
        record layout the WAL stages, built in one ``zip`` pass instead of
        a tuple allocation per ``add()``/``stage_op()`` call; feed the
        result to ``extend_run`` / ``stage_ops``.
        """
        return list(zip(self.ts[start:], self.origin[start:],
                        self.seq[start:], self.payload[start:]))


class OpRunBuilder:
    """Append-mode columnar accumulator for one partition's pending run.

    The uplink's pending state in structure-of-arrays form: appends push
    onto parallel lists, windows come out as :class:`OpBlock` snapshots cut
    with C-level column slices (``cut``), and the acknowledged prefix is
    dropped wholesale (``drop_prefix``).  ``wire`` holds each op's §5 wire
    footprint, computed exactly once at ``append`` time — historically the
    per-op ``size_bytes``/``metadata_bytes`` sum was recomputed on every
    frame send to every replica.
    """

    __slots__ = ("origin", "ts", "seq", "key", "wire", "payload")

    def __init__(self, origin: int):
        self.origin = origin
        self.ts: list[int] = []
        self.seq: list[int] = []
        self.key: list = []
        self.wire: list[int] = []
        self.payload: list[Any] = []

    def __len__(self) -> int:
        return len(self.ts)

    def __bool__(self) -> bool:
        return bool(self.ts)

    def __getitem__(self, i):
        """Index/slice the pending ops (introspection convenience)."""
        return self.payload[i]

    def append(self, op: Any) -> None:
        self.ts.append(op.ts)
        self.seq.append(op.seq)
        self.key.append(op.key)
        self.wire.append(op.size_bytes if op.value is not None
                         else op.metadata_bytes)
        self.payload.append(op)

    def cut(self, start: int, end: Optional[int] = None) -> OpBlock:
        """Snapshot columns ``[start:end)`` as an immutable :class:`OpBlock`.

        The block's wire total is pre-seeded from the ``wire`` column, so
        frames built here never re-touch the op objects.
        """
        if end is None:
            end = len(self.ts)
        block = OpBlock(
            origin=(self.origin,) * (end - start),
            ts=self.ts[start:end],
            seq=self.seq[start:end],
            key=self.key[start:end],
            size=self.wire[start:end],
            payload=self.payload[start:end],
        )
        block._wire = sum(block.size)
        return block

    def drop_prefix(self, n: int) -> None:
        """Discard the first ``n`` entries (the fully acknowledged prefix)."""
        if n <= 0:
            return
        del self.ts[:n]
        del self.seq[:n]
        del self.key[:n]
        del self.wire[:n]
        del self.payload[:n]
