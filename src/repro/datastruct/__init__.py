"""Self-balancing ordered structures used by the Eunomia service: the
red–black tree the paper's implementation is built on, the AVL alternative it
was benchmarked against (§6), and the timestamp-ordered unstable-operation
buffer composed on top."""

from .avl import AVLTree
from .opbuffer import OpBuffer
from .rbtree import RedBlackTree

__all__ = ["RedBlackTree", "AVLTree", "OpBuffer"]
