"""Ordered structures used by the Eunomia service: the red–black tree the
paper's implementation is built on, the AVL alternative it was benchmarked
against (§6), the run-aware :class:`RunBuffer` exploiting Algorithm 3's
per-origin monotonicity, the columnar :class:`OpBlock` batch record feeding
bulk ingestion, and the :func:`OpBuffer` strategy facade composing them into
the timestamp-ordered unstable-operation buffer."""

from .avl import AVLTree
from .opblock import OpBlock
from .opbuffer import (
    BUFFER_BACKENDS,
    DEFAULT_BACKEND,
    OpBuffer,
    TreeOpBuffer,
)
from .rbtree import RedBlackTree
from .runbuffer import RunBuffer

__all__ = [
    "RedBlackTree",
    "AVLTree",
    "OpBlock",
    "OpBuffer",
    "TreeOpBuffer",
    "RunBuffer",
    "BUFFER_BACKENDS",
    "DEFAULT_BACKEND",
]
