"""Run-aware unstable-op buffer: O(1) monotone ingestion, k-way-merge drain.

The paper's implementation (§6) keeps the unstable set in a balanced tree so
that FIND_STABLE is an ordered prefix scan — paying a pointer-chasing
O(log n) insert for *every* operation.  But Algorithm 3's own invariant makes
that general-purpose structure unnecessary: FIFO links plus Property 2
guarantee each partition's operations reach the stabilizer in strictly
increasing timestamp order, and :meth:`StabilizerBase.on_add_op_batch`
enforces exactly that via ``PartitionTime`` (duplicates and regressions never
reach the buffer).  Global-stabilization systems exploit the same
monotonicity to replace per-op structure maintenance with cheap per-source
cursors merged at read time (Xiang & Vaidya's global stabilization; Okapi's
coarse stable-time metadata).

:class:`RunBuffer` realizes that design:

* one append-only **run** per origin partition — a ``deque`` of
  ``(ts, origin, seq, op)`` entries, sorted by construction because each
  origin's timestamps only ever grow;
* ``add()`` is an O(1) amortized append (plus a tail comparison that
  *checks* the monotonicity contract instead of silently corrupting order);
* ``min_ts()`` is a min over the run heads — O(#active origins), taken once
  per stabilization round rather than maintained on every insert;
* ``pop_stable()`` is a ``heapq.merge``-style k-way merge of each run's
  stable prefix under the same ``(ts, origin, seq)`` total order the
  red–black tree produces, so the emitted stable serialization is
  op-for-op identical to the tree backend's (the property test in
  ``tests/test_runbuffer.py`` proves this);
* ``drop_stable()`` prunes the stable prefix in place without materializing
  it — the follower-replica fast path (Alg. 4 lines 13–15).

Entries are plain tuples whose first three fields *are* the ordering key, so
the merge runs entirely on CPython's C tuple comparison — no key callable.
Keys are unique (origins partition the runs; within a run ``(ts, seq)`` is
strictly increasing), hence comparisons never reach the non-orderable ``op``
payload in the fourth slot.
"""

from __future__ import annotations

from collections import deque
from heapq import merge as _heapq_merge
from typing import Any, Optional

__all__ = ["RunBuffer"]


class RunBuffer:
    """Per-origin monotone runs with k-way-merge prefix extraction."""

    __slots__ = ("_runs", "_tail", "_size", "total_added")

    def __init__(self) -> None:
        #: origin partition id -> deque[(ts, origin, seq, op)], ascending
        self._runs: dict[int, deque] = {}
        #: origin -> largest ts ever added; survives drains, so the
        #: monotonicity contract is enforced across the buffer's lifetime
        #: (matching PartitionTime, which also never regresses)
        self._tail: dict[int, int] = {}
        self._size = 0
        self.total_added = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------
    # Ingestion (the hot path)
    # ------------------------------------------------------------------
    def add(self, ts: int, origin: int, seq: int, op: Any) -> None:
        """Append ``op`` to its origin's run.  O(1) amortized.

        Raises ``ValueError`` when ``(ts, seq)`` does not extend the run —
        an out-of-order same-origin insert would silently break the sorted-
        run invariant every other operation relies on, so it fails loudly
        instead (the stabilizer's ``PartitionTime`` dedup makes this
        unreachable in the protocol; hitting it means a FIFO/Property-2
        violation upstream).
        """
        tail = self._tail
        last = tail.get(origin)
        if last is not None and last >= ts:
            raise ValueError(
                f"non-monotone insert for origin {origin}: "
                f"ts={ts} does not exceed the run tail ts={last} "
                f"— FIFO/Property 2 violated upstream"
            )
        tail[origin] = ts
        run = self._runs.get(origin)
        if run is None:
            run = self._runs[origin] = deque()
        run.append((ts, origin, seq, op))
        self._size += 1
        self.total_added += 1

    def extend_run(self, entries: list) -> int:
        """Bulk-append one origin's pre-built run entries.  O(n) total.

        ``entries`` are ``(ts, origin, seq, op)`` tuples, all for the same
        origin, timestamp-ascending — exactly what
        :meth:`repro.datastruct.opblock.OpBlock.run_entries` produces.  One
        validation pass checks the same contract :meth:`add` enforces per
        call (single origin, strictly increasing ts extending the run
        tail), then the run grows by a single ``deque.extend``.  Returns
        the number of entries appended.
        """
        if not entries:
            return 0
        origin = entries[0][1]
        last = self._tail.get(origin)
        prev = last if last is not None else -1
        for entry in entries:
            if entry[1] != origin:
                raise ValueError(
                    f"extend_run entries mix origins {origin} and {entry[1]}"
                )
            if entry[0] <= prev:
                raise ValueError(
                    f"non-monotone extend_run for origin {origin}: "
                    f"ts={entry[0]} does not exceed ts={prev} "
                    f"— FIFO/Property 2 violated upstream"
                )
            prev = entry[0]
        self._tail[origin] = prev
        run = self._runs.get(origin)
        if run is None:
            run = self._runs[origin] = deque()
        run.extend(entries)
        n = len(entries)
        self._size += n
        self.total_added += n
        return n

    def contains(self, ts: int, origin: int, seq: int) -> bool:
        """Membership test (diagnostics; O(run length), not a hot path)."""
        run = self._runs.get(origin)
        if not run:
            return False
        return (ts, origin, seq) in ((e[0], e[1], e[2]) for e in run)

    # ------------------------------------------------------------------
    # Stabilization
    # ------------------------------------------------------------------
    def min_ts(self) -> Optional[int]:
        """Timestamp of the oldest buffered op, or None when empty.

        A min over the run heads: each run is ascending, so its head is its
        minimum, and the global minimum is the smallest head.
        """
        heads = [run[0][0] for run in self._runs.values() if run]
        return min(heads) if heads else None

    def pop_stable(self, stable_ts: int) -> list:
        """Extract every op with ``ts <= stable_ts`` in total order.

        FIND_STABLE + removal (Alg. 3 lines 9–11): each run's stable prefix
        is split off (whole-run fast path when the entire run is stable),
        then the prefixes — already sorted, mutually non-interleaving only
        in origin — are k-way merged under ``(ts, origin, seq)``, the exact
        key and tie-break of the tree backends.
        """
        prefixes = self._split_stable(stable_ts)
        if not prefixes:
            return []
        if len(prefixes) == 1:
            return [entry[3] for entry in prefixes[0]]
        return [entry[3] for entry in _heapq_merge(*prefixes)]

    def drop_stable(self, stable_ts: int) -> int:
        """Discard the stable prefix without building op lists.

        Follower replicas churn this every θ on StableTime announcements
        (Alg. 4 lines 13–15); there is nothing to serialize, so nothing is
        materialized — runs are truncated in place.  Returns the count.
        """
        dropped = 0
        for run in self._runs.values():
            if not run or run[0][0] > stable_ts:
                continue
            if run[-1][0] <= stable_ts:     # whole run stable: O(1) clear
                dropped += len(run)
                run.clear()
                continue
            popleft = run.popleft
            while run[0][0] <= stable_ts:
                popleft()
                dropped += 1
        self._size -= dropped
        return dropped

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _split_stable(self, stable_ts: int) -> list[list]:
        """Detach each run's ``ts <= stable_ts`` prefix, preserving order."""
        prefixes = []
        taken = 0
        for run in self._runs.values():
            if not run or run[0][0] > stable_ts:
                continue
            if run[-1][0] <= stable_ts:     # whole run stable: bulk move
                prefix = list(run)
                run.clear()
            else:
                prefix = []
                append = prefix.append
                popleft = run.popleft
                while run[0][0] <= stable_ts:
                    append(popleft())
            taken += len(prefix)
            prefixes.append(prefix)
        self._size -= taken
        return prefixes
