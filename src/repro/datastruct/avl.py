"""AVL tree — the road not taken.

§6 of the paper: "For our particular case, the red-black tree turned out to
be more efficient than other self-balancing binary search trees such as AVL
trees."  We keep a full AVL implementation so that the design choice can be
reproduced as an ablation (``benchmarks/bench_trees.py`` replays Eunomia's
insert / pop-prefix access pattern against both structures).

Same interface as :class:`repro.datastruct.rbtree.RedBlackTree`.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

__all__ = ["AVLTree"]


class _Node:
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key: Any, value: Any):
        self.key = key
        self.value = value
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.height = 1


def _height(node: Optional[_Node]) -> int:
    return node.height if node is not None else 0


def _update(node: _Node) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node: _Node) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(y: _Node) -> _Node:
    x = y.left
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rotate_left(x: _Node) -> _Node:
    y = x.right
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _rebalance(node: _Node) -> _Node:
    _update(node)
    bf = _balance_factor(node)
    if bf > 1:
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if bf < -1:
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AVLTree:
    """Ordered map with the strict AVL balance condition."""

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: Any) -> bool:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return True
        return False

    def get(self, key: Any, default: Any = None) -> Any:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return node.value
        return default

    def insert(self, key: Any, value: Any) -> None:
        """Insert or overwrite ``key``."""

        def rec(node: Optional[_Node]) -> _Node:
            if node is None:
                self._size += 1
                return _Node(key, value)
            if key < node.key:
                node.left = rec(node.left)
            elif node.key < key:
                node.right = rec(node.right)
            else:
                node.value = value
                return node
            return _rebalance(node)

        self._root = rec(self._root)

    def delete(self, key: Any) -> Any:
        """Remove ``key`` and return its value; raises KeyError if absent."""
        found: list[Any] = []

        def rec(node: Optional[_Node]) -> Optional[_Node]:
            if node is None:
                raise KeyError(key)
            if key < node.key:
                node.left = rec(node.left)
            elif node.key < key:
                node.right = rec(node.right)
            else:
                found.append(node.value)
                if node.left is None:
                    self._size -= 1
                    return node.right
                if node.right is None:
                    self._size -= 1
                    return node.left
                successor = node.right
                while successor.left is not None:
                    successor = successor.left
                node.key, node.value = successor.key, successor.value

                def del_min(n: _Node) -> Optional[_Node]:
                    if n.left is None:
                        self._size -= 1
                        return n.right
                    n.left = del_min(n.left)
                    return _rebalance(n)

                node.right = del_min(node.right)
            return _rebalance(node)

        self._root = rec(self._root)
        return found[0]

    def min_item(self) -> Tuple[Any, Any]:
        if self._root is None:
            raise KeyError("min_item of empty tree")
        node = self._root
        while node.left is not None:
            node = node.left
        return node.key, node.value

    def pop_min(self) -> Tuple[Any, Any]:
        """Remove and return the smallest (key, value)."""
        if self._root is None:
            raise KeyError("pop_min of empty tree")
        item: list[Tuple[Any, Any]] = []

        def rec(node: _Node) -> Optional[_Node]:
            if node.left is None:
                item.append((node.key, node.value))
                self._size -= 1
                return node.right
            node.left = rec(node.left)
            return _rebalance(node)

        self._root = rec(self._root)
        return item[0]

    def pop_leq(self, bound: Any) -> list:
        """Remove every entry with ``key <= bound``; return them in order."""
        out = []
        while self._root is not None:
            node = self._root
            while node.left is not None:
                node = node.left
            if bound < node.key:
                break
            out.append(self.pop_min())
        return out

    def drop_leq(self, bound: Any) -> int:
        """Remove every entry with ``key <= bound``; return only the count."""
        dropped = 0
        while self._root is not None:
            node = self._root
            while node.left is not None:
                node = node.left
            if bound < node.key:
                break
            self.pop_min()
            dropped += 1
        return dropped

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """In-order iteration."""
        stack: list[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def validate(self) -> None:
        """Assert AVL balance and BST order (tests only)."""

        def walk(node: Optional[_Node], lo, hi) -> int:
            if node is None:
                return 0
            if lo is not None:
                assert lo < node.key
            if hi is not None:
                assert node.key < hi
            lh = walk(node.left, lo, node.key)
            rh = walk(node.right, node.key, hi)
            assert abs(lh - rh) <= 1, "AVL balance violated"
            assert node.height == 1 + max(lh, rh), "stale height"
            return node.height

        walk(self._root, None, None)
        assert self._size == sum(1 for _ in self.items()), "size out of sync"
