"""GentleRain (Du et al., SoCC'14): scalar global stable time.

Causal metadata is over-compressed into a single physical-clock timestamp
per update; a remote update is visible once the datacenter-wide GST covers
it.  Consequences reproduced here, as in the paper's evaluation:

* cheapest per-op metadata handling of the causal systems (best throughput
  among the global-stabilization baselines, Figure 5);
* visibility latency floored by the *farthest* datacenter regardless of
  where the update came from — the GST cannot exceed what heartbeats from
  every DC support (Figure 6 left: no update visible with less than ~40 ms
  extra delay on the near pair).

One modelling note: GentleRain tags updates with pure physical clocks and
*delays* an update whose dependency timestamp is at or above the local
clock.  With NTP-disciplined clocks the wait is sub-millisecond; we use the
hybrid-clock bump instead of an artificial sleep, which has the same
ordering effect and differs only by that negligible wait (§3.2 of the
Eunomia paper discusses exactly this trade).

The deferred-update set is run-aware by default (``pending_backend="runs"``):
each remote sibling's stream arrives over a FIFO link with strictly
increasing timestamps, so a per-origin :class:`~repro.datastruct.runbuffer.
RunBuffer` gives O(1) deferral and a merge-on-release drain — the same
monotonicity argument as Eunomia's own buffer.  ``"heap"`` retains the
classic global binary heap as an ablation.
"""

from __future__ import annotations

import warnings

import heapq
from typing import Optional

from ..calibration import Calibration
from ..clocks.physical import PhysicalClock
from ..core.messages import ClientUpdate
from ..core.protocols import register_protocol
from ..datastruct.runbuffer import RunBuffer
from ..geo.system import GeoSystem, GeoSystemSpec, build_geo_system
from ..kvstore.types import Update
from ..metrics.collector import MetricsHub
from ..sim.env import Environment
from ..sim.process import CostModel
from ..workload.generator import WorkloadSpec
from .gst import GstPartition, GstProtocol, GstTimings, check_pending_backend

__all__ = ["GentleRainPartition", "GentleRainProtocol",
           "build_gentlerain_system"]

PENDING_BACKENDS = ("runs", "heap")


class GentleRainPartition(GstPartition):
    """GST flavor: scalar timestamps, visibility gate ``ts <= GST``."""

    flavor = "gentlerain"

    @staticmethod
    def summary_width_static(n_dcs: int) -> int:
        return 1

    def __init__(self, env: Environment, name: str, dc_id: int, index: int,
                 n_dcs: int, clock: PhysicalClock, timings: GstTimings,
                 calibration: Optional[Calibration] = None,
                 metrics: Optional[MetricsHub] = None,
                 pending_backend: str = "runs"):
        cal = calibration or Calibration()
        cost_model = CostModel(costs={
            "ClientRead": (cal.cost("partition_read")
                           + cal.cost("gentlerain_read_extra")),
            "ClientUpdate": (cal.cost("partition_update")
                             + cal.cost("gentlerain_update_extra")),
            "RemoteData": cal.cost("partition_apply_remote"),
            "GstHeartbeat": cal.overhead("gst_heartbeat"),
            "GstReport": cal.overhead("gst_heartbeat"),
            "GstBroadcast": cal.overhead("gentlerain_gst_round"),
        })
        super().__init__(env, name, dc_id, index, n_dcs, clock, timings,
                         summary_width=1, cost_model=cost_model,
                         metrics=metrics)
        check_pending_backend(pending_backend, PENDING_BACKENDS)
        self.pending_backend = pending_backend
        if pending_backend == "runs":
            self._pending = RunBuffer()

    # -- timestamping ----------------------------------------------------
    def _stamp(self, msg: ClientUpdate) -> Update:
        dependency = msg.client_vts[0]
        ts = self.hlc.update(dependency)
        self._seq = getattr(self, "_seq", 0) + 1
        return Update(
            key=msg.key, value=msg.value, origin_dc=self.dc_id,
            partition_index=self.index, seq=self._seq, ts=ts, vts=(ts,),
            commit_time=self.now, value_bytes=msg.value_bytes,
        )

    # -- visibility gate ---------------------------------------------------
    def _releasable(self, update: Update) -> bool:
        return update.ts <= self.summary[0]

    def _defer(self, update: Update, arrival: float) -> None:
        if self.pending_backend == "runs":
            # O(1): each sibling's stream is FIFO with strictly increasing
            # hybrid timestamps, so per-origin runs stay sorted by appending.
            self._pending.add(update.ts, update.origin_dc, update.seq,
                              (update, arrival))
            return
        self._pending_seq += 1
        heapq.heappush(self._pending,
                       (update.ts, self._pending_seq, update, arrival))

    def _release_ready(self) -> None:
        gst = self.summary[0]
        if self.pending_backend == "runs":
            # Batched drain: one covered-prefix pop, one hoisted install
            # loop (see GstPartition._install_many) — same installs in the
            # same order as the historical per-op calls.
            self._install_many(self._pending.pop_stable(gst))
            return
        released = []
        while self._pending and self._pending[0][0] <= gst:
            _, _, update, arrival = heapq.heappop(self._pending)
            released.append((update, arrival))
        self._install_many(released)

    # -- stabilization contribution ---------------------------------------
    def _local_summary(self) -> tuple:
        # Partial placement: the scalar minimum spans only the tracked
        # origins (DCs that also store this partition, plus ourselves) —
        # an origin with no sibling here sends no heartbeats, and letting
        # its frozen VV entry into the min would pin the GST at zero.
        if self.tracked is None:
            return (min(self.vv),)
        return (min(self.vv[d] for d in self.tracked),)


class GentleRainProtocol(GstProtocol):
    """Deployment plugin: GST partitions with the scalar summary; the
    ``pending_backend`` axis ("runs" default, "heap" ablation) threads
    through the spine's option dict."""

    partition_cls = GentleRainPartition
    pending_backends = PENDING_BACKENDS


register_protocol(GentleRainProtocol())


def build_gentlerain_system(spec: GeoSystemSpec, workload: WorkloadSpec,
                            timings: Optional[GstTimings] = None,
                            metrics: Optional[MetricsHub] = None,
                            history=None,
                            pending_backend: str = "runs") -> GeoSystem:
    """Assemble a GentleRain deployment on the shared frame.

    .. deprecated::
        Call ``build_geo_system("gentlerain", ...)``; this wrapper forwards
        verbatim and will be removed.
    """
    warnings.warn(
        "build_gentlerain_system is deprecated; use "
        "build_geo_system('gentlerain', ...)",
        DeprecationWarning, stacklevel=2,
    )
    return build_geo_system("gentlerain", spec, workload, metrics=metrics,
                            history=history, timings=timings,
                            pending_backend=pending_backend)
