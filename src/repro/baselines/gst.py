"""Global-stabilization machinery shared by GentleRain and Cure.

Both baselines avoid sequencers by running a periodic, datacenter-wide
computation: each partition tracks a version vector ``VV[d]`` — the largest
timestamp received from its sibling partition in datacenter ``d`` (advanced
by remote updates and by periodic cross-DC heartbeats) — and periodically
reports a local stable summary to a per-DC aggregator, which broadcasts the
minimum back.  A remote update becomes *visible* only once the global
summary covers it:

* **GentleRain** compresses everything into one scalar GST: an update with
  timestamp ``ts`` is visible when ``GST >= ts``.  Cheap, but the minimum
  spans *all* datacenters, so an update from a nearby DC waits for heartbeat
  round-trips from the farthest one (false dependencies — the 40 ms floor in
  Figure 6 left).
* **Cure** keeps a vector GSV (entry per DC): visibility only waits for the
  entries the update actually depends on — better latency, heavier metadata
  (the throughput gap between the two in Figure 5).

The protocol cost is charged in two places, matching the paper's analysis:
a per-operation metadata-handling surcharge (Cure ≈ 2× GentleRain), and a
per-round stabilization cost at every partition — which is why shrinking the
"clock computation interval" hurts throughput (Figure 1).

:class:`GstPartition` implements the whole machinery generically over the
summary width; the concrete flavors are thin subclasses in
:mod:`repro.baselines.gentlerain` and :mod:`repro.baselines.cure`, each
deployed over the shared spine by a :class:`GstProtocol` plugin
(:mod:`repro.core.protocols`) — the only protocol-specific deployment
pieces are the partitions themselves and the per-DC aggregator wiring.
"""

from __future__ import annotations

import warnings

from dataclasses import dataclass
from typing import Optional, Sequence

from ..clocks.hlc import HybridLogicalClock
from ..clocks.physical import PhysicalClock
from ..clocks.vector import vc_merge, vc_zero
from ..core.messages import (
    ClientRead,
    ClientReadReply,
    ClientUpdate,
    ClientUpdateReply,
    RemoteData,
)
from ..core.protocols import ProtocolSpec, SiteContext, SitePlan
from ..geo.system import GeoSystem, GeoSystemSpec, build_geo_system
from ..kvstore.storage import VersionedStore
from ..kvstore.types import Update, Versioned
from ..metrics.collector import MetricsHub, NullMetrics
from ..sim.env import Environment
from ..sim.process import CostModel, Process
from ..workload.generator import WorkloadSpec
from .messages import GstBroadcast, GstHeartbeat, GstReport

__all__ = ["GstTimings", "GstPartition", "GstProtocol", "build_gst_system",
           "check_pending_backend", "UNTRACKED"]

#: Summary entry for an origin DC a partition does not track (partial
#: placement: no sibling there).  Acts as +inf under the aggregator's
#: elementwise min, so untracked origins never cap — and never stall —
#: the DC-wide GST/GSV.  Releasing on a sentinel entry is safe: if *no*
#: resident partition tracks origin ``d``, then no partition stored both
#: here and at ``d`` exists, so no dependency on ``d`` can be resident
#: here either (it could never be read at this DC).
UNTRACKED = 1 << 62


def check_pending_backend(pending_backend: str, allowed: Sequence) -> None:
    """Validate a flavor's deferred-update backend choice (one message,
    shared by the plugins' ``prepare`` and the partitions themselves)."""
    if pending_backend not in allowed:
        raise ValueError(
            f"unknown pending backend {pending_backend!r} "
            f"(expected one of {', '.join(allowed)})"
        )


@dataclass
class GstTimings:
    """Stabilization cadence (paper §7.2: heartbeats 10 ms, GST 5 ms)."""

    heartbeat_interval: float = 0.010
    gst_interval: float = 0.005

    #: Aggregator liveness bound: a partition that has seen no GST/GSV
    #: broadcast for this long presumes the aggregator dead and advances
    #: its aggregator view round-robin (``None`` → ``10 × gst_interval``).
    #: The same bound ages out reports at the aggregator, so a dead
    #: partition stops capping the minimum.  This is the bounded timeout
    #: behind aggregator re-election; without it a crashed aggregator
    #: freezes the whole DC's stabilization forever.
    aggregator_timeout: Optional[float] = None


class GstPartition(Process):
    """A partition of a global-stabilization store (GentleRain/Cure core).

    Subclasses define ``flavor``, the summary width (1 or M), timestamping,
    and the release predicate.
    """

    #: overridden by subclasses
    flavor = "gst"

    def __init__(self, env: Environment, name: str, dc_id: int, index: int,
                 n_dcs: int, clock: PhysicalClock, timings: GstTimings,
                 summary_width: int,
                 cost_model: CostModel,
                 metrics: Optional[MetricsHub] = None):
        super().__init__(env, name, site=dc_id, cost_model=cost_model)
        self.dc_id = dc_id
        self.index = index
        self.n_dcs = n_dcs
        self.timings = timings
        self.summary_width = summary_width
        self.metrics = metrics or NullMetrics()
        self.clock = clock
        self.hlc = HybridLogicalClock(clock)
        self.visible = VersionedStore()
        self.vv = [0] * n_dcs                  # VV[d]: max ts seen from dc d
        self.summary = (0,) * summary_width    # GST (w=1) or GSV (w=M)
        self.siblings: dict[int, Process] = {}
        self.aggregator: Optional[Process] = None
        #: every partition knows the DC roster now (re-election needs it);
        #: empty for bare partitions wired by hand in unit tests.  Under a
        #: partial placement the roster holds only the DC's *resident*
        #: partitions, and ``roster_pos`` is this partition's position in
        #: it (== ``index`` under full replication) — all aggregator
        #: bookkeeping (views, report keys, broadcast senders) runs on
        #: roster positions, never raw partition indices.
        self.local_partitions: list[Process] = []
        self.roster_pos = index
        #: origins contributing to the stable summary: the DCs that also
        #: store this partition (ascending, including this DC).  None =
        #: all M DCs — full replication.
        self.tracked: Optional[tuple] = None
        self._reports: dict[int, tuple] = {}        # current aggregator only
        self._report_seen: dict[int, float] = {}    # report freshness times
        #: which roster index this partition currently believes aggregates
        self.aggregator_view = 0
        self._last_broadcast_seen = 0.0
        self._tenure_start = 0.0                    # when we last took office
        self._aggregate_task = None
        self.aggregator_failovers = 0
        # Flavor-specific deferred-update container: GentleRain swaps in a
        # RunBuffer ("runs" backend) or keeps this heap-ordered list; Cure
        # scans a plain list (vector gates are not totally ordered).  All
        # choices support len() for pending_count().
        self._pending = []
        self._pending_seq = 0
        self.local_updates = 0
        self.remote_applies = 0

    # ------------------------------------------------------------------
    # Wiring / lifecycle
    # ------------------------------------------------------------------
    def set_sibling(self, dc_id: int, partition: Process) -> None:
        if dc_id != self.dc_id:
            self.siblings[dc_id] = partition

    @property
    def is_aggregator(self) -> bool:
        return self.aggregator_view == self.roster_pos

    def lane_of(self, msg) -> str:
        # Same background-replication lane as every other store here: remote
        # installs must not queue behind foreground client operations.
        if type(msg).__name__ == "RemoteData":
            return "replication"
        return "cpu"

    def start(self) -> None:
        self.periodic(self.timings.heartbeat_interval, self._send_heartbeats)
        self.periodic(self.timings.gst_interval, self._report,
                      phase=self.timings.gst_interval * 0.5)
        # Fresh grace periods: a just-(re)started partition gives the
        # aggregator a full timeout before suspecting it, and — if it is the
        # aggregator — gives every roster member a full timeout to report
        # before aggregating without them.
        self._last_broadcast_seen = self.now
        self._tenure_start = self.now
        if self.is_aggregator:
            self._arm_aggregate()

    def _arm_aggregate(self) -> None:
        if self._aggregate_task is not None:
            self._aggregate_task.stop()
        self._aggregate_task = self.periodic(self.timings.gst_interval,
                                             self._aggregate,
                                             phase=self.timings.gst_interval)

    def _aggregator_timeout(self) -> float:
        timeout = self.timings.aggregator_timeout
        return timeout if timeout is not None else 10 * self.timings.gst_interval

    def recover(self) -> None:
        """Restart after a crash-stop with protocol state intact.

        Crashing bumps the process epoch, which kills the periodic
        heartbeat/report/aggregate tasks — re-arm them so the partition
        resumes participating in stabilization (its VV/summary then catch
        up from fresh heartbeats; updates dropped while down are simply
        lost, as for any crash-stop store without a recovery log).
        """
        super().recover()
        self.start()

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------
    def on_client_read(self, msg: ClientRead, src: Process) -> None:
        version = self.visible.get(msg.key)
        if version is None:
            reply = ClientReadReply(msg.key, None,
                                    vc_zero(self.summary_width),
                                    msg.request_id)
        else:
            reply = ClientReadReply(msg.key, version.value, version.vts,
                                    msg.request_id)
        self.send(src, reply)

    def on_client_update(self, msg: ClientUpdate, src: Process) -> None:
        update = self._stamp(msg)
        self.visible.put(update.key, Versioned(update.value, update.ts,
                                               self.dc_id, update.vts))
        self.local_updates += 1
        tracer = self.metrics.tracer
        if tracer is not None:
            issued = msg.issued_at if msg.issued_at > 0.0 else None
            span = tracer.commit(update, self.now, issued_at=issued)
            if span is not None and self.siblings:
                tracer.stage(update, "replicate", self.now, self.dc_id)
        data = RemoteData(update)
        self.multicast(self.siblings.values(), data)
        self.send(src, ClientUpdateReply(update.vts, msg.request_id))

    def _stamp(self, msg: ClientUpdate) -> Update:
        """Flavor-specific timestamping; must keep Property-1-style order."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Replication in
    # ------------------------------------------------------------------
    def on_remote_data(self, msg: RemoteData, src: Process) -> None:
        update = msg.update
        k = update.origin_dc
        if update.ts > self.vv[k]:
            self.vv[k] = update.ts
        if self._releasable(update):
            self._install(update, arrival=self.now)
        else:
            self._defer(update, arrival=self.now)

    def _releasable(self, update: Update) -> bool:
        raise NotImplementedError

    def _defer(self, update: Update, arrival: float) -> None:
        """Queue an update whose visibility the summary does not yet cover."""
        raise NotImplementedError

    def _release_ready(self) -> None:
        """Install every deferred update the new summary covers."""
        raise NotImplementedError

    def _install(self, update: Update, arrival: float) -> None:
        self.visible.put(update.key, Versioned(update.value, update.ts,
                                               update.origin_dc, update.vts))
        self.remote_applies += 1
        now = self.now
        k, m = update.origin_dc, self.dc_id
        extra_ms = max(0.0, (now - arrival) * 1e3)
        total_ms = (now - update.commit_time) * 1e3
        self.metrics.point(f"vis_extra_ms:{k}->{m}", now, extra_ms)
        self.metrics.point(f"vis_total_ms:{k}->{m}", now, total_ms)
        tracer = self.metrics.tracer
        if tracer is not None:
            tracer.stage_once(update, "visible", now, m)
        slo = self.metrics.slo
        if slo is not None:
            slo.visibility(k, m, total_ms, extra_ms)

    def _install_many(self, items) -> None:
        """Batched deferred-set drain: install ``(update, arrival)`` pairs.

        Call-for-call identical to looping :meth:`_install` — same LWW
        puts, same metric points, same order — with the per-item handle
        resolution (store put, metrics point, tracer, SLO sink) hoisted
        out of the loop.  A summary broadcast can release hundreds of
        deferred updates at once, so this loop is the GST/Cure analogue
        of Eunomia's batched apply path.
        """
        if not items:
            return
        if type(self)._install is not GstPartition._install:
            # Subclass hook (recording/ablation overrides): keep the
            # per-op call so the override observes every install.
            for update, arrival in items:
                self._install(update, arrival)
            return
        put = self.visible.put
        point = self.metrics.point
        tracer = self.metrics.tracer
        slo = self.metrics.slo
        now = self.now
        m = self.dc_id
        for update, arrival in items:
            put(update.key, Versioned(update.value, update.ts,
                                      update.origin_dc, update.vts))
            k = update.origin_dc
            extra_ms = max(0.0, (now - arrival) * 1e3)
            total_ms = (now - update.commit_time) * 1e3
            point(f"vis_extra_ms:{k}->{m}", now, extra_ms)
            point(f"vis_total_ms:{k}->{m}", now, total_ms)
            if tracer is not None:
                tracer.stage_once(update, "visible", now, m)
            if slo is not None:
                slo.visibility(k, m, total_ms, extra_ms)
        self.remote_applies += len(items)

    # ------------------------------------------------------------------
    # Stabilization rounds
    # ------------------------------------------------------------------
    def _send_heartbeats(self) -> None:
        # Heartbeat timestamps must never run ahead of a later update's
        # timestamp; folding the value into the hybrid clock guarantees it.
        ts = max(self.clock.read_us(), self.hlc.last)
        self.hlc.observe(ts)
        beat = GstHeartbeat(self.dc_id, self.index, ts)
        self.multicast(self.siblings.values(), beat)

    def on_gst_heartbeat(self, msg: GstHeartbeat, src: Process) -> None:
        if msg.ts > self.vv[msg.origin_dc]:
            self.vv[msg.origin_dc] = msg.ts

    def _local_summary(self) -> tuple:
        """The partition's contribution to the DC-wide minimum."""
        raise NotImplementedError

    def _report(self) -> None:
        # Aggregator liveness check rides the report tick (no extra timer,
        # no extra messages): broadcasts normally arrive every gst_interval,
        # so a silence of aggregator_timeout means the aggregator is gone —
        # advance the view round-robin.  Every partition advances from the
        # same view, so they converge on the same successor; if that one is
        # dead too, the next timeout advances again (recovery is bounded by
        # roster_size × timeout).  Bare unit-test partitions (no roster)
        # keep the historical static wiring.
        if (self.local_partitions
                and self.now - self._last_broadcast_seen
                > self._aggregator_timeout()):
            self._advance_aggregator()
        self.vv[self.dc_id] = max(self.vv[self.dc_id], self.clock.read_us())
        self.send(self.aggregator,
                  GstReport(self.roster_pos, self._local_summary()))

    def _advance_aggregator(self) -> None:
        roster = self.local_partitions
        self.aggregator_view = (self.aggregator_view + 1) % len(roster)
        self.aggregator = roster[self.aggregator_view]
        self._last_broadcast_seen = self.now   # full grace for the successor
        self.aggregator_failovers += 1
        if self.is_aggregator:
            self._tenure_start = self.now
            self._arm_aggregate()
        elif self._aggregate_task is not None:
            self._aggregate_task.stop()
            self._aggregate_task = None

    def on_gst_report(self, msg: GstReport, src: Process) -> None:
        self._reports[msg.partition_index] = msg.value
        self._report_seen[msg.partition_index] = self.now

    def _aggregate(self) -> None:
        if not self.is_aggregator:
            return  # stood down with a firing still queued
        now = self.now
        timeout = self._aggregator_timeout()
        values = []
        for i in range(max(len(self.local_partitions), len(self._reports))):
            value = self._reports.get(i)
            seen = self._report_seen.get(i)
            if value is not None and (seen is None or now - seen <= timeout):
                # Fresh report (reports planted directly by tests carry no
                # freshness stamp and count as fresh).
                values.append(value)
            elif value is None and now - self._tenure_start <= timeout:
                # Never reported, but this aggregator is newly in office:
                # wait the full grace before aggregating without it — on a
                # healthy bootstrap this reduces to the historical
                # "wait until every partition has reported once".
                return
        if not values:
            return
        minimum = tuple(min(v[i] for v in values)
                        for i in range(self.summary_width))
        broadcast = GstBroadcast(minimum, self.roster_pos)
        self.multicast(self.local_partitions, broadcast)

    def on_gst_broadcast(self, msg: GstBroadcast, src: Process) -> None:
        self._last_broadcast_seen = self.now
        if msg.sender != self.aggregator_view and self.local_partitions:
            # Someone else is aggregating.  Ω-style min-index tie-break: a
            # partition that is itself aggregating stands down only for a
            # lower-index sender (so a recovered index-0 aggregator retakes
            # office and a transient dual-aggregator episode converges
            # instead of flapping); everyone else adopts the sender
            # unconditionally.  Duplicate aggregation is safe meanwhile —
            # summaries only ever merge monotonically.
            if not (self.is_aggregator and msg.sender > self.roster_pos):
                self.aggregator_view = msg.sender
                self.aggregator = self.local_partitions[msg.sender]
                if self._aggregate_task is not None and not self.is_aggregator:
                    self._aggregate_task.stop()
                    self._aggregate_task = None
        merged = vc_merge(self.summary, msg.value)
        if merged != self.summary:
            self.summary = merged
            self._release_ready()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def datastore(self) -> VersionedStore:
        return self.visible

    def pending_count(self) -> int:
        return len(self._pending)


class GstProtocol(ProtocolSpec):
    """Deployment plugin shared by the global-stabilization flavors.

    The only protocol-specific pieces of a GST datacenter are the
    partitions (flavor subclass of :class:`GstPartition`) and the per-DC
    aggregator wiring; there is no separate stabilizer process and no
    remote receiver — updates travel sibling→sibling and visibility is
    gated locally by the summary.  Everything else (frame, clocks,
    clients, failure injection) comes from the spine.
    """

    #: flavor subclass; overridden by instances/subclasses
    partition_cls: type = GstPartition
    #: flavors with a deferred-update backend ablation set this to the
    #: allowed backend names, first entry the default; None = no such axis
    pending_backends: Optional[tuple] = None

    def __init__(self, partition_cls: Optional[type] = None):
        if partition_cls is not None:
            self.partition_cls = partition_cls
        self.name = self.partition_cls.flavor

    def client_entries(self, n_dcs: int) -> int:
        return self.partition_cls.summary_width_static(n_dcs)

    def option_names(self) -> tuple:
        if self.pending_backends:
            return ("timings", "pending_backend")
        return ("timings",)

    def prepare(self, spec, options: dict) -> dict:
        options["timings"] = options.get("timings") or GstTimings()
        if self.pending_backends:
            check_pending_backend(
                options.setdefault("pending_backend",
                                   self.pending_backends[0]),
                self.pending_backends)
        return options

    def partition_kwargs(self, options: dict) -> dict:
        """Extra per-partition constructor kwargs (flavor tunables)."""
        if self.pending_backends:
            return {"pending_backend": options["pending_backend"]}
        return {}

    def build_site(self, site: SiteContext) -> SitePlan:
        extra = self.partition_kwargs(site.options)
        # All N constructed in index order for clock-stream parity even
        # under partial placement; only residents join the roster below.
        partitions = [
            self.partition_cls(site.env, site.pname(i), site.dc_id, i,
                               site.n_dcs, site.clock(),
                               site.options["timings"],
                               calibration=site.calibration,
                               metrics=site.metrics, **extra)
            for i in range(site.n_partitions)
        ]
        pmap = site.partial_placement()
        roster = (partitions if pmap is None else
                  [partitions[i]
                   for i in pmap.resident_partitions(site.dc_id)])
        aggregator = roster[0]
        for pos, partition in enumerate(roster):
            # Every resident partition knows the roster: re-election
            # retargets reports and re-arms aggregation without rewiring.
            partition.local_partitions = list(roster)
            partition.aggregator = aggregator
            partition.roster_pos = pos
            if pmap is not None:
                # Stable summaries span only the origins that also store
                # this partition — the placement-aware stable cut.
                partition.tracked = pmap.residents(partition.index)
        return SitePlan(partitions=partitions)


def build_gst_system(spec: GeoSystemSpec, workload: WorkloadSpec,
                     partition_cls, timings: Optional[GstTimings] = None,
                     metrics: Optional[MetricsHub] = None,
                     history=None, **options) -> GeoSystem:
    """Assemble a GST-style deployment for an arbitrary flavor class.

    The named flavors go through the registry (``build_geo_system(
    "gentlerain", ...)``); this entry point exists for ad-hoc flavor
    subclasses in tests and ablations.

    .. deprecated::
        Call ``build_geo_system(GstProtocol(cls), ...)`` directly; this
        wrapper forwards verbatim and will be removed.
    """
    warnings.warn(
        "build_gst_system is deprecated; use "
        "build_geo_system(GstProtocol(partition_cls), ...)",
        DeprecationWarning, stacklevel=2,
    )
    return build_geo_system(GstProtocol(partition_cls), spec, workload,
                            metrics=metrics, history=history,
                            timings=timings, **options)
