"""Shared scaffolding for the baseline system builders.

All baselines deploy over the identical frame as EunomiaKV — same topology,
same NTP-disciplined clocks, same ring, same closed-loop clients — so that
every measured difference is attributable to the protocol (the paper makes
the same point: GentleRain and Cure "are implemented using the codebase of
EunomiaKV").
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..calibration import Calibration
from ..clocks.ntp import NtpSynchronizer
from ..core.client import SessionClient
from ..geo.system import GeoSystem, GeoSystemSpec
from ..kvstore.ring import ConsistentHashRing
from ..metrics.collector import MetricsHub
from ..sim.env import Environment
from ..sim.network import Network
from ..workload.generator import WorkloadSpec

__all__ = ["GeoFrame", "BaselineDatacenter", "build_frame", "attach_clients"]


class GeoFrame:
    """Environment + network + clock discipline + ring for one experiment."""

    def __init__(self, env: Environment, ntp: NtpSynchronizer,
                 ring: ConsistentHashRing, metrics: MetricsHub,
                 spec: GeoSystemSpec):
        self.env = env
        self.ntp = ntp
        self.ring = ring
        self.metrics = metrics
        self.spec = spec


def build_frame(spec: GeoSystemSpec,
                metrics: Optional[MetricsHub] = None) -> GeoFrame:
    metrics = metrics or MetricsHub()
    env = Environment(seed=spec.seed)
    Network(env, spec.topology())
    ntp = NtpSynchronizer(env, residual_us=spec.ntp_residual_us)
    ring = ConsistentHashRing(spec.partitions_per_dc)
    return GeoFrame(env, ntp, ring, metrics, spec)


class BaselineDatacenter:
    """A datacenter handle with the interface :class:`GeoSystem` expects.

    ``extras`` are non-partition processes (sequencers, receivers,
    aggregators) that need ``start()`` at boot.
    """

    def __init__(self, dc_id: int, partitions: Sequence,
                 extras: Sequence = ()):
        self.dc_id = dc_id
        self.partitions = list(partitions)
        self.extras = list(extras)

    def start(self) -> None:
        for proc in self.partitions:
            start = getattr(proc, "start", None)
            if start is not None:
                start()
        for proc in self.extras:
            start = getattr(proc, "start", None)
            if start is not None:
                start()

    def _stores(self):
        for partition in self.partitions:
            yield partition.datastore()

    def store_snapshot(self) -> dict:
        merged: dict = {}
        for store in self._stores():
            merged.update(store.snapshot())
        return merged

    def fingerprint(self) -> int:
        acc = 0
        for store in self._stores():
            acc ^= store.fingerprint()
        return acc


def attach_clients(frame: GeoFrame, workload: WorkloadSpec,
                   datacenters: Sequence[BaselineDatacenter],
                   n_entries: int, history=None) -> list[SessionClient]:
    """One set of closed-loop sessions per datacenter (identical across protocols)."""
    built = workload.build()
    clients = []
    for dc in datacenters:
        for c in range(frame.spec.clients_per_dc):
            clients.append(SessionClient(
                frame.env, f"dc{dc.dc_id}/client{c}", dc.dc_id,
                n_entries=n_entries, partitions=dc.partitions,
                ring=frame.ring, workload=built,
                calibration=frame.spec.calibration,
                metrics=frame.metrics, think_time=workload.think_time,
                history=history,
            ))
    return clients
