"""Cure (Akkoorath et al., ICDCS'16): vector global stable time.

The causal-consistency core of Cure, as the Eunomia paper uses it for
comparison: updates carry a vector with one entry per datacenter, partitions
maintain a Global Stable Vector (GSV), and a remote update is visible when
the GSV covers the entries of every *other* datacenter in its dependency
vector.  Compared with GentleRain:

* no false cross-datacenter dependencies → much better visibility latency
  on near pairs (Figure 6 left);
* per-op vector stamping/storage/comparison roughly doubles the metadata
  handling cost, and the per-round stabilization work grows with M → lower
  throughput (Figure 5), and on far pairs the vector buys nothing, so
  GentleRain comes out *ahead* there (Figure 6 right).

The deferred-update set is run-aware by default
(``pending_backend="runs"``), mirroring Eunomia's own buffer and
GentleRain's pending set; ``"scan"`` retains the classic whole-set rescan
as an ablation.  Unlike those two, Cure's release gate is a *vector*
comparison, which admits no total order — see :class:`_PendingRuns` for
why per-origin runs still work.
"""

from __future__ import annotations

import warnings

from collections import deque
from typing import Optional

from ..calibration import Calibration
from ..clocks.physical import PhysicalClock
from ..core.messages import ClientUpdate
from ..core.protocols import register_protocol
from ..geo.system import GeoSystem, GeoSystemSpec, build_geo_system
from ..kvstore.types import Update
from ..metrics.collector import MetricsHub
from ..sim.env import Environment
from ..sim.process import CostModel
from ..workload.generator import WorkloadSpec
from .gst import (
    GstPartition,
    GstProtocol,
    GstTimings,
    UNTRACKED,
    check_pending_backend,
)

__all__ = ["CurePartition", "CureProtocol", "build_cure_system"]

PENDING_BACKENDS = ("runs", "scan")


class _PendingRuns:
    """Per-origin runs for a *vector*-gated pending set.

    Correctness for the non-totally-ordered case: GentleRain's scalar gate
    admits a total order (a heap, or Eunomia-style merged runs), but Cure's
    gate — ``vts[d] <= GSV[d]`` for every remote ``d`` — does not: two
    pending updates can each be blocked by a different vector entry, so no
    single priority admits pop-until-blocked.  Per-origin runs still work,
    on two facts:

    1. Updates from origin ``k`` arrive over one FIFO link (the same-index
       sibling partition) with strictly increasing ``vts[k]`` (hybrid-clock
       Property 2), so appending keeps each run sorted by the origin's own
       entry — O(1) ingestion, no comparisons.
    2. The gate includes the origin's own entry, so any update with
       ``vts[k] > GSV[k]`` is unreleasable *regardless of its other
       entries*.  Scanning only the prefix with ``vts[k] <= GSV[k]`` can
       therefore never miss a releasable update; the suffix is untouched.

    Within that covered prefix an update may still be blocked by *another*
    entry; blocked items are put back at the head in their original
    relative order, which preserves fact 1's sortedness.  The per-round
    cost drops from O(whole pending set) to O(covered prefixes), and
    installs stay deterministic (origins in dict insertion order — the
    order each origin first deferred, itself deterministic under the
    simulator — FIFO within an origin); the final store is
    backend-invariant because installs go through LWW puts.
    """

    __slots__ = ("_runs", "_size")

    def __init__(self) -> None:
        self._runs: dict[int, deque] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, origin: int, update: Update, arrival: float) -> None:
        run = self._runs.get(origin)
        if run is None:
            run = self._runs[origin] = deque()
        run.append((update, arrival))
        self._size += 1

    def pop_covered(self, gsv: tuple, releasable) -> list:
        """Remove and return every releasable (update, arrival), in
        per-origin FIFO order; blocked prefix items stay queued."""
        released = []
        for k, run in self._runs.items():
            blocked = []
            while run and run[0][0].vts[k] <= gsv[k]:
                item = run.popleft()
                if releasable(item[0]):
                    released.append(item)
                    self._size -= 1
                else:
                    blocked.append(item)
            if blocked:
                run.extendleft(reversed(blocked))
        return released


class CurePartition(GstPartition):
    """GSV flavor: vector timestamps, per-entry visibility gate."""

    flavor = "cure"

    @staticmethod
    def summary_width_static(n_dcs: int) -> int:
        return n_dcs

    def __init__(self, env: Environment, name: str, dc_id: int, index: int,
                 n_dcs: int, clock: PhysicalClock, timings: GstTimings,
                 calibration: Optional[Calibration] = None,
                 metrics: Optional[MetricsHub] = None,
                 pending_backend: str = "runs"):
        cal = calibration or Calibration()
        cost_model = CostModel(costs={
            "ClientRead": (cal.cost("partition_read")
                           + cal.cost("cure_read_extra")),
            "ClientUpdate": (cal.cost("partition_update")
                             + cal.cost("cure_update_extra")),
            "RemoteData": cal.cost("partition_apply_remote"),
            "GstHeartbeat": cal.overhead("gst_heartbeat"),
            "GstReport": cal.overhead("gst_heartbeat"),
            "GstBroadcast": cal.overhead("cure_gst_round"),
        })
        super().__init__(env, name, dc_id, index, n_dcs, clock, timings,
                         summary_width=n_dcs, cost_model=cost_model,
                         metrics=metrics)
        check_pending_backend(pending_backend, PENDING_BACKENDS)
        self.pending_backend = pending_backend
        if pending_backend == "runs":
            self._pending = _PendingRuns()

    # -- timestamping ----------------------------------------------------
    def _stamp(self, msg: ClientUpdate) -> Update:
        m = self.dc_id
        ts = self.hlc.update(msg.client_vts[m])
        vts = msg.client_vts[:m] + (ts,) + msg.client_vts[m + 1:]
        self._seq = getattr(self, "_seq", 0) + 1
        return Update(
            key=msg.key, value=msg.value, origin_dc=m,
            partition_index=self.index, seq=self._seq, ts=ts, vts=vts,
            commit_time=self.now, value_bytes=msg.value_bytes,
        )

    # -- visibility gate ---------------------------------------------------
    def _releasable(self, update: Update) -> bool:
        gsv = self.summary
        for d in range(self.n_dcs):
            if d == self.dc_id:
                continue  # local dependencies are locally visible already
            if update.vts[d] > gsv[d]:
                return False
        return True

    def _defer(self, update: Update, arrival: float) -> None:
        if self.pending_backend == "runs":
            self._pending.add(update.origin_dc, update, arrival)
            return
        self._pending.append((update, arrival))

    def _release_ready(self) -> None:
        if self.pending_backend == "runs":
            # Batched drain (GstPartition._install_many): installs are
            # summary-gated, never store-gated, so draining after the pop
            # is order-identical to interleaved per-op installs.
            self._install_many(self._pending.pop_covered(
                self.summary, self._releasable))
            return
        # Classic ablation: rescan the whole pending set every round.
        still_pending = []
        released = []
        for item in self._pending:
            if self._releasable(item[0]):
                released.append(item)
            else:
                still_pending.append(item)
        self._pending = still_pending
        self._install_many(released)

    # -- stabilization contribution ---------------------------------------
    def _local_summary(self) -> tuple:
        # Partial placement: entries for origins this partition does not
        # track report the UNTRACKED sentinel (+inf under the aggregator's
        # min), so the DC-wide GSV entry for origin d is bounded only by
        # the partitions that actually receive d's stream — and is the
        # sentinel itself when none does, releasing dependencies on d
        # unconditionally (nothing from d can be resident here then).
        if self.tracked is None:
            return tuple(self.vv)
        return tuple(self.vv[d] if d in self.tracked else UNTRACKED
                     for d in range(self.n_dcs))


class CureProtocol(GstProtocol):
    """Deployment plugin: GST partitions with the vector summary; the
    ``pending_backend`` axis ("runs" default, "scan" ablation) threads
    through the spine's option dict."""

    partition_cls = CurePartition
    pending_backends = PENDING_BACKENDS


register_protocol(CureProtocol())


def build_cure_system(spec: GeoSystemSpec, workload: WorkloadSpec,
                      timings: Optional[GstTimings] = None,
                      metrics: Optional[MetricsHub] = None,
                      history=None,
                      pending_backend: str = "runs") -> GeoSystem:
    """Assemble a Cure deployment on the shared frame.

    .. deprecated::
        Call ``build_geo_system("cure", ...)``; this wrapper forwards
        verbatim and will be removed.
    """
    warnings.warn(
        "build_cure_system is deprecated; use "
        "build_geo_system('cure', ...)",
        DeprecationWarning, stacklevel=2,
    )
    return build_geo_system("cure", spec, workload, metrics=metrics,
                            history=history, timings=timings,
                            pending_backend=pending_backend)
