"""Cure (Akkoorath et al., ICDCS'16): vector global stable time.

The causal-consistency core of Cure, as the Eunomia paper uses it for
comparison: updates carry a vector with one entry per datacenter, partitions
maintain a Global Stable Vector (GSV), and a remote update is visible when
the GSV covers the entries of every *other* datacenter in its dependency
vector.  Compared with GentleRain:

* no false cross-datacenter dependencies → much better visibility latency
  on near pairs (Figure 6 left);
* per-op vector stamping/storage/comparison roughly doubles the metadata
  handling cost, and the per-round stabilization work grows with M → lower
  throughput (Figure 5), and on far pairs the vector buys nothing, so
  GentleRain comes out *ahead* there (Figure 6 right).
"""

from __future__ import annotations

from typing import Optional

from ..calibration import Calibration
from ..clocks.physical import PhysicalClock
from ..core.messages import ClientUpdate
from ..geo.system import GeoSystem, GeoSystemSpec
from ..kvstore.types import Update
from ..metrics.collector import MetricsHub
from ..sim.env import Environment
from ..sim.process import CostModel
from ..workload.generator import WorkloadSpec
from .gst import GstPartition, GstTimings, build_gst_system

__all__ = ["CurePartition", "build_cure_system"]


class CurePartition(GstPartition):
    """GSV flavor: vector timestamps, per-entry visibility gate."""

    flavor = "cure"

    @staticmethod
    def summary_width_static(n_dcs: int) -> int:
        return n_dcs

    def __init__(self, env: Environment, name: str, dc_id: int, index: int,
                 n_dcs: int, clock: PhysicalClock, timings: GstTimings,
                 calibration: Optional[Calibration] = None,
                 metrics: Optional[MetricsHub] = None):
        cal = calibration or Calibration()
        cost_model = CostModel(costs={
            "ClientRead": (cal.cost("partition_read")
                           + cal.cost("cure_read_extra")),
            "ClientUpdate": (cal.cost("partition_update")
                             + cal.cost("cure_update_extra")),
            "RemoteData": cal.cost("partition_apply_remote"),
            "GstHeartbeat": cal.overhead("gst_heartbeat"),
            "GstReport": cal.overhead("gst_heartbeat"),
            "GstBroadcast": cal.overhead("cure_gst_round"),
        })
        super().__init__(env, name, dc_id, index, n_dcs, clock, timings,
                         summary_width=n_dcs, cost_model=cost_model,
                         metrics=metrics)

    # -- timestamping ----------------------------------------------------
    def _stamp(self, msg: ClientUpdate) -> Update:
        m = self.dc_id
        ts = self.hlc.update(msg.client_vts[m])
        vts = msg.client_vts[:m] + (ts,) + msg.client_vts[m + 1:]
        self._seq = getattr(self, "_seq", 0) + 1
        return Update(
            key=msg.key, value=msg.value, origin_dc=m,
            partition_index=self.index, seq=self._seq, ts=ts, vts=vts,
            commit_time=self.now, value_bytes=msg.value_bytes,
        )

    # -- visibility gate ---------------------------------------------------
    def _releasable(self, update: Update) -> bool:
        gsv = self.summary
        for d in range(self.n_dcs):
            if d == self.dc_id:
                continue  # local dependencies are locally visible already
            if update.vts[d] > gsv[d]:
                return False
        return True

    def _defer(self, update: Update, arrival: float) -> None:
        self._pending.append((update, arrival))

    def _release_ready(self) -> None:
        # Vector gates are not totally ordered, so scan rather than pop a
        # heap; pending sets stay small (a stabilization window's worth).
        still_pending = []
        for update, arrival in self._pending:
            if self._releasable(update):
                self._install(update, arrival)
            else:
                still_pending.append((update, arrival))
        self._pending = still_pending

    # -- stabilization contribution ---------------------------------------
    def _local_summary(self) -> tuple:
        return tuple(self.vv)


def build_cure_system(spec: GeoSystemSpec, workload: WorkloadSpec,
                      timings: Optional[GstTimings] = None,
                      metrics: Optional[MetricsHub] = None,
                      history=None) -> GeoSystem:
    """Assemble a Cure deployment on the shared frame."""
    return build_gst_system(spec, workload, CurePartition,
                            timings=timings, metrics=metrics, history=history)
