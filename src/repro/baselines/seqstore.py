"""S-Seq and A-Seq: sequencer-based causally consistent stores (§2, §7).

**S-Seq** mirrors SwiftCloud/ChainReaction: on every update the partition
synchronously obtains the next sequence number from the per-DC sequencer
*before* replying to the client.  Causality across datacenters is tracked
with a vector of sequence numbers (one entry per DC); the sequencer ships
the ordered metadata stream to remote receivers (shared with EunomiaKV),
and payloads travel partition→sibling directly, exactly like EunomiaKV —
so the only protocol difference under test is *where the ordering happens*.

**A-Seq** is the paper's deliberately "bogus" variant: the partition replies
to the client immediately and contacts the sequencer in parallel.  It does
the same total work as S-Seq but takes the sequencer off the client's
critical path — it exists purely to show how much of S-Seq's penalty is
synchronous waiting (Figure 1).  A-Seq does not preserve causality and, like
in the paper, participates only in throughput measurements.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..calibration import Calibration
from ..clocks.physical import PhysicalClock
from ..core.config import EunomiaConfig
from ..core.messages import ClientUpdate, ClientUpdateReply, RemoteData
from ..core.partition import EunomiaPartition
from ..geo.receiver import Receiver
from ..geo.system import GeoSystem, GeoSystemSpec
from ..kvstore.types import Update, Versioned
from ..metrics.collector import MetricsHub
from ..sim.process import CostModel, Process
from ..workload.generator import WorkloadSpec
from .common import BaselineDatacenter, attach_clients, build_frame
from .messages import SeqReply, SeqRequest
from .sequencer import Sequencer

__all__ = ["SeqPartition", "build_seq_system"]


class SeqPartition(EunomiaPartition):
    """A partition whose updates are ordered by the local sequencer.

    Inherits reads, remote-data pairing, and remote execution from
    :class:`EunomiaPartition`; overrides the update path and never starts an
    Eunomia uplink.
    """

    def __init__(self, env, name: str, dc_id: int, index: int, n_dcs: int,
                 clock: PhysicalClock, config: EunomiaConfig,
                 synchronous: bool = True,
                 calibration: Optional[Calibration] = None,
                 metrics: Optional[MetricsHub] = None):
        cal = calibration or Calibration()
        cost_model = CostModel(costs={
            "ClientRead": cal.cost("partition_read"),
            "ClientUpdate": (cal.cost("partition_update")
                             + cal.cost("sseq_update_extra")),
            "SeqReply": cal.cost("sseq_reply"),
            "ApplyRemote": cal.cost("partition_apply_remote"),
            "RemoteData": cal.cost("partition_remote_data"),
        })
        super().__init__(env, name, dc_id, index, n_dcs, clock, config,
                         calibration=cal, metrics=metrics,
                         cost_model=cost_model)
        self.synchronous = synchronous
        self.sequencer: Optional[Process] = None
        self._awaiting: dict[tuple, tuple[Update, Process, int]] = {}

    def set_sequencer(self, sequencer: Process) -> None:
        self.sequencer = sequencer

    def start(self) -> None:
        # No Eunomia uplink: ordering happens at the sequencer.
        pass

    # ------------------------------------------------------------------
    # Update path
    # ------------------------------------------------------------------
    def on_client_update(self, msg: ClientUpdate, src: Process) -> None:
        self._seq += 1
        update = Update(
            key=msg.key, value=msg.value, origin_dc=self.dc_id,
            partition_index=self.index, seq=self._seq,
            ts=0, vts=msg.client_vts,            # stamped by the sequencer
            commit_time=self.now, value_bytes=msg.value_bytes,
        )
        self._awaiting[update.uid] = (update, src, msg.request_id)
        self.send(self.sequencer, SeqRequest(replace(update, value=None)))
        # Ship the payload immediately (as EunomiaKV does): remote partitions
        # pair it with the sequencer-ordered metadata by uid, so the final
        # stamp need not be known yet.  This is what gives sequencer-based
        # designs their near-optimal visibility.
        data = RemoteData(update)
        for sibling in self.siblings.values():
            self.send(sibling, data)
        if not self.synchronous:
            # A-Seq: answer immediately; the store is written (with a
            # provisional version) when the assignment arrives, so the
            # client's critical path never touches the sequencer.
            self.send(src, ClientUpdateReply(msg.client_vts, msg.request_id))

    def on_seq_reply(self, msg: SeqReply, src: Process) -> None:
        held = self._awaiting.pop(msg.uid, None)
        if held is None:
            return
        update, client, request_id = held
        stamped = replace(update, ts=msg.vts[self.dc_id], vts=msg.vts)
        self.store.put(stamped.key, Versioned(stamped.value, stamped.ts,
                                              self.dc_id, stamped.vts))
        self.local_updates += 1
        if self.synchronous:
            self.send(client, ClientUpdateReply(msg.vts, request_id))


def build_seq_system(spec: GeoSystemSpec, workload: WorkloadSpec,
                     synchronous: bool = True,
                     config: Optional[EunomiaConfig] = None,
                     metrics: Optional[MetricsHub] = None,
                     history=None) -> GeoSystem:
    """Assemble an S-Seq (``synchronous=True``) or A-Seq deployment."""
    config = config or EunomiaConfig()
    frame = build_frame(spec, metrics)
    env, cal = frame.env, spec.calibration

    sequencers: list[Sequencer] = []
    receivers: list[Receiver] = []
    partitions_by_dc: list[list[SeqPartition]] = []
    for dc_id in range(spec.n_dcs):
        rng = env.rng.stream(f"clocks/dc{dc_id}")
        sequencers.append(Sequencer(env, f"dc{dc_id}/sequencer", dc_id,
                                    calibration=cal, metrics=frame.metrics))
        receivers.append(Receiver(env, f"dc{dc_id}/receiver", dc_id,
                                  spec.n_dcs,
                                  check_interval=config.receiver_check_interval,
                                  calibration=cal, metrics=frame.metrics))
        partitions = [
            SeqPartition(env, f"dc{dc_id}/p{i}", dc_id, i, spec.n_dcs,
                         frame.ntp.manage(PhysicalClock.random(env, rng)),
                         config, synchronous=synchronous, calibration=cal,
                         metrics=frame.metrics)
            for i in range(spec.partitions_per_dc)
        ]
        for partition in partitions:
            partition.set_sequencer(sequencers[dc_id])
        receivers[dc_id].set_partitions(frame.ring, partitions)
        partitions_by_dc.append(partitions)

    for m in range(spec.n_dcs):
        for k in range(spec.n_dcs):
            if m == k:
                continue
            sequencers[m].add_destination(receivers[k])
            for mine, theirs in zip(partitions_by_dc[m], partitions_by_dc[k]):
                mine.set_sibling(k, theirs)

    datacenters = [
        BaselineDatacenter(dc_id, partitions_by_dc[dc_id],
                           extras=[sequencers[dc_id], receivers[dc_id]])
        for dc_id in range(spec.n_dcs)
    ]
    clients = attach_clients(frame, workload, datacenters,
                             n_entries=spec.n_dcs, history=history)
    protocol = "sseq" if synchronous else "aseq"
    return GeoSystem(env, spec, frame.metrics, datacenters, clients, protocol)
