"""S-Seq and A-Seq: sequencer-based causally consistent stores (§2, §7).

**S-Seq** mirrors SwiftCloud/ChainReaction: on every update the partition
synchronously obtains the next sequence number from the per-DC sequencer
*before* replying to the client.  Causality across datacenters is tracked
with a vector of sequence numbers (one entry per DC); the sequencer ships
the ordered metadata stream to remote receivers (shared with EunomiaKV),
and payloads travel partition→sibling directly, exactly like EunomiaKV —
so the only protocol difference under test is *where the ordering happens*.

**A-Seq** is the paper's deliberately "bogus" variant: the partition replies
to the client immediately and contacts the sequencer in parallel.  It does
the same total work as S-Seq but takes the sequencer off the client's
critical path — it exists purely to show how much of S-Seq's penalty is
synchronous waiting (Figure 1).  A-Seq does not preserve causality and, like
in the paper, participates only in throughput measurements.
"""

from __future__ import annotations

import warnings

from dataclasses import replace
from typing import Optional

from ..calibration import Calibration
from ..clocks.physical import PhysicalClock
from ..core.config import EunomiaConfig
from ..core.messages import ClientUpdate, ClientUpdateReply, RemoteData
from ..core.partition import EunomiaPartition
from ..core.protocols import (
    ProtocolSpec,
    SiteContext,
    SitePlan,
    register_protocol,
)
from ..geo.receiver import Receiver
from ..geo.system import GeoSystem, GeoSystemSpec, build_geo_system
from ..kvstore.types import Update, Versioned
from ..metrics.collector import MetricsHub
from ..sim.process import CostModel, Process
from ..workload.generator import WorkloadSpec
from .messages import SeqReply, SeqRequest
from .sequencer import Sequencer, build_chain

__all__ = ["SeqPartition", "SequencerProtocol", "build_seq_system"]


class SeqPartition(EunomiaPartition):
    """A partition whose updates are ordered by the local sequencer.

    Inherits reads, remote-data pairing, and remote execution from
    :class:`EunomiaPartition`; overrides the update path and never starts an
    Eunomia uplink.
    """

    def __init__(self, env, name: str, dc_id: int, index: int, n_dcs: int,
                 clock: PhysicalClock, config: EunomiaConfig,
                 synchronous: bool = True,
                 calibration: Optional[Calibration] = None,
                 metrics: Optional[MetricsHub] = None):
        cal = calibration or Calibration()
        cost_model = CostModel(costs={
            "ClientRead": cal.cost("partition_read"),
            "ClientUpdate": (cal.cost("partition_update")
                             + cal.cost("sseq_update_extra")),
            "SeqReply": cal.cost("sseq_reply"),
            "ApplyRemote": cal.cost("partition_apply_remote"),
            "RemoteData": cal.cost("partition_remote_data"),
        })
        super().__init__(env, name, dc_id, index, n_dcs, clock, config,
                         calibration=cal, metrics=metrics,
                         cost_model=cost_model)
        self.synchronous = synchronous
        self.sequencer: Optional[Process] = None
        self.sequencer_group: list[Process] = []
        self._awaiting: dict[tuple, tuple[Update, Process, int]] = {}
        # uid -> (sent_at, attempt, group_idx) for bounded-timeout retries.
        self._retry: dict[tuple, tuple[float, int, int]] = {}
        self._sweep_task = None
        self.seq_retries = 0

    def set_sequencer(self, sequencer: Process) -> None:
        self.sequencer = sequencer
        if not self.sequencer_group:
            self.sequencer_group = [sequencer]

    def set_sequencer_group(self, nodes: list) -> None:
        """All nodes a retried request may be sent to (chain standbys)."""
        self.sequencer_group = list(nodes)

    def start(self) -> None:
        # No Eunomia uplink: ordering happens at the sequencer.  The sweeper
        # is the partition-side half of sequencer fault tolerance: a request
        # outstanding past the timeout is re-sent (with capped exponential
        # backoff) round-robin through the sequencer group, so a crashed
        # sequencer — or a crashed chain link that swallowed the traversal —
        # stalls the client only until the timeout, not forever.  Healthy
        # runs never fire it: replies return well under the timeout, and the
        # sweep itself is a zero-cost local event (no messages, no RNG).
        if self._sweep_task is not None:
            self._sweep_task.stop()
        timeout = self.config.seq_retry_timeout
        self._sweep_task = self.periodic(timeout, self._sweep_retries,
                                         phase=timeout)

    def recover(self) -> None:
        super().recover()           # uplink.restart() is a no-op here
        self.start()                # re-arm the retry sweeper

    def _sweep_retries(self) -> None:
        if not self._retry:
            return
        now = self.now
        base = self.config.seq_retry_timeout
        cap = max(base, self.config.retry_backoff_cap)
        due = []
        for uid, (sent_at, attempt, idx) in self._retry.items():
            if now - sent_at >= min(base * (1 << attempt), cap):
                due.append((uid, attempt, idx))
        for uid, attempt, idx in due:
            held = self._awaiting.get(uid)
            if held is None:
                self._retry.pop(uid, None)
                continue
            update = held[0]
            idx = (idx + 1) % len(self.sequencer_group)
            self._retry[uid] = (now, attempt + 1, idx)
            self.seq_retries += 1
            self.send(self.sequencer_group[idx],
                      SeqRequest(replace(update, value=None)))

    # ------------------------------------------------------------------
    # Update path
    # ------------------------------------------------------------------
    def on_client_update(self, msg: ClientUpdate, src: Process) -> None:
        self._seq += 1
        update = Update(
            key=msg.key, value=msg.value, origin_dc=self.dc_id,
            partition_index=self.index, seq=self._seq,
            ts=0, vts=msg.client_vts,            # stamped by the sequencer
            commit_time=self.now, value_bytes=msg.value_bytes,
        )
        self._awaiting[update.uid] = (update, src, msg.request_id)
        self._retry[update.uid] = (self.now, 0, 0)
        tracer = self.metrics.tracer
        if tracer is not None:
            issued = msg.issued_at if msg.issued_at > 0.0 else None
            span = tracer.commit(update, self.now, issued_at=issued)
            if span is not None and self.siblings:
                tracer.stage(update, "replicate", self.now, self.dc_id)
        self.send(self.sequencer, SeqRequest(replace(update, value=None)))
        # Ship the payload immediately (as EunomiaKV does): remote partitions
        # pair it with the sequencer-ordered metadata by uid, so the final
        # stamp need not be known yet.  This is what gives sequencer-based
        # designs their near-optimal visibility.
        data = RemoteData(update)
        self.multicast(self.siblings.values(), data)
        if not self.synchronous:
            # A-Seq: answer immediately; the store is written (with a
            # provisional version) when the assignment arrives, so the
            # client's critical path never touches the sequencer.
            self.send(src, ClientUpdateReply(msg.client_vts, msg.request_id))

    def on_seq_reply(self, msg: SeqReply, src: Process) -> None:
        self._retry.pop(msg.uid, None)
        held = self._awaiting.pop(msg.uid, None)
        if held is None:
            return
        update, client, request_id = held
        stamped = replace(update, ts=msg.vts[self.dc_id], vts=msg.vts)
        self.store.put(stamped.key, Versioned(stamped.value, stamped.ts,
                                              self.dc_id, stamped.vts))
        self.local_updates += 1
        tracer = self.metrics.tracer
        if tracer is not None:
            tracer.stage_once(stamped, "seq_order", self.now, self.dc_id)
        if self.synchronous:
            self.send(client, ClientUpdateReply(msg.vts, request_id))


class SequencerProtocol(ProtocolSpec):
    """Deployment plugin for the sequencer stores.

    Contributes a per-DC sequencer (plain, or a van-Renesse chain of
    ``chain_length`` nodes — the §7.1 fault-tolerant competitor), the
    shared Algorithm 5 receiver for the ordered metadata stream, and
    :class:`SeqPartition` partitions.  The sequencer's tail is the
    propagator: the spine points it at every remote receiver.
    """

    def __init__(self, synchronous: bool):
        self.synchronous = synchronous
        self.name = "sseq" if synchronous else "aseq"

    def client_entries(self, n_dcs: int) -> int:
        return n_dcs

    def option_names(self) -> tuple:
        return ("config", "chain_length")

    def prepare(self, spec, options: dict) -> dict:
        config = options.get("config") or EunomiaConfig()
        options["config"] = config
        chain_length = options.setdefault("chain_length", 1)
        if chain_length < 1:
            raise ValueError("chain needs at least one node")
        return options

    def build_site(self, site: SiteContext) -> SitePlan:
        config = site.options["config"]
        chain_length = site.options["chain_length"]
        if chain_length == 1:
            nodes = [Sequencer(site.env, f"dc{site.dc_id}/sequencer",
                               site.dc_id, calibration=site.calibration,
                               metrics=site.metrics)]
        else:
            # Geo deployments get the self-repairing chain: heartbeats,
            # dynamic head/tail, standby failover.  (Direct construction via
            # build_chain defaults to the static §7.1 chain.)
            nodes = build_chain(site.env, site.dc_id, chain_length,
                                calibration=site.calibration,
                                metrics=site.metrics,
                                name_prefix=f"dc{site.dc_id}/chain",
                                repair=True)
        receiver = Receiver(site.env, f"dc{site.dc_id}/receiver", site.dc_id,
                            site.n_dcs,
                            check_interval=config.receiver_check_interval,
                            calibration=site.calibration,
                            metrics=site.metrics,
                            placement=site.partial_placement())
        partitions = [
            SeqPartition(site.env, site.pname(i), site.dc_id, i, site.n_dcs,
                         site.clock(), config, synchronous=self.synchronous,
                         calibration=site.calibration, metrics=site.metrics)
            for i in range(site.n_partitions)
        ]
        for partition in partitions:
            partition.set_sequencer(nodes[0])      # requests enter at the head
            partition.set_sequencer_group(nodes)   # retries may hit standbys
        receiver.set_partitions(site.ring, partitions)
        return SitePlan(partitions=partitions, extras=nodes,
                        receiver=receiver, propagators=[nodes[-1]])


register_protocol(SequencerProtocol(synchronous=True))
register_protocol(SequencerProtocol(synchronous=False))


def build_seq_system(spec: GeoSystemSpec, workload: WorkloadSpec,
                     synchronous: bool = True,
                     config: Optional[EunomiaConfig] = None,
                     metrics: Optional[MetricsHub] = None,
                     history=None, chain_length: int = 1) -> GeoSystem:
    """Assemble an S-Seq (``synchronous=True``) or A-Seq deployment.

    ``chain_length > 1`` replicates each DC's sequencer as a chain — the
    paper's §7.1 fault-tolerant sequencer, now a first-class end-to-end
    deployment instead of a rig-only configuration.

    .. deprecated::
        Call ``build_geo_system("sseq", ...)`` / ``build_geo_system("aseq",
        ...)``; this wrapper forwards verbatim and will be removed.
    """
    warnings.warn(
        "build_seq_system is deprecated; use "
        "build_geo_system('sseq'/'aseq', ...)",
        DeprecationWarning, stacklevel=2,
    )
    return build_geo_system("sseq" if synchronous else "aseq", spec,
                            workload, metrics=metrics, history=history,
                            config=config, chain_length=chain_length)
