"""Wire messages of the baseline protocols (§2, §7).

Sequencer traffic (S-Seq / A-Seq / chain replication) and the global
stabilization traffic of GentleRain and Cure.  Kept separate from
:mod:`repro.core.messages` so each protocol's footprint is explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from ..kvstore.types import METADATA_OVERHEAD_BYTES, Update
from ..sim.process import Process

__all__ = [
    "SeqRequest",
    "SeqReply",
    "ChainForward",
    "ChainAlive",
    "GstHeartbeat",
    "GstReport",
    "GstBroadcast",
]


# ----------------------------------------------------------------------
# Sequencer-based stores
# ----------------------------------------------------------------------
@dataclass(slots=True)
class SeqRequest:
    """Partition → sequencer: assign the next number to this update.

    Synchronous in S-Seq (the partition replies to the client only after
    :class:`SeqReply`); fire-and-forget in A-Seq.
    """

    update: Update          # metadata only (value=None); vts = client vector

    @property
    def size_bytes(self) -> int:
        return self.update.metadata_bytes


@dataclass(slots=True)
class SeqReply:
    """Sequencer (or chain tail) → partition: the assigned vector."""

    uid: Tuple[int, int, int]
    vts: Tuple[int, ...]
    size_bytes: int = METADATA_OVERHEAD_BYTES


@dataclass(slots=True)
class ChainForward:
    """Chain replication: ordered hand-off along the sequencer chain.

    The head assigns the number; every node logs it; the tail replies to the
    original requester and ships the metadata to remote receivers.
    """

    update: Update
    requester: Process

    @property
    def size_bytes(self) -> int:
        return self.update.metadata_bytes


@dataclass(slots=True)
class ChainAlive:
    """Chain-membership heartbeat (repairable chains only).

    Each node learns which peers are up — the failure detector behind
    dynamic head/tail roles and chain repair — and piggybacks its counter
    so a rejoining ex-head catches up with assignments it missed before it
    can hand out a duplicate number.
    """

    position: int
    counter: int
    size_bytes: int = 16


# ----------------------------------------------------------------------
# Global stabilization (GentleRain / Cure)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class GstHeartbeat:
    """Sibling partition heartbeat across datacenters (every Δ_hb).

    Carries the sender's current clock so the receiver's version vector
    advances even when the sender has no updates — the ingredient that makes
    the global stable time progress at wall-clock speed.
    """

    origin_dc: int
    partition_index: int
    ts: int
    size_bytes: int = 24


@dataclass(slots=True)
class GstReport:
    """Partition → local aggregator: its local stable time/vector."""

    partition_index: int
    value: Tuple[int, ...]      # 1-tuple for GentleRain, M-tuple for Cure

    @property
    def size_bytes(self) -> int:
        return 8 * len(self.value) + 16


@dataclass(slots=True)
class GstBroadcast:
    """Aggregator → local partitions: the new GST (scalar) or GSV (vector).

    ``sender`` is the broadcasting partition's index: receivers adopt it as
    their aggregator view, which is how a DC converges back onto one
    aggregator after a re-election (the index rides in the 16-byte frame
    the size already accounts for).
    """

    value: Tuple[int, ...]
    sender: int = 0

    @property
    def size_bytes(self) -> int:
        return 8 * len(self.value) + 16
