"""Every comparison system from the paper's evaluation, implemented on the
same substrate as EunomiaKV:

* :mod:`sequencer` — traditional per-DC sequencers, plain and
  chain-replicated (§7.1's competitor);
* :mod:`seqstore` — S-Seq and A-Seq geo-replicated stores (§2, Figure 1);
* :mod:`gentlerain` / :mod:`cure` — global-stabilization stores over the
  shared :mod:`gst` machinery (Figures 1, 5, 6);
* :mod:`eventual` — the zero-overhead eventually consistent yardstick.

Each module registers a :class:`~repro.core.protocols.ProtocolSpec`
plugin, so every baseline deploys through the same
:func:`~repro.geo.system.build_geo_system` spine as EunomiaKV — the same
topology, NTP-disciplined clocks, ring, closed-loop clients, and failure
injection (the paper makes the same point: GentleRain and Cure "are
implemented using the codebase of EunomiaKV").  ``build_system``
dispatches to any of them (plus EunomiaKV) by name.
"""

from typing import Optional

from ..core.protocols import available_protocols
from ..geo.system import (
    GeoSystem,
    GeoSystemSpec,
    build_eunomia_system,
    build_geo_system,
)
from ..metrics.collector import MetricsHub
from ..workload.generator import WorkloadSpec
from .cure import CurePartition, CureProtocol, build_cure_system
from .eventual import EventualPartition, EventualProtocol, build_eventual_system
from .gentlerain import (
    GentleRainPartition,
    GentleRainProtocol,
    build_gentlerain_system,
)
from .gst import GstPartition, GstProtocol, GstTimings, build_gst_system
from .messages import (
    ChainForward,
    GstBroadcast,
    GstHeartbeat,
    GstReport,
    SeqReply,
    SeqRequest,
)
from .seqstore import SeqPartition, SequencerProtocol, build_seq_system
from .sequencer import ChainSequencerNode, Sequencer, build_chain

__all__ = [
    "Sequencer",
    "ChainSequencerNode",
    "build_chain",
    "SeqPartition",
    "SequencerProtocol",
    "build_seq_system",
    "GstTimings",
    "GstPartition",
    "GstProtocol",
    "build_gst_system",
    "GentleRainPartition",
    "GentleRainProtocol",
    "build_gentlerain_system",
    "CurePartition",
    "CureProtocol",
    "build_cure_system",
    "EventualPartition",
    "EventualProtocol",
    "build_eventual_system",
    "build_system",
    "PROTOCOLS",
    "SeqRequest",
    "SeqReply",
    "ChainForward",
    "GstHeartbeat",
    "GstReport",
    "GstBroadcast",
]

def __getattr__(name: str):
    if name == "PROTOCOLS":
        # Live view, not an import-time snapshot: protocols registered
        # after import (via repro.register_protocol) appear immediately.
        return available_protocols()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def build_system(protocol: str, spec: GeoSystemSpec, workload: WorkloadSpec,
                 metrics: Optional[MetricsHub] = None, **kwargs) -> GeoSystem:
    """Uniform entry point: build any of the paper's systems by name.

    A thin alias of :func:`repro.geo.system.build_geo_system` — every
    protocol, EunomiaKV included, goes through the one deployment spine.
    """
    if protocol in ("sseq", "aseq") and "synchronous" in kwargs:
        raise TypeError("pick the protocol name, not a synchronous= flag")
    return build_geo_system(protocol, spec, workload, metrics=metrics,
                            **kwargs)
