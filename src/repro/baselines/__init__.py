"""Every comparison system from the paper's evaluation, implemented on the
same substrate as EunomiaKV:

* :mod:`sequencer` — traditional per-DC sequencers, plain and
  chain-replicated (§7.1's competitor);
* :mod:`seqstore` — S-Seq and A-Seq geo-replicated stores (§2, Figure 1);
* :mod:`gentlerain` / :mod:`cure` — global-stabilization stores over the
  shared :mod:`gst` machinery (Figures 1, 5, 6);
* :mod:`eventual` — the zero-overhead eventually consistent yardstick.

``build_system`` dispatches to any of them (plus EunomiaKV) by name.
"""

from typing import Optional

from ..geo.system import GeoSystem, GeoSystemSpec, build_eunomia_system
from ..metrics.collector import MetricsHub
from ..workload.generator import WorkloadSpec
from .cure import CurePartition, build_cure_system
from .eventual import EventualPartition, build_eventual_system
from .gentlerain import GentleRainPartition, build_gentlerain_system
from .gst import GstPartition, GstTimings, build_gst_system
from .messages import (
    ChainForward,
    GstBroadcast,
    GstHeartbeat,
    GstReport,
    SeqReply,
    SeqRequest,
)
from .seqstore import SeqPartition, build_seq_system
from .sequencer import ChainSequencerNode, Sequencer, build_chain

__all__ = [
    "Sequencer",
    "ChainSequencerNode",
    "build_chain",
    "SeqPartition",
    "build_seq_system",
    "GstTimings",
    "GstPartition",
    "build_gst_system",
    "GentleRainPartition",
    "build_gentlerain_system",
    "CurePartition",
    "build_cure_system",
    "EventualPartition",
    "build_eventual_system",
    "build_system",
    "PROTOCOLS",
    "SeqRequest",
    "SeqReply",
    "ChainForward",
    "GstHeartbeat",
    "GstReport",
    "GstBroadcast",
]

PROTOCOLS = ("eunomia", "eventual", "gentlerain", "cure", "sseq", "aseq")


def build_system(protocol: str, spec: GeoSystemSpec, workload: WorkloadSpec,
                 metrics: Optional[MetricsHub] = None, **kwargs) -> GeoSystem:
    """Uniform entry point: build any of the paper's systems by name."""
    if protocol == "eunomia":
        return build_eunomia_system(spec, workload, metrics=metrics, **kwargs)
    if protocol == "eventual":
        return build_eventual_system(spec, workload, metrics=metrics, **kwargs)
    if protocol == "gentlerain":
        return build_gentlerain_system(spec, workload, metrics=metrics, **kwargs)
    if protocol == "cure":
        return build_cure_system(spec, workload, metrics=metrics, **kwargs)
    if protocol == "sseq":
        return build_seq_system(spec, workload, synchronous=True,
                                metrics=metrics, **kwargs)
    if protocol == "aseq":
        return build_seq_system(spec, workload, synchronous=False,
                                metrics=metrics, **kwargs)
    raise ValueError(f"unknown protocol {protocol!r}; pick one of {PROTOCOLS}")
