"""Eventually consistent multi-cluster store — the zero-overhead yardstick.

No causal metadata at all: updates are timestamped only for convergence
(LWW), shipped to sibling partitions, and applied the instant they arrive.
Every causal system in this repository is measured as overhead relative to
this baseline, exactly as the paper normalizes its Figures 1 and 5.
"""

from __future__ import annotations

import warnings

from typing import Optional

from ..calibration import Calibration
from ..clocks.physical import PhysicalClock
from ..core.config import EunomiaConfig
from ..core.messages import ClientUpdate, ClientUpdateReply, RemoteData
from ..core.partition import EunomiaPartition
from ..core.protocols import (
    ProtocolSpec,
    SiteContext,
    SitePlan,
    register_protocol,
)
from ..geo.system import GeoSystem, GeoSystemSpec, build_geo_system
from ..kvstore.types import Update, Versioned
from ..metrics.collector import MetricsHub
from ..sim.process import CostModel, Process
from ..workload.generator import WorkloadSpec

__all__ = ["EventualPartition", "EventualProtocol", "build_eventual_system"]


class EventualPartition(EunomiaPartition):
    """A partition that replicates without ordering constraints."""

    def __init__(self, env, name: str, dc_id: int, index: int, n_dcs: int,
                 clock: PhysicalClock, config: EunomiaConfig,
                 calibration: Optional[Calibration] = None,
                 metrics: Optional[MetricsHub] = None):
        cal = calibration or Calibration()
        cost_model = CostModel(costs={
            "ClientRead": cal.cost("partition_read"),
            "ClientUpdate": cal.cost("partition_update"),
            "RemoteData": cal.cost("partition_apply_remote"),
        })
        super().__init__(env, name, dc_id, index, n_dcs, clock, config,
                         calibration=cal, metrics=metrics,
                         cost_model=cost_model)
        self.zero_vts = ()  # this store exposes no causal metadata at all

    def start(self) -> None:
        # No uplink, no Eunomia: nothing periodic to run.
        pass

    def on_client_update(self, msg: ClientUpdate, src: Process) -> None:
        ts = self.hlc.tick()
        self._seq += 1
        update = Update(
            key=msg.key, value=msg.value, origin_dc=self.dc_id,
            partition_index=self.index, seq=self._seq, ts=ts, vts=(),
            commit_time=self.now, value_bytes=msg.value_bytes,
        )
        self.store.put(msg.key, Versioned(msg.value, ts, self.dc_id, ()))
        self.local_updates += 1
        tracer = self.metrics.tracer
        if tracer is not None:
            issued = msg.issued_at if msg.issued_at > 0.0 else None
            span = tracer.commit(update, self.now, issued_at=issued)
            if span is not None and self.siblings:
                tracer.stage(update, "replicate", self.now, self.dc_id)
        data = RemoteData(update)
        self.multicast(self.siblings.values(), data)
        self.send(src, ClientUpdateReply((), msg.request_id))

    def on_remote_data(self, msg: RemoteData, src: Process) -> None:
        # Apply immediately: eventual consistency adds zero artificial delay.
        self._execute_remote_unordered(msg.update)

    def _execute_remote_unordered(self, update: Update) -> None:
        self.store.put(update.key, Versioned(update.value, update.ts,
                                             update.origin_dc, update.vts))
        self.remote_applies += 1
        now = self.now
        k, m = update.origin_dc, self.dc_id
        total_ms = (now - update.commit_time) * 1e3
        self.metrics.point(f"vis_extra_ms:{k}->{m}", now, 0.0)
        self.metrics.point(f"vis_total_ms:{k}->{m}", now, total_ms)
        tracer = self.metrics.tracer
        if tracer is not None:
            tracer.stage_once(update, "visible", now, m)
        slo = self.metrics.slo
        if slo is not None:
            slo.visibility(k, m, total_ms, 0.0)


class EventualProtocol(ProtocolSpec):
    """Deployment plugin: partitions only — no stabilizer, no receiver, no
    causal metadata (clients carry a zero-width session vector)."""

    name = "eventual"

    def client_entries(self, n_dcs: int) -> int:
        return 0

    def option_names(self) -> tuple:
        return ("config",)

    def prepare(self, spec, options: dict) -> dict:
        options["config"] = options.get("config") or EunomiaConfig()
        return options

    def build_site(self, site: SiteContext) -> SitePlan:
        partitions = [
            EventualPartition(site.env, site.pname(i), site.dc_id, i,
                              site.n_dcs, site.clock(),
                              site.options["config"],
                              calibration=site.calibration,
                              metrics=site.metrics)
            for i in range(site.n_partitions)
        ]
        return SitePlan(partitions=partitions)


register_protocol(EventualProtocol())


def build_eventual_system(spec: GeoSystemSpec, workload: WorkloadSpec,
                          config: Optional[EunomiaConfig] = None,
                          metrics: Optional[MetricsHub] = None,
                          history=None) -> GeoSystem:
    """Assemble the eventually consistent deployment.

    .. deprecated::
        Call ``build_geo_system("eventual", ...)``; this wrapper forwards
        verbatim and will be removed.
    """
    warnings.warn(
        "build_eventual_system is deprecated; use "
        "build_geo_system('eventual', ...)",
        DeprecationWarning, stacklevel=2,
    )
    return build_geo_system("eventual", spec, workload, metrics=metrics,
                            history=history, config=config)
