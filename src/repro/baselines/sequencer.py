"""Per-datacenter sequencers — the baseline Eunomia replaces.

:class:`Sequencer` mimics the traditional design (SwiftCloud,
ChainReaction): every client update synchronously requests a monotonically
increasing number *in the client's critical path*.  The sequencer is also
the natural serialization point, so it ships the ordered metadata stream to
remote receivers directly (the receiver code is shared with EunomiaKV —
vector entries are sequence numbers instead of hybrid timestamps, the
dependency algebra is identical).

:class:`ChainSequencerNode` is the fault-tolerant variant (§7.1): replicas
form a chain (van Renesse & Schneider); requests enter at the head, which
assigns the number, traverse every node, and the tail replies.  Unlike
Eunomia's coordination-free replicas, every chain node processes every
request, and the head additionally forwards — which is why the paper
measures a ~33% throughput penalty for a 3-node chain versus Eunomia's ~9%.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..calibration import Calibration
from ..core.messages import RemoteStableBatch
from ..metrics.collector import MetricsHub, NullMetrics
from ..sim.env import Environment
from ..sim.process import CostModel, Process
from .messages import ChainForward, SeqRequest, SeqReply

__all__ = ["Sequencer", "ChainSequencerNode", "build_chain"]


class Sequencer(Process):
    """Non-fault-tolerant sequencer: one counter, one service queue."""

    def __init__(self, env: Environment, name: str, site: int,
                 calibration: Optional[Calibration] = None,
                 metrics: Optional[MetricsHub] = None,
                 assign_mark: Optional[str] = None):
        cal = calibration or Calibration()
        cost_model = CostModel(costs={
            "SeqRequest": cal.cost("sequencer_request"),
        })
        super().__init__(env, name, site=site, cost_model=cost_model)
        self.metrics = metrics or NullMetrics()
        self.counter = 0
        self.destinations: list[Process] = []
        self.assign_mark = assign_mark or f"seq_assigned:dc{site}"

    def add_destination(self, dest: Process) -> None:
        self.destinations.append(dest)

    def on_seq_request(self, msg: SeqRequest, src: Process) -> None:
        update = self._assign(msg.update)
        self._ship(update)
        self.send(src, SeqReply(update.uid, update.vts))

    def _assign(self, update):
        """Stamp the update with the next number in this DC's sequence."""
        self.counter += 1
        m = self.site
        vts = update.vts[:m] + (self.counter,) + update.vts[m + 1:]
        self.metrics.mark(self.assign_mark, self.now)
        return replace(update, ts=self.counter, vts=vts)

    def _ship(self, update) -> None:
        """Propagate the ordered metadata stream to remote receivers."""
        batch = RemoteStableBatch(self.site, (update,))
        self.multicast(self.destinations, batch)


class ChainSequencerNode(Process):
    """One link of a chain-replicated sequencer.

    Roles by position: the *head* assigns numbers, every node logs the
    assignment (so any prefix survives a suffix crash), the *tail* ships to
    remote receivers and answers the requesting partition.
    """

    def __init__(self, env: Environment, name: str, site: int, position: int,
                 chain_length: int,
                 calibration: Optional[Calibration] = None,
                 metrics: Optional[MetricsHub] = None,
                 assign_mark: Optional[str] = None):
        cal = calibration or Calibration()
        if position == 0:
            per_request = cal.cost("chain_head")
        elif position == chain_length - 1:
            per_request = cal.cost("chain_tail")
        else:
            per_request = cal.cost("chain_mid")
        cost_model = CostModel(costs={
            "SeqRequest": per_request,
            "ChainForward": per_request,
        })
        super().__init__(env, name, site=site, cost_model=cost_model)
        self.metrics = metrics or NullMetrics()
        self.position = position
        self.chain_length = chain_length
        self.counter = 0
        self.log: list[tuple] = []          # replicated assignment log
        self.successor: Optional[Process] = None
        self.destinations: list[Process] = []
        self.assign_mark = assign_mark or f"seq_assigned:dc{site}"

    @property
    def is_head(self) -> bool:
        return self.position == 0

    @property
    def is_tail(self) -> bool:
        return self.position == self.chain_length - 1

    def add_destination(self, dest: Process) -> None:
        self.destinations.append(dest)

    def on_seq_request(self, msg: SeqRequest, src: Process) -> None:
        if not self.is_head:
            raise RuntimeError(f"{self.name}: requests must enter at the head")
        self.counter += 1
        m = self.site
        update = msg.update
        vts = update.vts[:m] + (self.counter,) + update.vts[m + 1:]
        stamped = replace(update, ts=self.counter, vts=vts)
        self._record_and_pass(stamped, requester=src)

    def on_chain_forward(self, msg: ChainForward, src: Process) -> None:
        self._record_and_pass(msg.update, requester=msg.requester)

    def _record_and_pass(self, update, requester: Process) -> None:
        self.log.append(update.uid)
        if self.is_tail:
            self.metrics.mark(self.assign_mark, self.now)
            batch = RemoteStableBatch(self.site, (update,))
            self.multicast(self.destinations, batch)
            self.send(requester, SeqReply(update.uid, update.vts))
        else:
            self.send(self.successor, ChainForward(update, requester))


def build_chain(env: Environment, site: int, length: int,
                calibration: Optional[Calibration] = None,
                metrics: Optional[MetricsHub] = None,
                name_prefix: str = "chain") -> list[ChainSequencerNode]:
    """Create and link a sequencer chain; returns [head, ..., tail]."""
    if length < 1:
        raise ValueError("chain needs at least one node")
    nodes = [
        ChainSequencerNode(env, f"{name_prefix}{i}", site, i, length,
                           calibration=calibration, metrics=metrics)
        for i in range(length)
    ]
    for node, successor in zip(nodes, nodes[1:]):
        node.successor = successor
    return nodes
