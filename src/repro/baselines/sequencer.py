"""Per-datacenter sequencers — the baseline Eunomia replaces.

:class:`Sequencer` mimics the traditional design (SwiftCloud,
ChainReaction): every client update synchronously requests a monotonically
increasing number *in the client's critical path*.  The sequencer is also
the natural serialization point, so it ships the ordered metadata stream to
remote receivers directly (the receiver code is shared with EunomiaKV —
vector entries are sequence numbers instead of hybrid timestamps, the
dependency algebra is identical).

:class:`ChainSequencerNode` is the fault-tolerant variant (§7.1): replicas
form a chain (van Renesse & Schneider); requests enter at the head, which
assigns the number, traverse every node, and the tail replies.  Unlike
Eunomia's coordination-free replicas, every chain node processes every
request, and the head additionally forwards — which is why the paper
measures a ~33% throughput penalty for a 3-node chain versus Eunomia's ~9%.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..calibration import Calibration
from ..core.messages import RemoteStableBatch
from ..metrics.collector import MetricsHub, NullMetrics
from ..sim.env import Environment
from ..sim.process import CostModel, Process
from .messages import ChainAlive, ChainForward, SeqRequest, SeqReply

__all__ = ["Sequencer", "ChainSequencerNode", "build_chain"]


class Sequencer(Process):
    """Non-fault-tolerant sequencer: one counter, one service queue.

    Requests are deduplicated by update uid: partitions retry requests that
    time out (a crashed sequencer drops everything in flight), and a retry
    racing a slow reply must not burn a second number for the same update —
    the duplicate is answered with the original assignment and a re-ship
    (remote receivers dedup, so re-shipping is exactly-once downstream).
    """

    def __init__(self, env: Environment, name: str, site: int,
                 calibration: Optional[Calibration] = None,
                 metrics: Optional[MetricsHub] = None,
                 assign_mark: Optional[str] = None):
        cal = calibration or Calibration()
        cost_model = CostModel(costs={
            "SeqRequest": cal.cost("sequencer_request"),
        })
        super().__init__(env, name, site=site, cost_model=cost_model)
        self.metrics = metrics or NullMetrics()
        self.counter = 0
        self.destinations: list[Process] = []
        self.assign_mark = assign_mark or f"seq_assigned:dc{site}"
        self._assigned: dict[tuple, object] = {}   # uid -> stamped update
        self.duplicate_requests = 0

    def add_destination(self, dest: Process) -> None:
        self.destinations.append(dest)

    def on_seq_request(self, msg: SeqRequest, src: Process) -> None:
        prior = self._assigned.get(msg.update.uid)
        if prior is not None:
            self.duplicate_requests += 1
            self._ship(prior)
            self.send(src, SeqReply(prior.uid, prior.vts))
            return
        update = self._assign(msg.update)
        self._assigned[update.uid] = update
        self._ship(update)
        self.send(src, SeqReply(update.uid, update.vts))

    def _assign(self, update):
        """Stamp the update with the next number in this DC's sequence."""
        self.counter += 1
        m = self.site
        vts = update.vts[:m] + (self.counter,) + update.vts[m + 1:]
        self.metrics.mark(self.assign_mark, self.now)
        return replace(update, ts=self.counter, vts=vts)

    def _ship(self, update) -> None:
        """Propagate the ordered metadata stream to remote receivers."""
        batch = RemoteStableBatch(self.site, (update,))
        self.multicast(self.destinations, batch)


class ChainSequencerNode(Process):
    """One link of a chain-replicated sequencer.

    Roles by position: the *head* assigns numbers, every node logs the
    assignment (so any prefix survives a suffix crash), the *tail* ships to
    remote receivers and answers the requesting partition.

    With ``repair=True`` the roles become *dynamic*: nodes exchange
    membership heartbeats, and the surviving nodes re-form the chain around
    any crashed link — the lowest live position assigns, each node forwards
    to the next live position, the highest live position ships and replies.
    Counter safety rests on two invariants: every node folds each traversing
    assignment into its own counter (so any externally visible number has
    been observed by every survivor that could become head), and a
    rejoining node stays silent — holding, not serving, requests — for one
    suspect timeout while peer heartbeats (which carry counters) catch it
    up, so a recovered ex-head can never hand out a duplicate number.
    """

    def __init__(self, env: Environment, name: str, site: int, position: int,
                 chain_length: int,
                 calibration: Optional[Calibration] = None,
                 metrics: Optional[MetricsHub] = None,
                 assign_mark: Optional[str] = None,
                 repair: bool = False,
                 alive_interval: float = 0.05,
                 suspect_timeout: float = 0.16):
        cal = calibration or Calibration()
        if position == 0:
            per_request = cal.cost("chain_head")
        elif position == chain_length - 1:
            per_request = cal.cost("chain_tail")
        else:
            per_request = cal.cost("chain_mid")
        cost_model = CostModel(costs={
            "SeqRequest": per_request,
            "ChainForward": per_request,
        })
        super().__init__(env, name, site=site, cost_model=cost_model)
        self.metrics = metrics or NullMetrics()
        self.position = position
        self.chain_length = chain_length
        self.counter = 0
        self.log: list[tuple] = []          # replicated assignment log
        self.successor: Optional[Process] = None
        self.destinations: list[Process] = []
        self.assign_mark = assign_mark or f"seq_assigned:dc{site}"
        # --- chain repair (inactive, zero-cost, unless repair=True) ---
        self.repair = repair
        self.alive_interval = alive_interval
        self.suspect_timeout = suspect_timeout
        self.peers: list["ChainSequencerNode"] = []    # roster, by position
        self._peer_seen: dict[int, float] = {}
        self._assigned: dict[tuple, object] = {}       # head dedup
        self._logged: set = set()
        self._rejoin_until = 0.0
        self._held: list[tuple] = []                   # requests during rejoin
        self.duplicate_requests = 0

    @property
    def is_head(self) -> bool:
        if self.repair and self.peers:
            return self._alive_positions()[0] == self.position
        return self.position == 0

    @property
    def is_tail(self) -> bool:
        if self.repair and self.peers:
            return self._alive_positions()[-1] == self.position
        return self.position == self.chain_length - 1

    def add_destination(self, dest: Process) -> None:
        self.destinations.append(dest)

    # ------------------------------------------------------------------
    # Membership (repairable chains)
    # ------------------------------------------------------------------
    def set_chain_peers(self, nodes: list) -> None:
        """Give the node the full chain roster (repair mode wiring)."""
        self.peers = list(nodes)

    def start(self) -> None:
        if not self.repair:
            return
        now = self.now
        for node in self.peers:
            if node.position != self.position:
                self._peer_seen[node.position] = now
        self.periodic(self.alive_interval, self._gossip_alive, phase=0.0)

    def recover(self) -> None:
        """Rejoin the chain after a crash: silent catch-up, then serve.

        For one suspect timeout the node sends no heartbeats (so peers keep
        treating it as down and the interim chain keeps serving) and holds
        any requests routed to it; meanwhile incoming heartbeats and
        traversing assignments raise its counter past everything assigned
        while it was away.  Only then does it drain the held requests and
        resume its (possibly head) role.
        """
        super().recover()
        if not self.repair:
            return
        now = self.now
        self._rejoin_until = now + self.suspect_timeout
        self.start()
        self.after(self.suspect_timeout, self._end_rejoin)

    def _gossip_alive(self) -> None:
        if self.now < self._rejoin_until:
            return
        beat = ChainAlive(self.position, self.counter)
        self.multicast([p for p in self.peers
                        if p.position != self.position], beat)

    def on_chain_alive(self, msg: ChainAlive, src: Process) -> None:
        self._peer_seen[msg.position] = self.now
        if msg.counter > self.counter:
            self.counter = msg.counter

    def _alive_positions(self) -> list[int]:
        now = self.now
        alive = [self.position]
        for pos, seen in self._peer_seen.items():
            if now - seen <= self.suspect_timeout:
                alive.append(pos)
        return sorted(alive)

    def _node_at(self, position: int) -> "ChainSequencerNode":
        return self.peers[position]

    def _end_rejoin(self) -> None:
        held, self._held = self._held, []
        for update, requester in held:
            self._accept_request(update, requester)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def on_seq_request(self, msg: SeqRequest, src: Process) -> None:
        self._accept_request(msg.update, src)

    def on_chain_forward(self, msg: ChainForward, src: Process) -> None:
        if msg.update.ts == 0:
            # Not yet assigned: a redirect from a non-head node (or a held
            # request drained after rejoin) looking for the current head.
            self._accept_request(msg.update, msg.requester)
            return
        self._record_and_pass(msg.update, requester=msg.requester)

    def _accept_request(self, update, requester: Process) -> None:
        if not self.is_head:
            if self.repair:
                # Route to whoever heads the repaired chain right now — a
                # partition retrying against a standby still gets served.
                head = self._node_at(self._alive_positions()[0])
                self.send(head, ChainForward(update, requester))
                return
            raise RuntimeError(f"{self.name}: requests must enter at the head")
        if self.repair and self.now < self._rejoin_until:
            self._held.append((update, requester))
            return
        prior = self._assigned.get(update.uid)
        if prior is not None:
            # Retried request for an assignment already made: re-traverse
            # the (repaired) chain so it reaches the tail even if the
            # original traversal died with a crashed link.  Dedup below
            # keeps logs exactly-once; receivers dedup the re-ship.
            self.duplicate_requests += 1
            self._record_and_pass(prior, requester)
            return
        self.counter += 1
        m = self.site
        vts = update.vts[:m] + (self.counter,) + update.vts[m + 1:]
        stamped = replace(update, ts=self.counter, vts=vts)
        if self.repair:
            self._assigned[update.uid] = stamped
        self._record_and_pass(stamped, requester=requester)

    def _record_and_pass(self, update, requester: Process) -> None:
        if update.uid not in self._logged:
            self._logged.add(update.uid)
            self.log.append(update.uid)
        if update.ts > self.counter:
            # Fold traversing assignments into the counter: any number that
            # ever reached the tail (and was thus shipped or replied) has
            # passed through every live node, so whichever of them becomes
            # head next continues strictly above it.
            self.counter = update.ts
        if self.is_tail:
            self.metrics.mark(self.assign_mark, self.now)
            batch = RemoteStableBatch(self.site, (update,))
            self.multicast(self.destinations, batch)
            self.send(requester, SeqReply(update.uid, update.vts))
        else:
            successor = self.successor
            if self.repair and self.peers:
                alive = self._alive_positions()
                successor = self._node_at(alive[alive.index(self.position) + 1])
            self.send(successor, ChainForward(update, requester))


def build_chain(env: Environment, site: int, length: int,
                calibration: Optional[Calibration] = None,
                metrics: Optional[MetricsHub] = None,
                name_prefix: str = "chain",
                repair: bool = False,
                alive_interval: float = 0.05,
                suspect_timeout: float = 0.16) -> list[ChainSequencerNode]:
    """Create and link a sequencer chain; returns [head, ..., tail].

    ``repair=True`` builds a self-repairing chain: nodes heartbeat each
    other and dynamically re-form around crashed links (see
    :class:`ChainSequencerNode`).  Off by default — a repairable chain
    exchanges membership traffic even when healthy.
    """
    if length < 1:
        raise ValueError("chain needs at least one node")
    nodes = [
        ChainSequencerNode(env, f"{name_prefix}{i}", site, i, length,
                           calibration=calibration, metrics=metrics,
                           repair=repair, alive_interval=alive_interval,
                           suspect_timeout=suspect_timeout)
        for i in range(length)
    ]
    for node, successor in zip(nodes, nodes[1:]):
        node.successor = successor
    if repair:
        for node in nodes:
            node.set_chain_peers(nodes)
    return nodes
