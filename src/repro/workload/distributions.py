"""Key-access distributions for the workload generator.

The paper's Basho Bench setup draws keys either **uniformly** or from a
**power-law** over 100k keys (§7.2.1 "We experiment with both uniform and
power-law key distributions").  The power-law is implemented as a Zipf
distribution via inverse-transform sampling over a precomputed CDF, which is
deterministic given the caller's ``random.Random`` stream (numpy's samplers
would bypass the seeded stream and are rejection-based, i.e. draw-count
unstable).
"""

from __future__ import annotations

import bisect
import random
from typing import Sequence

__all__ = ["KeyDistribution", "UniformKeys", "ZipfKeys"]


class KeyDistribution:
    """Interface: draw one key id in ``[0, n_keys)``."""

    n_keys: int

    def sample(self, rng: random.Random) -> int:
        raise NotImplementedError


class UniformKeys(KeyDistribution):
    """Every key equally likely."""

    def __init__(self, n_keys: int):
        if n_keys < 1:
            raise ValueError("need at least one key")
        self.n_keys = n_keys

    def sample(self, rng: random.Random) -> int:
        return rng.randrange(self.n_keys)


class ZipfKeys(KeyDistribution):
    """Zipf(s) over ``n_keys`` ranks: P(k) ∝ 1 / (k+1)^s.

    ``s = 0.99`` approximates the YCSB "zipfian" default, a common stand-in
    for the skewed access patterns of internet services.  Rank→key mapping
    is a fixed pseudo-random permutation so hot keys spread across
    partitions instead of clustering at low key ids.
    """

    def __init__(self, n_keys: int, s: float = 0.99, permute_seed: int = 7):
        if n_keys < 1:
            raise ValueError("need at least one key")
        self.n_keys = n_keys
        self.s = s
        weights = [1.0 / (rank + 1) ** s for rank in range(n_keys)]
        total = sum(weights)
        acc = 0.0
        self._cdf: list[float] = []
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float round-off
        permuter = random.Random(permute_seed)
        self._rank_to_key = list(range(n_keys))
        permuter.shuffle(self._rank_to_key)

    def sample(self, rng: random.Random) -> int:
        rank = bisect.bisect_left(self._cdf, rng.random())
        return self._rank_to_key[rank]

    def hottest(self, top: int = 10) -> Sequence[int]:
        """The ``top`` most popular keys (tests / diagnostics)."""
        return self._rank_to_key[:top]
