"""Workload specification — the Basho Bench stand-in.

§7.2: fixed 100-byte binary values, 100k keys, uniform or power-law key
choice, read:update ratios from 99:1 down to 50:50.  A :class:`Workload`
instance is shared by all clients of an experiment (it is stateless with
respect to the caller's RNG), and ``next()`` yields one operation at a time
for a closed-loop session.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Tuple

from .distributions import KeyDistribution, UniformKeys, ZipfKeys

__all__ = ["WorkloadSpec", "Workload", "READ", "UPDATE"]

READ = "read"
UPDATE = "update"


@dataclass
class WorkloadSpec:
    """Declarative description of a client workload."""

    read_ratio: float = 0.9          # fraction of ops that are reads
    n_keys: int = 1000               # paper: 100k (benches scale down)
    distribution: str = "uniform"    # "uniform" | "zipf"
    zipf_s: float = 0.99
    value_bytes: int = 100           # paper: fixed 100-byte binaries
    think_time: float = 0.0          # closed loop by default

    def ratio_label(self) -> str:
        """E.g. ``90:10`` — the paper's read:write notation."""
        reads = round(self.read_ratio * 100)
        return f"{reads}:{100 - reads}"

    def build(self) -> "Workload":
        if self.distribution == "uniform":
            keys: KeyDistribution = UniformKeys(self.n_keys)
        elif self.distribution == "zipf":
            keys = ZipfKeys(self.n_keys, s=self.zipf_s)
        else:
            raise ValueError(f"unknown key distribution {self.distribution!r}")
        return Workload(self, keys)


class Workload:
    """Op-by-op generator consumed by :class:`repro.core.client.SessionClient`."""

    def __init__(self, spec: WorkloadSpec, keys: KeyDistribution):
        self.spec = spec
        self.keys = keys

    def next(self, rng: random.Random) -> Tuple[str, int, int]:
        """Return ``(kind, key, value_bytes)`` for the next operation."""
        kind = READ if rng.random() < self.spec.read_ratio else UPDATE
        key = self.keys.sample(rng)
        return kind, key, self.spec.value_bytes
