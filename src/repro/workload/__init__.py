"""Workload generation: the Basho Bench stand-in (closed-loop sessions,
uniform / Zipf key popularity, configurable read:update mixes)."""

from .distributions import KeyDistribution, UniformKeys, ZipfKeys
from .generator import READ, UPDATE, Workload, WorkloadSpec

__all__ = [
    "KeyDistribution",
    "UniformKeys",
    "ZipfKeys",
    "Workload",
    "WorkloadSpec",
    "READ",
    "UPDATE",
]
