"""Measurement collection.

One :class:`MetricsHub` per experiment gathers everything the paper's
figures need:

* **counters** — monotone counts (ops issued, messages, drops);
* **samples** — unordered value distributions (operation latencies);
* **marks** — event-time streams (one timestamp per completed op), from
  which windowed throughput timelines are derived (Figures 4 and 7);
* **points** — (time, value) series, e.g. visibility latency over time.

Recording is O(1) appends; all statistics are computed after the run by
:mod:`repro.metrics.summary`.  Components receive the hub by injection so
that unit tests can run protocols without one (see :class:`NullMetrics`).
"""

from __future__ import annotations

from collections import defaultdict
from itertools import repeat
from typing import Optional

__all__ = ["MetricsHub", "NullMetrics"]


class MetricsHub:
    """Append-only measurement store for a single experiment run."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = defaultdict(int)
        self.samples: dict[str, list[float]] = defaultdict(list)
        self.marks: dict[str, list[float]] = defaultdict(list)
        self.points: dict[str, list[tuple[float, float]]] = defaultdict(list)
        # Observability hooks (repro.obs): components fetch these and test
        # for None, so a hub without instruments attached costs one
        # attribute read per call site.
        self.tracer = None     # repro.obs.trace.Tracer when attached
        self.slo = None        # repro.obs.sketch.SloRecorder when attached
        self.sketches: dict[str, object] = {}

    # -- recording ------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counters[name] += n

    def record(self, name: str, value: float) -> None:
        """Append ``value`` to the sample distribution ``name``."""
        self.samples[name].append(value)

    def mark(self, name: str, time: float) -> None:
        """Register that event ``name`` occurred at ``time``."""
        self.marks[name].append(time)

    def mark_many(self, name: str, time: float, n_or_times) -> None:
        """Bulk-register occurrences of event ``name``.

        ``n_or_times`` is either a count — ``n`` events all at ``time``,
        the shape of a stabilization round marking a whole stable run at
        once — or an iterable of explicit event times (``time`` is then
        ignored).  One C-level ``extend`` replaces n ``mark()`` calls on
        the propagation hot path.
        """
        if isinstance(n_or_times, int):
            if n_or_times <= 0:
                return
            self.marks[name].extend(repeat(time, n_or_times))
        else:
            times = list(n_or_times)
            if times:   # like the count branch: no phantom empty series
                self.marks[name].extend(times)

    def point(self, name: str, time: float, value: float) -> None:
        """Append a (time, value) pair to the series ``name``."""
        self.points[name].append((time, value))

    def observe(self, name: str, value: float) -> None:
        """Feed ``value`` into the streaming sketch ``name``.

        Unlike :meth:`record`, this keeps O(log range) state per series
        (a :class:`repro.obs.sketch.LogBinHistogram`), so million-op runs
        can report p50/p99/p999 without holding per-op lists.
        """
        self.sketch(name).add(value)

    def sketch(self, name: str, rel_err: float = 0.01):
        """Get or create the streaming quantile sketch ``name``."""
        sk = self.sketches.get(name)
        if sk is None:
            # local import: obs depends on metrics, not the reverse
            from ..obs.sketch import LogBinHistogram
            sk = self.sketches[name] = LogBinHistogram(rel_err)
        return sk

    # -- lightweight queries (heavier math lives in summary.py) ---------
    # Query methods return *copies*: the internal lists keep growing while
    # the simulation runs, so handing them out live would let summary code
    # mutate (or observe a moving view of) a run mid-flight.
    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def sample_values(self, name: str) -> list[float]:
        return list(self.samples.get(name, ()))

    def mark_times(self, name: str) -> list[float]:
        return list(self.marks.get(name, ()))

    def point_series(self, name: str) -> list[tuple[float, float]]:
        return list(self.points.get(name, ()))

    def names(self) -> dict[str, list[str]]:
        """All recorded metric names, grouped by kind (debug aid)."""
        return {
            "counters": sorted(self.counters),
            "samples": sorted(self.samples),
            "marks": sorted(self.marks),
            "points": sorted(self.points),
        }


class NullMetrics(MetricsHub):
    """A hub that discards everything (for tests that don't measure)."""

    def count(self, name: str, n: int = 1) -> None:  # noqa: D102
        pass

    def record(self, name: str, value: float) -> None:  # noqa: D102
        pass

    def mark(self, name: str, time: float) -> None:  # noqa: D102
        pass

    def mark_many(self, name: str, time: float, n_or_times) -> None:  # noqa: D102
        pass

    def point(self, name: str, time: float, value: float) -> None:  # noqa: D102
        pass

    def observe(self, name: str, value: float) -> None:  # noqa: D102
        pass
