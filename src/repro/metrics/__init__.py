"""Measurement: in-run collection (:class:`MetricsHub`) and post-run
statistics (percentiles, CDFs, windowed throughput) matching the paper's
methodology (steady-state trimming, ms-granularity visibility CDFs)."""

from .collector import MetricsHub, NullMetrics
from .summary import (
    cdf,
    mean,
    percentile,
    steady_window,
    throughput,
    trim_marks,
    windowed_points,
    windowed_rate,
)

__all__ = [
    "MetricsHub",
    "NullMetrics",
    "cdf",
    "mean",
    "percentile",
    "steady_window",
    "throughput",
    "trim_marks",
    "windowed_points",
    "windowed_rate",
]
