"""Post-run statistics: percentiles, CDFs, windowed throughput.

Mirrors the measurement methodology of §7:

* throughput is ops/second over the *steady-state* window (the paper ignores
  the first and last minute of each run; :func:`steady_window` applies the
  same trimming proportionally);
* visibility latencies are reported as CDFs (Figure 6) and high percentiles
  (Figure 1 uses the 90th);
* timelines (Figures 4 and 7) bucket events or samples into fixed windows.
"""

from __future__ import annotations

import math
import warnings
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "EmptySeriesWarning",
    "percentile",
    "cdf",
    "mean",
    "throughput",
    "windowed_rate",
    "windowed_points",
    "steady_window",
    "trim_marks",
]


class EmptySeriesWarning(UserWarning):
    """A statistic was requested over an empty series.

    Usually a dead or misnamed metric name — the 0.0 it used to return
    silently renders as a plausible-looking flat line in figures.
    """


#: Module-wide strictness: when True, :func:`percentile` raises on empty
#: input instead of warning.  Figure scripts can flip this to fail fast.
STRICT_EMPTY = False


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for empty input."""
    return float(np.mean(values)) if len(values) else 0.0


def percentile(values: Sequence[float], pct: float,
               strict: Optional[bool] = None) -> float:
    """The ``pct``-th percentile (linear interpolation).

    Empty input emits :class:`EmptySeriesWarning` and returns 0.0, or
    raises ``ValueError`` when ``strict`` is true (default: the module
    flag ``STRICT_EMPTY``) — a silent 0.0 masks dead/misnamed series.
    """
    if not len(values):
        if strict if strict is not None else STRICT_EMPTY:
            raise ValueError(f"percentile(p{pct:g}) over an empty series")
        warnings.warn(
            f"percentile(p{pct:g}) over an empty series; returning 0.0 "
            "(dead or misnamed metric name?)",
            EmptySeriesWarning, stacklevel=2)
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), pct))


def cdf(values: Sequence[float], resolution: Optional[float] = None
        ) -> list[tuple[float, float]]:
    """Empirical CDF as (value, fraction ≤ value) pairs.

    ``resolution`` rounds values into buckets first — the paper reports
    visibility latencies at millisecond granularity, so Figure 6 uses
    ``resolution=1.0`` (ms).
    """
    if not len(values):
        return []
    data = np.asarray(values, dtype=float)
    if resolution:
        data = np.floor(data / resolution) * resolution
    data.sort()
    n = len(data)
    out: list[tuple[float, float]] = []
    previous = None
    for i, v in enumerate(data, 1):
        if previous is not None and v == previous:
            out[-1] = (v, i / n)
        else:
            out.append((float(v), i / n))
            previous = v
    return out


def steady_window(start: float, end: float, warmup_frac: float = 0.15,
                  cooldown_frac: float = 0.15) -> tuple[float, float]:
    """Trim warm-up and cool-down, like the paper's first/last-minute cut."""
    span = end - start
    return (start + span * warmup_frac, end - span * cooldown_frac)


def trim_marks(marks: Sequence[float], window: tuple[float, float]) -> list[float]:
    """Event times restricted to ``window``."""
    lo, hi = window
    return [t for t in marks if lo <= t <= hi]


def throughput(marks: Sequence[float], window: tuple[float, float]) -> float:
    """Steady-state ops/second from completion-time marks."""
    lo, hi = window
    if hi <= lo:
        return 0.0
    return len(trim_marks(marks, window)) / (hi - lo)


def windowed_rate(marks: Sequence[float], start: float, end: float,
                  width: float) -> list[tuple[float, float]]:
    """Events/second in consecutive buckets of ``width`` seconds.

    Returns (bucket midpoint, rate) pairs — the Figure 4 timeline.
    """
    if end <= start or width <= 0:
        return []
    n_buckets = max(1, math.ceil((end - start) / width))
    counts = [0] * n_buckets
    for t in marks:
        if start <= t < end:
            counts[min(int((t - start) / width), n_buckets - 1)] += 1
    return [
        (start + (i + 0.5) * width, counts[i] / width)
        for i in range(n_buckets)
    ]


def windowed_points(points: Sequence[tuple[float, float]], start: float,
                    end: float, width: float,
                    agg: str = "p90") -> list[tuple[float, float]]:
    """Aggregate a (time, value) series into buckets (Figure 7 timeline).

    ``agg`` is ``mean``, ``max``, or ``pNN`` (percentile).  Buckets with no
    samples are omitted.
    """
    if end <= start or width <= 0:
        return []
    n_buckets = max(1, math.ceil((end - start) / width))
    buckets: list[list[float]] = [[] for _ in range(n_buckets)]
    for t, v in points:
        if start <= t < end:
            buckets[min(int((t - start) / width), n_buckets - 1)].append(v)
    out = []
    for i, bucket in enumerate(buckets):
        if not bucket:
            continue
        if agg == "mean":
            value = mean(bucket)
        elif agg == "max":
            value = max(bucket)
        elif agg.startswith("p"):
            value = percentile(bucket, float(agg[1:]))
        else:
            raise ValueError(f"unknown aggregation {agg!r}")
        out.append((start + (i + 0.5) * width, value))
    return out
