"""Simulated write-ahead log with group-commit fsync semantics.

The log is the durable medium of one stabilizer process (a shard, an
Algorithm 4 replica, or the plain service): it outlives
``Process.crash(lose_state=True)`` while the process's protocol state does
not.  Two-phase writes keep the failure model honest:

* :meth:`WriteAheadLog.stage_op` / :meth:`stage_partition_time` append to a
  **volatile** buffer — the in-memory log tail a real implementation holds
  between fsyncs.  An amnesia crash calls :meth:`lose_volatile` and those
  records are gone, exactly like unsynced page-cache contents.
* :meth:`commit` moves everything staged into the **durable** record list.
  The caller charges :meth:`flush_cost` on its ``"disk"`` lane first (fixed
  fsync latency + bytes since the last scheduled flush, the group-commit
  shape from :class:`repro.sim.disk.DiskModel`), and — in fault-tolerant
  deployments — sends the batch acknowledgement only *after* the commit, so
  an acked op is always recoverable (the uplink prunes acked prefixes; an
  ack for a lost record would lose the op forever).

Record kinds:

* ``(OP_RECORD, ts, origin, seq, op)`` — one accepted operation; replay
  rebuilds the unstable buffer from these (per-origin monotone by
  construction, so the :class:`repro.datastruct.runbuffer.RunBuffer`
  contract holds on replay too);
* ``(PT_RECORD, partition_index, ts, None, None)`` — a heartbeat-driven
  PartitionTime advance; replay folds these into the restored vector.
  Losing an unsynced PT record is safe (the floor recomputes lower and new
  heartbeats re-advance it), so heartbeats never force a flush of their own.

:meth:`truncate` drops op records at or below the shipped stable floor and
all PT records (the checkpoint's PartitionTime snapshot supersedes them);
it runs at checkpoint time and is what bounds replay length.

Record **codecs** size the on-disk frames (``codec=`` at construction):

* ``"delta"`` (default) — each record is a tag byte, varint-encoded fields
  with the timestamp delta-encoded against the previous staged record, and
  an 8-byte content digest standing in for the op payload (the value bytes
  live in the partition's own store; the log only needs enough to identify
  and order the op on replay).  Timestamps within one group commit are
  microseconds apart, so deltas fit in 1–3 varint bytes and the fsync
  payload shrinks by roughly an order of magnitude versus full frames.
* ``"full"`` — the historical accounting: the op's ``metadata_bytes`` plus
  fixed 16-byte framing per record (24 bytes per PT record).

The codec changes *cost accounting only*: staged/durable records keep the
full in-memory tuples either way, so replay, truncation, and the recovery
path are codec-agnostic.  The delta chain resets to the durable tail on
:meth:`lose_volatile` — exactly what a re-opened log file would delta
against.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim.disk import DiskModel

__all__ = ["WriteAheadLog", "OP_RECORD", "PT_RECORD", "WAL_CODECS",
           "DEFAULT_WAL_CODEC"]

#: Record tags (first tuple slot).
OP_RECORD = 0
PT_RECORD = 1

#: Recognized record codecs.
WAL_CODECS = ("delta", "full")
DEFAULT_WAL_CODEC = "delta"

#: Framing bytes per record beyond the op's own metadata footprint (full).
_RECORD_OVERHEAD_BYTES = 16
_PT_RECORD_BYTES = 24

#: Delta codec: tag byte + truncated content digest per op record.
_TAG_BYTES = 1
_DIGEST_BYTES = 8


def _varint_len(value: int) -> int:
    """Bytes a zigzag varint encoding of ``value`` occupies (≥ 1)."""
    if value < 0:
        value = (-value << 1) - 1
    else:
        value <<= 1
    n = 1
    while value >= 0x80:
        value >>= 7
        n += 1
    return n


class WriteAheadLog:
    """Durable record list + volatile staging buffer for one stabilizer."""

    __slots__ = ("name", "disk", "codec", "records", "_staged",
                 "_staged_bytes", "_scheduled_bytes", "_last_staged_ts",
                 "_last_durable_ts", "appends", "commits", "bytes_durable",
                 "records_truncated", "_fail_fsyncs", "fsync_failures",
                 "records_torn", "obs_hook")

    def __init__(self, name: str, disk: Optional[DiskModel] = None,
                 codec: str = DEFAULT_WAL_CODEC):
        if codec not in WAL_CODECS:
            raise ValueError(
                f"unknown WAL codec {codec!r} "
                f"(expected one of {', '.join(WAL_CODECS)})"
            )
        self.name = name
        self.disk = disk or DiskModel()
        self.codec = codec
        #: durable records, in acceptance order (survives amnesia crashes)
        self.records: list[tuple] = []
        self._staged: list[tuple] = []      # volatile: lost on amnesia crash
        self._staged_bytes = 0
        self._scheduled_bytes = 0           # staged bytes a flush already covers
        self._last_staged_ts = 0            # delta-codec chain tail (volatile)
        self._last_durable_ts = 0           # chain tail as of the last commit
        self.appends = 0
        self.commits = 0
        self.bytes_durable = 0
        self.records_truncated = 0
        self._fail_fsyncs = 0               # injected: next N commits fail
        self.fsync_failures = 0
        self.records_torn = 0
        #: observability callback ``hook(wal)``, fired after each commit
        #: that moved records durable (repro.obs closes wal_fsync spans
        #: here).  None when no instruments are attached.
        self.obs_hook = None

    def __len__(self) -> int:
        return len(self.records)

    @property
    def staged(self) -> int:
        """Volatile records awaiting a commit (0 after every flush)."""
        return len(self._staged)

    @property
    def unflushed_bytes(self) -> int:
        """Staged bytes not yet made durable (the gauge the scraper reads)."""
        return self._staged_bytes

    # ------------------------------------------------------------------
    # Staging (volatile)
    # ------------------------------------------------------------------
    def _op_record_bytes(self, ts: int, origin: int, seq: int,
                         op: Any) -> int:
        if self.codec == "full":
            return getattr(op, "metadata_bytes", 0) + _RECORD_OVERHEAD_BYTES
        size = (_TAG_BYTES + _DIGEST_BYTES
                + _varint_len(ts - self._last_staged_ts)
                + _varint_len(origin) + _varint_len(seq))
        self._last_staged_ts = ts
        return size

    def stage_op(self, ts: int, origin: int, seq: int, op: Any) -> None:
        """Stage one accepted operation record."""
        self._staged.append((OP_RECORD, ts, origin, seq, op))
        self._staged_bytes += self._op_record_bytes(ts, origin, seq, op)
        self.appends += 1

    def stage_ops(self, entries: list) -> None:
        """Bulk-stage ``(ts, origin, seq, op)`` entries (one batch's suffix).

        Equivalent to calling :meth:`stage_op` per entry — the batched
        ingestion path hands over a whole accepted suffix at once (see
        :meth:`repro.datastruct.opblock.OpBlock.run_entries`).
        """
        if not entries:
            return
        record_bytes = self._op_record_bytes
        size = 0
        for ts, origin, seq, op in entries:
            size += record_bytes(ts, origin, seq, op)
        self._staged.extend((OP_RECORD, ts, origin, seq, op)
                            for ts, origin, seq, op in entries)
        self._staged_bytes += size
        self.appends += len(entries)

    def stage_partition_time(self, partition_index: int, ts: int) -> None:
        """Stage a heartbeat-driven PartitionTime advance."""
        self._staged.append((PT_RECORD, partition_index, ts, None, None))
        if self.codec == "full":
            self._staged_bytes += _PT_RECORD_BYTES
        else:
            self._staged_bytes += (_TAG_BYTES + _varint_len(partition_index)
                                   + _varint_len(ts - self._last_staged_ts))
            self._last_staged_ts = ts
        self.appends += 1

    # ------------------------------------------------------------------
    # Group commit
    # ------------------------------------------------------------------
    def flush_cost(self) -> float:
        """Disk-lane cost of the next flush; marks staged bytes scheduled.

        Each call charges only the bytes staged since the previous call, so
        back-to-back batches each pay one fsync barrier over their own delta
        (a slightly conservative group commit: an ideal implementation would
        coalesce barriers queued behind a busy device).
        """
        delta = self._staged_bytes - self._scheduled_bytes
        if delta <= 0:
            return 0.0
        self._scheduled_bytes = self._staged_bytes
        return self.disk.fsync_cost(delta)

    def fail_fsyncs(self, count: int) -> None:
        """Inject fsync errors: the next ``count`` commits fail (return -1).

        A failed commit leaves every staged record volatile and resets the
        scheduled-bytes mark, so a retry re-pays the full flush cost —
        exactly what re-issuing a failed fsync costs a real log.  Callers
        honouring the ack-after-fsync invariant must withhold the batch
        acknowledgement and retry (with backoff) until a commit succeeds.
        """
        self._fail_fsyncs += count

    def tear_tail(self, records: int) -> int:
        """Torn write: drop up to ``records`` records off the durable tail.

        Models a tail the device never actually persisted, discovered when
        the log is re-opened after a crash — so it should be injected
        together with an amnesia crash of the owner.  The delta chain and
        byte counters are rebased to the surviving tail.  Returns the
        number of records actually torn.
        """
        torn = min(records, len(self.records))
        if torn:
            del self.records[len(self.records) - torn:]
            self.records_torn += torn
            # The chain tail a re-opened file would delta against is the
            # last *surviving* op/PT timestamp.
            tail_ts = 0
            for record in reversed(self.records):
                tail_ts = record[1] if record[0] == OP_RECORD else record[2]
                break
            self._last_durable_ts = tail_ts
            if not self._staged:
                self._last_staged_ts = tail_ts
        return torn

    def commit(self) -> int:
        """Make everything staged durable; returns the record count moved.

        Returns ``-1`` when an injected fsync error fires: nothing staged
        becomes durable and the next :meth:`flush_cost` re-charges the full
        pending bytes (the retry pays a fresh barrier).
        """
        if self._fail_fsyncs > 0:
            self._fail_fsyncs -= 1
            self.fsync_failures += 1
            self._scheduled_bytes = 0
            return -1
        moved = len(self._staged)
        if moved:
            self.records.extend(self._staged)
            self._staged.clear()
            self.bytes_durable += self._staged_bytes
            self._staged_bytes = 0
            self._scheduled_bytes = 0
            self._last_durable_ts = self._last_staged_ts
            self.commits += 1
            if self.obs_hook is not None:
                self.obs_hook(self)
        return moved

    def lose_volatile(self) -> None:
        """Amnesia crash: drop everything not yet committed."""
        self._staged.clear()
        self._staged_bytes = 0
        self._scheduled_bytes = 0
        # The delta chain resumes from the durable tail, as a re-opened
        # log file would.
        self._last_staged_ts = self._last_durable_ts

    # ------------------------------------------------------------------
    # Truncation + replay
    # ------------------------------------------------------------------
    def truncate(self, floor_ts: int) -> int:
        """Drop op records with ``ts <= floor_ts`` and every PT record.

        Called at checkpoint time: the checkpoint's PartitionTime snapshot
        supersedes PT records, and ops at or below the *shipped* stable
        floor were delivered remotely — nothing below the floor is ever
        needed again.  Returns the number of records dropped.
        """
        kept = [r for r in self.records
                if r[0] == OP_RECORD and r[1] > floor_ts]
        dropped = len(self.records) - len(kept)
        self.records = kept
        self.records_truncated += dropped
        return dropped

    def replay(self, partition_time: list[int], floor_ts: int) -> list[tuple]:
        """Fold durable records into ``partition_time`` (mutated in place);
        return the op entries above ``floor_ts`` as ``(ts, origin, seq, op)``
        tuples in acceptance order (per-origin monotone).

        Replay *validates* the log while folding it: op records must be
        strictly increasing in timestamp per origin (the Algorithm 3 FIFO
        contract every durable log upholds by construction), so a corrupt
        or mis-truncated log — e.g. a torn tail that removed a middle
        record rather than a suffix — fails loudly here instead of
        poisoning the :class:`repro.datastruct.runbuffer.RunBuffer`
        invariants downstream."""
        ops = []
        last_per_origin: dict[int, int] = {}
        for record in self.records:
            tag, a, b = record[0], record[1], record[2]
            if tag == OP_RECORD:
                # a=ts, b=origin
                previous = last_per_origin.get(b, -1)
                if a <= previous:
                    raise ValueError(
                        f"WAL {self.name!r}: replay found non-monotone "
                        f"records for origin {b} ({a} after {previous}) — "
                        "log corrupt"
                    )
                last_per_origin[b] = a
                if a > partition_time[b]:
                    partition_time[b] = a
                if a > floor_ts:
                    ops.append((a, b, record[3], record[4]))
            else:
                # a=partition_index, b=ts
                if b > partition_time[a]:
                    partition_time[a] = b
        return ops
