"""Periodic checkpoints of stabilizer state.

A checkpoint is the compaction point of the write-ahead log: a snapshot of
``PartitionTime`` plus the *shipped* stable floor, taken every
``EunomiaConfig.checkpoint_interval`` seconds.  Recovery starts from the
latest checkpoint and replays only the log suffix, and the log is truncated
below the checkpoint's floor — so the checkpoint interval is the dial
between steady-state write amplification (frequent checkpoints) and
recovery/replay length (rare ones).

The floor deliberately records what has been **shipped to remote
datacenters**, not the stabilizer's own running ``StableTime``: a leader's
floor runs ahead of the shipped stream while popped ops sit in merge queues
or in a not-yet-executed propagate slot, and checkpointing that optimistic
floor would let truncation destroy exactly the ops a crash loses.  This is
the same cap that makes the live failover argument go through
(:class:`repro.core.messages.ShardStableVector`), applied to the durable
state — see ``docs/ARCHITECTURE.md``.

The store keeps only the latest checkpoint (the simulated analogue of
atomically replacing a checkpoint file); like the WAL's durable records it
survives ``crash(lose_state=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["Checkpoint", "CheckpointStore"]

#: Framing bytes per checkpoint beyond the PartitionTime vector.
_CHECKPOINT_OVERHEAD_BYTES = 32


@dataclass(slots=True, frozen=True)
class Checkpoint:
    """One durable snapshot of a stabilizer's recoverable state."""

    partition_time: Tuple[int, ...]
    #: shipped stable floor at snapshot time (log truncated at or below it)
    floor: int
    taken_at: float

    @property
    def size_bytes(self) -> int:
        return 8 * len(self.partition_time) + _CHECKPOINT_OVERHEAD_BYTES


class CheckpointStore:
    """Latest-checkpoint store for one stabilizer (durable medium)."""

    __slots__ = ("name", "latest", "writes")

    def __init__(self, name: str):
        self.name = name
        self.latest: Optional[Checkpoint] = None
        self.writes = 0

    def write(self, checkpoint: Checkpoint) -> None:
        """Atomically replace the latest checkpoint."""
        self.latest = checkpoint
        self.writes += 1
