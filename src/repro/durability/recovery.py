"""Crash recovery: checkpoint + WAL replay for amnesia-crashed stabilizers.

:class:`RecoveryManager` rebuilds one stabilizer process after
``crash(lose_state=True)`` wiped its protocol state:

1. start from the latest :class:`~repro.durability.checkpoint.Checkpoint`
   (``PartitionTime`` vector + shipped stable floor), or zeros when the
   crash preceded the first checkpoint;
2. replay the WAL suffix: fold PartitionTime advances in, and rebuild the
   unstable buffer from every op record above the floor — acceptance order
   is per-origin monotone, so the run-aware buffer's ingestion contract
   holds on replay exactly as it did live;
3. pin the process's ``StableTime`` (and, for shards, the ``announced``
   floor) at the recovered floor: everything above it is re-emitted once
   the replica leads again, and remote receivers deduplicate the overlap
   per origin (Alg. 5) exactly as they do for a live failover.

Replay is charged on the process's CPU lane (``DiskModel.replay_cost`` per
record), so a rejoining replica is genuinely busy restoring before it can
serve — retransmitted uplink traffic queues behind the replay.

The *group*-level rejoin — peer state transfer to adopt the surviving
replicas' shipped floors, then re-entering the Ω election — is driven by
the crash units themselves (:meth:`repro.core.shard.ShardedReplicaGroup.recover`,
:meth:`repro.core.replica.EunomiaReplica.rejoin`), which call
:meth:`restore` per member and then run the
``StateTransferRequest``/``StateTransferReply`` handshake of
:mod:`repro.core.messages`.  The manager records a
:class:`RestoreReport` per restore for drills and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..datastruct.opbuffer import OpBuffer
from ..sim.disk import DiskModel

__all__ = ["RecoveryManager", "RestoreReport"]


@dataclass(slots=True)
class RestoreReport:
    """What one checkpoint+WAL restore rebuilt."""

    name: str
    records_replayed: int
    ops_rebuilt: int
    floor: int
    had_checkpoint: bool
    cost_s: float


class RecoveryManager:
    """Restores amnesia-crashed stabilizer processes from durable state."""

    def __init__(self, disk: Optional[DiskModel] = None):
        self.disk = disk or DiskModel()
        self.reports: list[RestoreReport] = []

    def restore(self, proc, extra_floor: int = 0) -> RestoreReport:
        """Rebuild ``proc`` (a :class:`~repro.core.service.StabilizerBase`)
        from its checkpoint store and WAL.

        ``extra_floor`` raises the recovery floor beyond the checkpoint's —
        used when a *live* local coordinator already knows a newer shipped
        floor for this shard (single-shard rejoin), so the restored buffer
        skips ops that are provably delivered.  The floor only ever rises:
        ops at or below a shipped floor are never needed again.
        """
        wal, checkpoints = proc.wal, proc.checkpoints
        if wal is None or checkpoints is None:
            raise RuntimeError(
                f"{proc.name}: cannot restore lost state without durability "
                "(EunomiaConfig(durability='wal'))"
            )
        checkpoint = checkpoints.latest
        if checkpoint is not None:
            floor = max(checkpoint.floor, extra_floor)
            partition_time = list(checkpoint.partition_time)
        else:
            floor = extra_floor
            partition_time = [0] * proc.n_partitions
        entries = wal.replay(partition_time, floor)
        buffer = OpBuffer(proc._tree_factory,
                          backend=proc.config.buffer_backend)
        for ts, origin, seq, op in entries:
            buffer.add(ts, origin, seq, op)
        proc._adopt_recovery_state(partition_time, buffer, floor)
        cost = self.disk.replay_cost(len(wal.records))
        if cost > 0.0:
            # Replay occupies the CPU: deliveries queue behind the restore.
            proc._enqueue(lambda: None, cost)
        report = RestoreReport(
            name=proc.name,
            records_replayed=len(wal.records),
            ops_rebuilt=len(entries),
            floor=floor,
            had_checkpoint=checkpoint is not None,
            cost_s=cost,
        )
        self.reports.append(report)
        return report
