"""Durability & crash recovery for the Eunomia stabilizers.

PR 3 replicated the sharded stabilizer, but its failure model was crash-stop
with perfect memory: a recovered replica restarted with its protocol state
intact.  The hard part of the Algorithm 4 fault-tolerance story — a replica
that loses its in-memory unstable set and PartitionTime and must *rejoin*
without violating the stable serialization — needs state that survives the
crash.  This package provides it, simulated but cost-accounted:

* :mod:`repro.durability.wal` — a write-ahead log with group-commit fsync
  semantics riding the sim clock: accepted ops (and heartbeat PartitionTime
  advances) are *staged* in a volatile buffer and become durable only when a
  flush commits them, so an amnesia crash genuinely loses unsynced records.
  Fault-tolerant replicas acknowledge a batch only after the covering flush
  (ack-after-fsync), which keeps the Alg. 4 prefix property honest: an op the
  uplink pruned (because every replica acked it) is guaranteed to be in every
  replica's durable log.
* :mod:`repro.durability.checkpoint` — periodic snapshots of
  ``(PartitionTime, shipped stable floor)`` that bound log replay and allow
  truncating the log below the floor.  The floor is always the *shipped*
  StableTime (what remote receivers actually got), never a replica's own
  running floor — popped-but-unshipped ops must survive in the log.
* :mod:`repro.durability.recovery` — the rejoin path: replay
  checkpoint + log suffix to rebuild PartitionTime and the unstable buffer,
  then (for replicated shapes) a peer state-transfer round that adopts the
  surviving group's shipped floors before the rejoiner re-enters the Ω
  election, so it resumes from a correct ``StableTime``/``ShardStableVector``
  instead of a stale one.

Enable with ``EunomiaConfig(durability="wal", checkpoint_interval=...)``;
:func:`repro.core.assembly.build_stabilizer_stack` wires the stores into all
four stabilizer shapes.  See ``docs/ARCHITECTURE.md`` ("Durability & crash
recovery") for the end-to-end argument.
"""

from .checkpoint import Checkpoint, CheckpointStore
from .recovery import RecoveryManager, RestoreReport
from .wal import OP_RECORD, PT_RECORD, WriteAheadLog

__all__ = [
    "WriteAheadLog",
    "OP_RECORD",
    "PT_RECORD",
    "Checkpoint",
    "CheckpointStore",
    "RecoveryManager",
    "RestoreReport",
]
