"""CPU service-time calibration.

Every throughput number in the paper is ultimately a statement about how much
CPU one operation costs at some bottleneck process.  This module is the
single place those costs live, with the rationale for each; experiments and
builders take a :class:`Calibration` and never hard-code times.

The anchors, from the paper's evaluation:

* a traditional sequencer saturates at **~48 kops/s** (§7.1) →
  ``sequencer_request_us ≈ 20.8``;
* Eunomia handles **7.7×** more, >370 kops/s, bottlenecked by propagation to
  remote sites rather than op handling (§7.1) → ~2.7 µs/op split between
  tree insert and propagation;
* a chain-replicated (3-node) sequencer loses ~33% → per-request chain work
  ≈ 1.5× the plain sequencer's;
* one Riak machine serves ~3 kops/s (§7.1) and the paper's clusters put
  8 logical partitions on 3 servers per DC → a few hundred µs per storage
  op at a partition;
* GentleRain/Cure pay (a) per-op metadata handling — Cure roughly double
  GentleRain because of vector stamps (§7.2.1) — and (b) a periodic
  stabilization cost proportional to 1/interval (Figure 1's sweep);
* clients generating load against Eunomia directly sustain ~6.2 kops/s each
  (Figure 2: throughput scales with partition count until Eunomia saturates
  near 60 partitions).

``scale`` multiplies **per-operation** service times (default ×10),
shrinking simulated throughput by the same factor so that pure-Python event
counts stay tractable.  All *ratios* — the content of the paper's claims —
are scale invariant; EXPERIMENTS.md reports both the scaled measurements and
the paper-scale equivalents.

Costs come in two kinds, and the distinction matters:

* **per-op costs** (:meth:`Calibration.cost`) are charged once per operation
  — their rate shrinks with the scale factor, so the times are multiplied by
  ``scale`` to keep utilization fractions faithful;
* **periodic / per-batch overheads** (:meth:`Calibration.overhead`) are
  charged at wall-clock rates fixed by protocol intervals (a GST round every
  5 ms, a batch tick every 1 ms) that are *not* scaled — multiplying those
  times by ``scale`` would inflate their CPU share tenfold, so they are used
  unscaled.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Calibration"]


@dataclass
class Calibration:
    """Service times in microseconds at real (paper) scale.

    Use :meth:`cost` to obtain scaled seconds for the simulator.
    """

    #: Global time scale: simulated service times are ``value × scale``.
    scale: float = 10.0

    # -- sequencer service (§7.1) --------------------------------------
    sequencer_request_us: float = 20.8   # 1/20.8µs ≈ 48 kops/s saturation
    chain_head_us: float = 31.2          # assign + forward ⇒ ~32 kops/s (−33%)
    chain_mid_us: float = 25.0
    chain_tail_us: float = 25.0

    # -- Eunomia service -------------------------------------------------
    eunomia_insert_op_us: float = 0.5    # red-black tree insert + bookkeeping
    eunomia_batch_us: float = 1.0        # per received AddOpBatch
    eunomia_heartbeat_us: float = 0.2
    eunomia_propagate_op_us: float = 2.0  # per op per destination (bottleneck)
    eunomia_stab_round_us: float = 10.0  # PROCESS_STABLE fixed cost
    eunomia_ack_us: float = 3.0          # FT replica: emit BatchAck per batch

    # -- sharded Eunomia ---------------------------------------------------
    #: shard-side serialization of one stable-run op (the propagation work
    #: minus the destination fan-out, done once per op on the shard's core)
    eunomia_shard_serialize_op_us: float = 2.0
    #: coordinator per-op forward of a pre-serialized run, per destination —
    #: a K-way heap pop plus a buffer splice, far cheaper than serializing
    eunomia_coord_op_us: float = 0.4
    eunomia_coord_round_us: float = 10.0   # fixed cost per merge/drain round

    # -- durability (WAL + checkpoints, ``durability="wal"``) ------------
    #: CPU to serialize one accepted op into the log's staging buffer —
    #: charged on the ingest path next to the buffer insert
    wal_append_op_us: float = 0.25
    #: group-commit fsync barrier (disk lane; NVMe-class flush latency)
    wal_fsync_us: float = 30.0
    #: per-byte sequential log bandwidth (~1 GB/s), also per fsync'd byte
    wal_byte_us: float = 0.001
    #: write + atomically swap one checkpoint (disk lane, per interval)
    checkpoint_write_us: float = 100.0
    #: decode + re-apply one WAL record during recovery replay
    wal_replay_record_us: float = 0.5

    # -- partition-side (Riak-like storage nodes) ------------------------
    partition_read_us: float = 150.0
    partition_update_us: float = 400.0
    partition_apply_remote_us: float = 100.0
    partition_remote_data_us: float = 20.0
    eunomia_update_extra_us: float = 35.0   # vector stamp + uplink + data ship
    uplink_op_us: float = 1.0               # serialize one op into a batch
    uplink_batch_us: float = 2.0            # per batch per replica

    # -- §5 propagation-tree relays ---------------------------------------
    relay_forward_us: float = 0.5         # buffer one incoming message
    relay_flush_us: float = 1.0           # emit one combined window

    # -- receivers (Alg. 5) ----------------------------------------------
    receiver_enqueue_op_us: float = 1.0
    receiver_flush_us: float = 5.0

    # -- sequencer-based stores (S-Seq / A-Seq) ---------------------------
    sseq_update_extra_us: float = 10.0    # forwarding state per update
    sseq_reply_us: float = 10.0           # handle the sequencer's reply

    # -- clients ----------------------------------------------------------
    client_op_us: float = 30.0            # per-op client-side work
    emulated_partition_gen_us: float = 160.0  # §7.1 load driver: ~6.2 kops/s

    # -- GentleRain / Cure (global stabilization) ------------------------
    gentlerain_read_extra_us: float = 6.0
    gentlerain_update_extra_us: float = 30.0
    gentlerain_gst_round_us: float = 200.0   # per partition per GST round
    cure_read_extra_us: float = 12.0
    cure_update_extra_us: float = 60.0
    cure_gst_round_us: float = 400.0
    gst_heartbeat_us: float = 3.0            # send/receive a sibling heartbeat

    def cost(self, name: str) -> float:
        """Per-op service time in **seconds**, scaled (see module docstring)."""
        return getattr(self, name + "_us") * 1e-6 * self.scale

    def overhead(self, name: str) -> float:
        """Periodic/per-batch service time in **seconds**, unscaled."""
        return getattr(self, name + "_us") * 1e-6

    def throughput_scale(self) -> float:
        """Divide paper ops/s by this to compare with simulated ops/s."""
        return self.scale
