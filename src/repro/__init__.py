"""Eunomia: unobtrusive deferred update stabilization for geo-replication.

A from-scratch reproduction of Gunawardhana, Bravo & Rodrigues (USENIX ATC
2017).  The package provides:

* the **Eunomia service** and the full **EunomiaKV** geo-replicated store
  (:mod:`repro.core`, :mod:`repro.geo`);
* every **baseline** the paper compares against — sequencers (plain and
  chain-replicated), S-Seq, A-Seq, GentleRain, Cure, and an eventually
  consistent store (:mod:`repro.baselines`);
* the **substrates**: a deterministic discrete-event simulator with CPU and
  WAN modelling (:mod:`repro.sim`), hybrid/vector/physical clocks
  (:mod:`repro.clocks`), red–black and AVL trees (:mod:`repro.datastruct`),
  and a partitioned versioned KV store (:mod:`repro.kvstore`);
* a **workload generator**, **metrics**, a **causal-consistency checker**,
  and a **benchmark harness** regenerating every figure of the paper
  (:mod:`repro.harness`; ``python -m repro.harness --all``).

Quickstart::

    from repro import GeoSystemSpec, WorkloadSpec, build_system

    system = build_system("eunomia", GeoSystemSpec(seed=1),
                          WorkloadSpec(read_ratio=0.9))
    system.run(duration=5.0)
    print(system.total_throughput(), "ops/s")
"""

from .baselines import build_system
from .calibration import Calibration
from .core import EunomiaConfig
from .core.protocols import (
    ProtocolSpec,
    available_protocols,
    get_protocol,
    register_protocol,
)
from .geo import GeoSystem, GeoSystemSpec, build_eunomia_system, build_geo_system
from .workload import WorkloadSpec

__version__ = "1.0.0"


def __getattr__(name: str):
    if name == "PROTOCOLS":
        # Live view: plugins registered after import appear immediately
        # (available_protocols() is the explicit spelling of the same).
        return available_protocols()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "build_system",
    "build_geo_system",
    "build_eunomia_system",
    "ProtocolSpec",
    "get_protocol",
    "register_protocol",
    "available_protocols",
    "PROTOCOLS",
    "GeoSystem",
    "GeoSystemSpec",
    "WorkloadSpec",
    "EunomiaConfig",
    "Calibration",
    "__version__",
]
