"""Figure 7 bench — straggler sensitivity (§7.2.3).

Regenerates the straggler timeline: one dc3 partition reports to Eunomia
every 10/100/1000 ms for the middle third of the run.  Paper shapes
asserted: the p90 visibility of healthy-partition dc3 updates at dc2 tracks
the straggling interval, then recovers after healing; under S-Seq healthy
visibility is untouched but the straggler's own clients pay the interval on
every update.
"""

from conftest import run_figure

from repro.harness.figures import fig7


def _assert_fig7_shapes(result, params):
    def eunomia_row(interval_ms, column):
        col = result.columns.index(column)
        for r in result.rows:
            if r[0] == "eunomia (healthy partitions)" and r[1] == interval_ms:
                return r[col]
        raise KeyError(interval_ms)

    for interval in params.straggle_intervals:
        ms = interval * 1e3
        healthy = eunomia_row(ms, "healthy_p90_ms")
        straggling = eunomia_row(ms, "straggling_p90_ms")
        healed = eunomia_row(ms, "healed_p90_ms")
        # the delay tracks the straggling interval...
        assert straggling > 0.5 * ms
        # ...and snaps back afterwards
        assert healed < healthy + 10.0

    col = result.columns.index("straggling_p90_ms")
    sseq_vis = next(r[col] for r in result.rows
                    if r[0] == "sseq (healthy partitions)")
    sseq_lat = next(r[col] for r in result.rows
                    if r[0].startswith("sseq (client"))
    assert sseq_vis < 15.0                       # visibility untouched
    assert sseq_lat > 0.5 * params.straggle_intervals[-1] * 1e3


def bench_fig7_straggler(benchmark):
    params = fig7.Fig7Params.quick()
    result = run_figure(benchmark, fig7, params)
    _assert_fig7_shapes(result, params)


def bench_fig7_straggler_full(benchmark):
    """Figure 7 over its full paper parameters — all three straggling
    intervals (10/100/1000 ms) with the 10 s per-phase timeline (30
    simulated seconds per interval, sequencer comparison included).
    Promoted to CI by the batched dataplane under the full-Figure-1
    recipe: shapes asserted in-bench, wall clock wide-gated so the full
    timeline cannot silently fall back out of CI.  Variance measured
    before gating: ~20% peak-to-peak median across back-to-back runs on
    the baseline machine — inside the 50% wide threshold."""
    params = fig7.Fig7Params()
    result = run_figure(benchmark, fig7, params)
    _assert_fig7_shapes(result, params)
