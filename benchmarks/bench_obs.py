"""Observability overhead benchmark (wide-gated).

The tentpole claim of the repro.obs layer is that it is cheap enough to
leave attached: disabled, components pay one ``metrics.tracer`` attribute
fetch plus an ``is None`` test per op; enabled with 1-in-16 sampling, the
extra work is a hash per commit and a handful of list appends on sampled
ops plus the read-only gauge scraper.  This bench runs the same small
deployment as ``bench_geo_e2e`` twice — bare and with the full surface
attached — and reports the relative overhead.

Variance-first methodology (see ROADMAP / bench_geo_e2e): the paired
design measures both arms inside one process back-to-back with a
best-of-two over the *pair*, so machine-level noise hits both arms
together and mostly cancels in the ratio.  Seven back-to-back baseline
runs put the ratio's spread at a few percent, far below the 50% wide
gate (``scripts/bench_gate.py --gate-wide``) on total wall.  The ISSUE's
≤5% sampled-overhead budget is asserted in-bench with slack for shared
runners (the in-bench ratio bound is the real check; the wall gate only
catches collapses).
"""

import time

from repro.geo.system import GeoSystemSpec, build_geo_system
from repro.workload import WorkloadSpec

SPEC = GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=8, seed=31)
WL = WorkloadSpec(read_ratio=0.9, n_keys=500)
#: ISSUE budget is 5% with observability sampled at 1-in-16; shared CI
#: runners jitter single runs by more than that, so the assert allows
#: noise slack while still catching an accidentally-hot instrumentation
#: path (which shows up as 2x, not 1.2x).
_MAX_RATIO = 1.35


def _run_once(observe: bool) -> tuple:
    start = time.perf_counter()
    system = build_geo_system("eunomia", SPEC, WL)
    if observe:
        system.observe(sample_every=16)
    system.run(2.0)
    wall = time.perf_counter() - start
    return wall, system.total_throughput(), system


def bench_obs_overhead(benchmark):
    """Wall-clock ratio of an observed run over a bare run (paired)."""

    def pair():
        bare, thpt_bare, _ = _run_once(observe=False)
        observed, thpt_obs, system = _run_once(observe=True)
        return bare + observed, bare, observed, thpt_bare, thpt_obs, system

    def best_of_two():
        return min((pair() for _ in range(2)), key=lambda r: r[0])

    total, bare, observed, thpt_bare, thpt_obs, system = benchmark.pedantic(
        best_of_two, rounds=1, iterations=1)
    ratio = observed / bare
    obs = system.obs
    print(f"\nobs overhead: bare {bare:.3f}s, observed {observed:.3f}s "
          f"(ratio {ratio:.3f}); {len(obs.tracer)} spans, "
          f"{obs.gauges.scrapes} scrapes")
    # identical seeds => identical simulated behaviour in both arms
    assert thpt_obs == thpt_bare, "observability changed simulated results"
    assert len(obs.tracer) > 0 and obs.gauges.scrapes > 0
    assert ratio < _MAX_RATIO, (
        f"observability overhead {ratio:.2f}x exceeds {_MAX_RATIO}x budget")
