"""Micro-benchmarks of the simulation substrate itself.

Event-loop and message throughput bound how much simulated traffic every
experiment can afford; these benchmarks keep regressions visible.
"""

from repro.clocks import HybridLogicalClock, PhysicalClock
from repro.sim import ConstantLatency, Environment, Network, Process


def bench_event_loop_throughput(benchmark):
    """Schedule-and-fire cost of 50k chained events."""

    def run_chain():
        env = Environment(seed=1)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 50_000:
                env.loop.schedule(0.001, tick)

        env.loop.schedule(0.001, tick)
        env.run()
        return count[0]

    assert benchmark(run_chain) == 50_000


def bench_network_message_round(benchmark):
    """Ping-pong message delivery through the FIFO network (20k rounds)."""

    class Pong:
        size_bytes = 16

    class Peer(Process):
        def __init__(self, env, name, rounds):
            super().__init__(env, name)
            self.rounds = rounds
            self.other = None

        def on_pong(self, msg, src):
            if self.rounds > 0:
                self.rounds -= 1
                self.send(self.other, Pong())

    def ping_pong():
        env = Environment(seed=1)
        Network(env, ConstantLatency(0.0001))
        a, b = Peer(env, "a", 10_000), Peer(env, "b", 10_000)
        a.other, b.other = b, a
        a.send(b, Pong())
        env.run()
        return env.loop.processed_events

    benchmark(ping_pong)


def bench_hybrid_clock_updates(benchmark):
    """Alg. 2 line 5 in a tight loop (100k timestamp generations)."""
    env = Environment(seed=1)
    hlc = HybridLogicalClock(PhysicalClock(env, drift_ppm=25.0))

    def generate():
        dep = 0
        for _ in range(100_000):
            dep = hlc.update(dep - 1)
        return dep

    benchmark(generate)
