"""Micro-benchmarks of the simulation substrate itself.

Event-loop and message throughput bound how much simulated traffic every
experiment can afford; these benchmarks keep regressions visible.
"""

from repro.clocks import HybridLogicalClock, PhysicalClock
from repro.sim import ConstantLatency, Environment, Network, Process, TimeWheelLoop


def bench_event_loop_throughput(benchmark):
    """Schedule-and-fire cost of 50k chained events."""

    def run_chain():
        env = Environment(seed=1)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 50_000:
                env.loop.schedule(0.001, tick)

        env.loop.schedule(0.001, tick)
        env.run()
        return count[0]

    assert benchmark(run_chain) == 50_000


def bench_network_message_round(benchmark):
    """Ping-pong message delivery through the FIFO network (20k rounds)."""

    class Pong:
        size_bytes = 16

    class Peer(Process):
        def __init__(self, env, name, rounds):
            super().__init__(env, name)
            self.rounds = rounds
            self.other = None

        def on_pong(self, msg, src):
            if self.rounds > 0:
                self.rounds -= 1
                self.send(self.other, Pong())

    def ping_pong():
        env = Environment(seed=1)
        Network(env, ConstantLatency(0.0001))
        a, b = Peer(env, "a", 10_000), Peer(env, "b", 10_000)
        a.other, b.other = b, a
        a.send(b, Pong())
        env.run()
        return env.loop.processed_events

    benchmark(ping_pong)


def bench_event_loop_throughput_batched(benchmark):
    """The 50k-op workload when ops travel in 64-op blocks.

    ``bench_event_loop_throughput`` pays one scheduled event per op — the
    pre-batching shape, where per-event loop overhead bounds how much
    simulated load CI can afford.  Here one ``schedule_periodic`` handle on
    the time wheel consumes a 64-op block per firing (the ``OpBlock`` /
    ``send_many`` shipping shape), so the loop schedules ~1/64th the events
    for the same op count; the ratio between the two benches is the
    amortization the batched APIs buy.
    """
    BLOCK = 64
    TOTAL = 50_048                   # 782 block firings x 64 ops

    def run_blocks():
        loop = TimeWheelLoop()
        count = [0]
        block = list(range(BLOCK))

        def tick():
            total = count[0]
            for _ in block:          # per-op work, same as the chained bench
                total += 1
            count[0] = total
            if total >= TOTAL:
                handle.cancel()

        handle = loop.schedule_periodic(0.001, tick)
        loop.run()
        return count[0]

    assert benchmark(run_blocks) == TOTAL


def bench_network_message_round_batched(benchmark):
    """The ~20k-message workload shipped as ``send_many`` batches.

    Jitter-free latency collapses each 64-message batch into ONE
    ``deliver_batch`` event whose zero-cost messages dispatch inline — the
    paper-scale shipping path (`RunBuffer` propagation, Alg. 5 streams).
    Compare against ``bench_network_message_round``: same message count,
    two scheduled events per message there versus ~1/64 here.
    """

    class Pong:
        size_bytes = 16

    class Sink(Process):
        received = 0

        def on_pong(self, msg, src):
            self.received += 1

    BATCH, ROUNDS = 64, 312          # 19 968 messages ≈ the 20k round bench

    def bulk_ship():
        env = Environment(seed=1)
        net = Network(env, ConstantLatency(0.0001))
        a, b = Sink(env, "a"), Sink(env, "b")
        batch = [Pong() for _ in range(BATCH)]
        for i in range(ROUNDS):
            env.loop.schedule(i * 0.001,
                              lambda: net.send_many(a, b, batch))
        env.run()
        return b.received

    assert benchmark(bulk_ship) == BATCH * ROUNDS


def bench_hybrid_clock_updates(benchmark):
    """Alg. 2 line 5 in a tight loop (100k timestamp generations)."""
    env = Environment(seed=1)
    hlc = HybridLogicalClock(PhysicalClock(env, drift_ppm=25.0))

    def generate():
        dep = 0
        for _ in range(100_000):
            dep = hlc.update(dep - 1)
        return dep

    benchmark(generate)


def bench_failure_tables_unarmed_overhead(benchmark):
    """Idle fault machinery must not tax the hot send path.

    The chaos work threads loss/disconnect/extra-delay tables and a crash
    epoch through every delivery; this bench runs the ping-pong workload
    with the tables *populated but neutralized* (loss 0.0, reconnected,
    extra delay 0.0, an armed-but-empty FailureSchedule) and asserts
    in-bench that it stays within noise of the untouched network — the
    "zero overhead unarmed" contract, enforced without a baseline entry.
    """
    import time

    from repro.sim import FailureSchedule

    class Pong:
        size_bytes = 16

    class Peer(Process):
        def __init__(self, env, name, rounds):
            super().__init__(env, name)
            self.rounds = rounds
            self.other = None

        def on_pong(self, msg, src):
            if self.rounds > 0:
                self.rounds -= 1
                self.send(self.other, Pong())

    def traffic(neutralized_tables):
        env = Environment(seed=1)
        net = Network(env, ConstantLatency(0.0001))
        a, b = Peer(env, "a", 8_000), Peer(env, "b", 8_000)
        a.other, b.other = b, a
        if neutralized_tables:
            FailureSchedule(env).arm()
            net.set_link_loss(a, b, 0.5)
            net.set_link_loss(a, b, 0.0)
            net.disconnect(a, b)
            net.reconnect(a, b)
            net.set_link_extra_delay(a, b, 0.01)
            net.set_link_extra_delay(a, b, 0.0)
        a.send(b, Pong())
        env.run()
        assert a.rounds == 0 and b.rounds == 0
        return env.loop.processed_events

    def timed(flag):
        start = time.perf_counter()
        events = traffic(flag)
        return time.perf_counter() - start, events

    timed(False), timed(True)                      # warm caches
    plain = min(timed(False)[0] for _ in range(3))
    armed = min(timed(True)[0] for _ in range(3))
    # generous bound: this is a no-measurable-cost contract, not a perf
    # target — a table lookup regression shows up as 2x+, noise as <15%
    assert armed <= plain * 1.25, (
        f"neutralized fault tables cost {armed / plain:.2f}x "
        "on the hot send path")
    benchmark(lambda: traffic(True))
