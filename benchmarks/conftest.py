"""Shared helper for the figure benchmarks.

Each ``bench_figN.py`` runs the corresponding experiment exactly once under
pytest-benchmark (the experiment *is* the workload; repeating it would only
re-measure the same deterministic run) and prints the regenerated table so
that ``pytest benchmarks/ --benchmark-only`` leaves a full evaluation report
in its output.
"""

from __future__ import annotations


def run_figure(benchmark, module, params):
    """Run one figure module under the benchmark fixture; print its table."""
    result = benchmark.pedantic(module.run, args=(params,),
                                rounds=1, iterations=1)
    print()
    print(result.render_text())
    return result
