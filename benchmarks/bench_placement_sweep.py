"""Partial geo-replication sweep: placement locality x key skew (wide-gated).

One deployment shape — 3 DCs x 6 partitions x 4 clients per DC, EunomiaKV
over the paper's WAN topology — swept across the placement axis
(``full`` replication, ``stride:2`` two copies per partition,
``stride:1`` single-copy maximum locality) crossed with key skew
(``uniform`` vs ``zipf`` s=0.99).  Each cell reports simulated
throughput and the fraction of client ring slots that forward to a
remote DC: the locality/redundancy trade partial placement exists to
expose.  The simulated results are deterministic per cell; only the
builder wall-clock is benchmarked, so a substrate regression on the
forwarding/stable-cut paths shows up here without any figure experiment
in the loop.

Variance-first methodology (see ROADMAP): the grid's wall-clock spread
was measured before gating — 5 back-to-back runs on the baseline
machine gave +-5.4% relative stdev, 14% peak-to-peak, with
bit-identical simulated throughput across runs.  Shared CI runners are
far noisier, so like the other end-to-end suites it gates at the wide
50% threshold (``scripts/bench_gate.py --gate-wide``).
"""

import time

from repro.geo.system import GeoSystemSpec, build_geo_system
from repro.workload import WorkloadSpec

PLACEMENTS = ("full", "stride:2", "stride:1")
SKEWS = ("uniform", "zipf")

N_DCS = 3
RUN_FOR = 1.2


def _spec(placement):
    return GeoSystemSpec(n_dcs=N_DCS, partitions_per_dc=6, clients_per_dc=4,
                         seed=31, placement=placement)


def _workload(skew):
    return WorkloadSpec(read_ratio=0.9, n_keys=300, distribution=skew)


def _remote_slot_fraction(system):
    """Fraction of (client, ring slot) pairs served by a remote DC."""
    remote = total = 0
    for client in system.clients:
        for target in client.partitions:
            total += 1
            remote += target.site != client.dc_id
    return remote / total


def _run_cell(placement, skew):
    system = build_geo_system("eunomia", _spec(placement), _workload(skew))
    system.run(RUN_FOR)
    return (system.total_throughput(), _remote_slot_fraction(system))


def bench_placement_sweep(benchmark):
    """Wall-clock for the full placement x skew grid (6 deployments)."""

    def grid():
        start = time.perf_counter()
        cells = {(p, s): _run_cell(p, s) for p in PLACEMENTS for s in SKEWS}
        return time.perf_counter() - start, cells

    def best_of_two():
        return min((grid() for _ in range(2)), key=lambda pair: pair[0])

    wall, cells = benchmark.pedantic(best_of_two, rounds=1, iterations=1)
    print(f"\nplacement sweep: {wall:.3f}s wall for "
          f"{len(cells)} x {RUN_FOR} simulated seconds")
    for (placement, skew), (thpt, remote) in sorted(cells.items()):
        print(f"  {placement:<9} {skew:<8} {thpt:8.0f} ops/s simulated, "
              f"{remote:.0%} remote ring slots")
    # locality is monotone in copies: full forwards nothing, stride:2
    # forwards some, stride:1 the most — and every cell still makes
    # progress (the placement-aware stable cut never stalls a DC).
    for skew in SKEWS:
        fracs = [cells[(p, skew)][1] for p in PLACEMENTS]
        assert fracs[0] == 0.0 and fracs[0] < fracs[1] < fracs[2]
        assert all(cells[(p, skew)][0] > 100 for p in PLACEMENTS)
