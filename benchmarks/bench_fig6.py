"""Figure 6 bench — remote-update visibility CDFs (§7.2.2).

Regenerates the visibility distributions on the near (dc1→dc2) and far
(dc2→dc3) pairs.  Paper shapes asserted: EunomiaKV ~95% within ~15 ms extra
on both pairs; GentleRain floored at ~40 ms on the near pair by its false
dependency on the farthest datacenter; on the far pair GentleRain beats
Cure (the vector buys nothing there) while EunomiaKV still leads.
"""

from conftest import run_figure

from repro.harness.figures import fig6


def bench_fig6_visibility_cdfs(benchmark):
    result = run_figure(benchmark, fig6, fig6.Fig6Params.quick())

    def row(system, pair, column):
        col = result.columns.index(column)
        for r in result.rows:
            if r[0] == system and r[1] == pair:
                return r[col]
        raise KeyError((system, pair))

    # EunomiaKV: the paper's headline visibility band
    assert row("eunomia", "dc1->dc2", "p95_ms") < 25.0
    assert row("eunomia", "dc1->dc2", "pct_within_15ms") > 85.0

    # GentleRain's near-pair floor: the farthest-DC false dependency
    assert row("gentlerain", "dc1->dc2", "min_ms") > 30.0
    assert row("cure", "dc1->dc2", "p90_ms") < row("gentlerain", "dc1->dc2",
                                                   "p90_ms")

    # far pair: vector overhead, no latency benefit -> GentleRain <= Cure
    assert row("gentlerain", "dc2->dc3", "p90_ms") <= row(
        "cure", "dc2->dc3", "p90_ms") + 1.0
    # EunomiaKV best everywhere
    assert row("eunomia", "dc2->dc3", "p90_ms") < row(
        "gentlerain", "dc2->dc3", "p90_ms")

    # the CDF series are exported for plotting
    assert "eunomia:dc1->dc2" in result.series
