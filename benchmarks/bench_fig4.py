"""Figure 4 bench — impact of replica failures on Eunomia (§7.1).

Regenerates the crash timeline: the leader dies at t₁, its successor at t₂.
Paper shapes asserted: 1-FT goes to zero after the first crash; 2-FT
survives the first (recovering to ~95%+) and dies at the second; 3-FT
survives both.  The sharded variant replays the same schedule against
Alg. 4 × K=2 replica groups and asserts the identical shape — replicating
the sharded pipeline preserves the paper's failover behaviour.
"""

from conftest import run_figure

from repro.harness.figures import fig4


def _assert_failover_shape(result):
    one = {c: result.row_value("1-FT", c)
           for c in ("before_crash1", "between_crashes", "after_crash2")}
    two = {c: result.row_value("2-FT", c)
           for c in ("before_crash1", "between_crashes", "after_crash2")}
    three = {c: result.row_value("3-FT", c)
             for c in ("before_crash1", "between_crashes", "after_crash2")}

    for row in (one, two, three):
        assert row["before_crash1"] > 0.9          # healthy start
    assert one["between_crashes"] < 0.05           # 1-FT dead after t1
    assert two["between_crashes"] > 0.9            # 2-FT failed over
    assert two["after_crash2"] < 0.05              # ...and died at t2
    assert three["between_crashes"] > 0.9          # 3-FT survives t1
    assert three["after_crash2"] > 0.9             # ...and t2


def bench_fig4_failure_timeline(benchmark):
    _assert_failover_shape(run_figure(benchmark, fig4,
                                      fig4.Fig4Params.quick()))


def bench_fig4_failure_timeline_sharded(benchmark):
    """The same failure schedule against K=2 ShardedReplicaGroups."""
    _assert_failover_shape(run_figure(benchmark, fig4,
                                      fig4.Fig4Params.quick_sharded()))


def bench_fig4_amnesia_rejoin(benchmark):
    """Crash → amnesia → rejoin (durability="wal", beyond the paper).

    The K=2 × 3-replica leader group loses its state at t₁ and rejoins at
    t₂ via checkpoint + WAL replay and peer state transfer.  Asserted
    shape: healthy before the crash, the interim leader carries near-full
    throughput through the outage, and the restored leader carries it
    after the rejoin handover — amnesia costs availability only for the
    failover/handover dips, never a stall.
    """
    result = run_figure(benchmark, fig4, fig4.Fig4Params.quick_amnesia())
    phases = {c: result.row_value("3-FT+rejoin", c)
              for c in ("before_crash1", "between_crashes", "after_crash2")}
    assert phases["before_crash1"] > 0.9      # healthy start
    assert phases["between_crashes"] > 0.9    # interim leader took over
    assert phases["after_crash2"] > 0.9       # restored leader resumed
