"""Figure 3 bench — fault-tolerance overhead at max throughput (§7.1).

Regenerates the normalized comparison of fault-tolerant Eunomia (replica
count sweep) against plain and chain-replicated sequencers.  Paper shapes
asserted: Eunomia's FT penalty is small (~9%) and independent of the
replica count — replicas never coordinate — while chain replication costs
the sequencer about a third of its ceiling.
"""

from conftest import run_figure

from repro.harness.figures import fig3


def bench_fig3_ft_overhead(benchmark):
    params = fig3.Fig3Params.quick()
    result = run_figure(benchmark, fig3, params)

    ft_norms = [result.row_value(f"eunomia {r}-FT", "normalized")
                for r in params.replica_counts]
    # small overhead...
    assert all(0.85 < n <= 1.0 for n in ft_norms)
    # ...independent of the replica count
    assert max(ft_norms) - min(ft_norms) < 0.05

    seq = result.row_value("sequencer non-FT", "ops_s")
    chain = result.row_value(f"sequencer {params.chain_length}-FT", "ops_s")
    assert 0.60 < chain / seq < 0.75  # paper: −33%

    # Alg. 4 × K: replicating the sharded pipeline stays cheap too (the
    # acks — the only extra work — are spread over the K shard workers).
    k, r = params.sharded_ft
    assert 0.85 < result.row_value(f"eunomia K{k}x{r}-FT", "normalized") <= 1.0
