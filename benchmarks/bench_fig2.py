"""Figure 2 bench — maximum throughput: Eunomia vs a sequencer (§7.1).

Regenerates the partition-count sweep with both services driven to
saturation.  Paper shapes asserted: the sequencer is flat at its ceiling
(~48 kops/s at paper scale) while Eunomia scales with offered load to
roughly 7.7× that ceiling.
"""

from conftest import run_figure

from repro.harness.figures import fig2


def bench_fig2_max_throughput(benchmark):
    params = fig2.Fig2Params.quick()
    result = run_figure(benchmark, fig2, params)

    counts = list(params.partition_counts)
    seq_rates = [result.row_value(c, "sequencer_ops_s") for c in counts]
    eu_rates = [result.row_value(c, "eunomia_ops_s") for c in counts]

    # sequencer: saturated and flat across the sweep
    assert max(seq_rates) / min(seq_rates) < 1.05
    # Eunomia: scales with the offered load until its own ceiling
    assert eu_rates[0] < eu_rates[-1]
    # headline ratio: ~7.7x at the top of the sweep (paper's number)
    top_ratio = result.row_value(counts[-1], "ratio")
    assert 6.0 < top_ratio < 9.5
