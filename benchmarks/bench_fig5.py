"""Figure 5 bench — geo-replicated throughput by workload mix (§7.2.1).

Regenerates the Eventual / EunomiaKV / GentleRain / Cure comparison across
read:write mixes.  Paper shapes asserted: the ordering
eventual ≥ eunomia > gentlerain > cure holds on every mix, and EunomiaKV
stays within a few percent of the eventually consistent ceiling.
"""

from conftest import run_figure

from repro.harness.figures import fig5


def bench_fig5_geo_throughput(benchmark):
    params = fig5.Fig5Params.quick()
    result = run_figure(benchmark, fig5, params)

    for row in result.rows:
        label, eventual, eunomia, gentlerain, cure, drop = row
        assert eunomia > gentlerain > cure, label
        assert eventual >= eunomia * 0.99, label
        assert drop > -12.0, label          # paper: −4.7% average

    # the update-heavy mix hurts every causal system more
    heavy = result.rows[0]   # 50:50
    light = result.rows[-1]  # most read-heavy in the sweep
    assert heavy[1] < light[1]
