"""Figure 5 bench — geo-replicated throughput by workload mix (§7.2.1).

Regenerates the Eventual / EunomiaKV / GentleRain / Cure comparison across
read:write mixes.  Paper shapes asserted: the ordering
eventual ≥ eunomia > gentlerain > cure holds on every mix, and EunomiaKV
stays within a few percent of the eventually consistent ceiling.
"""

from conftest import run_figure

from repro.harness.figures import fig5


def _assert_fig5_shapes(result):
    for row in result.rows:
        label, eventual, eunomia, gentlerain, cure, drop = row
        assert eunomia > gentlerain > cure, label
        assert eventual >= eunomia * 0.99, label
        assert drop > -12.0, label          # paper: −4.7% average

    # the update-heavy mix hurts every causal system more
    heavy = result.rows[0]   # 50:50
    light = result.rows[-1]  # most read-heavy in the sweep
    assert heavy[1] < light[1]


def bench_fig5_geo_throughput(benchmark):
    result = run_figure(benchmark, fig5, fig5.Fig5Params.quick())
    _assert_fig5_shapes(result)


def bench_fig5_geo_throughput_full(benchmark):
    """Figure 5 over its full paper grid — all four read:write mixes, both
    key distributions, 5 s runs, 8 clients per DC (32 protocol deployments
    per round).  Promoted to CI by the batched dataplane under the same
    recipe as the full Figure 1 run: the simulated results are asserted
    in-bench, and the wall clock is gated at the wide threshold so a
    substrate slowdown that prices the full figure back out of CI fails
    the gate.  Variance measured before gating: ~14% peak-to-peak median
    across back-to-back runs on the baseline machine — well inside the
    50% wide threshold."""
    result = run_figure(benchmark, fig5, fig5.Fig5Params())
    _assert_fig5_shapes(result)
