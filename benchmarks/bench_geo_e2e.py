"""End-to-end geo-deployment smoke benchmark (wide-gated).

The ROADMAP's "next candidate" after the overload rig: one small but
complete EunomiaKV deployment — 3 DCs × 4 partitions × 8 clients over the
paper's WAN topology, NTP discipline, receivers, the lot — measured for
builder wall-clock.  This is the cost every figure experiment pays per
cell, so a collapse here multiplies across the whole harness.

Variance-first methodology (same as the overload rig, see ROADMAP): the
run-to-run spread was measured *before* gating — 7 back-to-back runs on
the baseline machine gave ±1.7% relative stdev, 4.8% peak-to-peak
(simulated throughput bit-identical across runs, as it must be).  Shared
CI runners are far noisier than an idle machine, so it gates at the wide
50% threshold (``scripts/bench_gate.py --gate-wide``), which catches
collapses without tripping on runner noise.
"""

import time

from repro.core.config import EunomiaConfig
from repro.geo.system import GeoSystemSpec, build_geo_system
from repro.workload import WorkloadSpec

SPEC = GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=8, seed=31)
WL = WorkloadSpec(read_ratio=0.9, n_keys=500)

# The uplink-bound scenario: 90% updates, so nearly every client op feeds
# the partition → uplink → service/WAL dataplane, and a fault-tolerant
# R=2 service doubles the shipped-frame volume (per-replica windows +
# acks).  This is the workload the batched-frame dataplane targets.
UPDATE_SPEC = GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=8,
                            seed=33)
UPDATE_WL = WorkloadSpec(read_ratio=0.1, n_keys=500)


def bench_geo_small_e2e(benchmark):
    """Wall-clock to build + run 2 simulated seconds of a full deployment."""

    def run():
        start = time.perf_counter()
        system = build_geo_system("eunomia", SPEC, WL)
        system.run(2.0)
        wall = time.perf_counter() - start
        return wall, system.total_throughput()

    def best_of_two():
        return min((run() for _ in range(2)), key=lambda pair: pair[0])

    wall, thpt = benchmark.pedantic(best_of_two, rounds=1, iterations=1)
    print(f"\ngeo e2e: {wall:.3f}s wall for 2.0 simulated seconds, "
          f"{thpt:.0f} ops/s simulated")
    # the simulation itself is deterministic; only the wall-clock may vary
    assert thpt > 3000


def bench_geo_update_heavy_e2e(benchmark):
    """Wall-clock for the client-update-heavy (uplink-bound) deployment.

    90:10 write:read against a fault-tolerant R=2 EunomiaKV site: the run
    is dominated by the batched dataplane (uplink frames, service ingest,
    receiver flushes), so regressions in any per-op path show up here
    first.  Variance measured before gating: ~2% peak-to-peak median
    across back-to-back best-of-two runs on the baseline machine
    (wide-gated alongside the small run, same rig).
    """

    def run():
        start = time.perf_counter()
        config = EunomiaConfig(fault_tolerant=True, n_replicas=2)
        system = build_geo_system("eunomia", UPDATE_SPEC, UPDATE_WL,
                                  config=config)
        system.run(2.0)
        wall = time.perf_counter() - start
        return wall, system.total_throughput()

    def best_of_two():
        return min((run() for _ in range(2)), key=lambda pair: pair[0])

    wall, thpt = benchmark.pedantic(best_of_two, rounds=1, iterations=1)
    print(f"\ngeo update-heavy e2e: {wall:.3f}s wall for 2.0 simulated "
          f"seconds, {thpt:.0f} ops/s simulated")
    assert thpt > 2000
