"""§6 ablation — the red–black tree versus AVL under Eunomia's access mix.

The authors report that for Eunomia's workload (insert-heavy with periodic
ordered prefix extraction) the red–black tree beat AVL.  These benchmarks
replay exactly that access pattern against both structures, plus the two
primitive operations in isolation.
"""

import random

import pytest

from repro.datastruct import AVLTree, RedBlackTree

N_OPS = 20_000


def eunomia_access_pattern(tree_cls, n_ops=N_OPS, stab_every=500):
    """Insert timestamps in arrival order; pop the stable prefix periodically.

    Timestamps are mostly increasing with bounded out-of-order arrivals —
    the shape Eunomia sees from loosely synchronized partitions.
    """
    rng = random.Random(7)
    tree = tree_cls()
    clock = 0
    stable = 0
    for i in range(n_ops):
        clock += rng.randrange(1, 10)
        tree.insert(clock - rng.randrange(0, 50), i)
        if i % stab_every == stab_every - 1:
            stable = clock - 100
            tree.pop_leq(stable)
    return tree


@pytest.mark.parametrize("tree_cls", [RedBlackTree, AVLTree],
                         ids=["red-black", "avl"])
def bench_eunomia_buffer_pattern(benchmark, tree_cls):
    benchmark(eunomia_access_pattern, tree_cls)


@pytest.mark.parametrize("tree_cls", [RedBlackTree, AVLTree],
                         ids=["red-black", "avl"])
def bench_random_inserts(benchmark, tree_cls):
    rng = random.Random(11)
    keys = [rng.randrange(10**9) for _ in range(N_OPS)]

    def insert_all():
        tree = tree_cls()
        for k in keys:
            tree.insert(k, k)
        return tree

    benchmark(insert_all)


@pytest.mark.parametrize("tree_cls", [RedBlackTree, AVLTree],
                         ids=["red-black", "avl"])
def bench_ordered_prefix_extraction(benchmark, tree_cls):
    rng = random.Random(13)
    keys = [rng.randrange(10**9) for _ in range(N_OPS)]

    def build_and_drain():
        tree = tree_cls()
        for k in keys:
            tree.insert(k, k)
        while tree:
            tree.pop_leq(tree.min_item()[0] + 10**7)

    benchmark(build_and_drain)
