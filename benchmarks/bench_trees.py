"""§6 ablation — unstable-op buffer backends under Eunomia's access mix.

Two layers of benchmarks:

* ``bench_opbuffer_ingestion`` — the stabilization hot path end to end at
  the buffer level: per-partition monotone batches interleaved at random
  (exactly what Algorithm 3 feeds the buffer), periodic FIND_STABLE drains.
  Swept over backend × batch size; the run-aware backend's O(1) appends
  must beat the red–black tree's O(log n) inserts by ≥3× at batch ≥ 8 —
  the acceptance bar of the ``buffer_backend="runs"`` change, gated by
  ``scripts/bench_gate.py`` against the committed baseline.
* the original tree micro-benches — the paper's red–black vs AVL ablation
  (insert-heavy mix, random inserts, prefix extraction), kept as the
  tree-level ground truth.
"""

import random

import pytest

from repro.datastruct import AVLTree, OpBuffer, RedBlackTree

N_OPS = 20_000


# ----------------------------------------------------------------------
# Buffer-level ingestion: backend x batch size
# ----------------------------------------------------------------------
def monotone_batches(n_partitions, batch, n_ops, seed=17):
    """Randomly interleaved batches, monotone timestamps per partition."""
    rng = random.Random(seed)
    clocks = [0] * n_partitions
    seqs = [0] * n_partitions
    batches = []
    produced = 0
    while produced < n_ops:
        p = rng.randrange(n_partitions)
        ops = []
        for _ in range(batch):
            clocks[p] += rng.randrange(1, 10)
            seqs[p] += 1
            ops.append((clocks[p], p, seqs[p]))
        batches.append(ops)
        produced += batch
    return batches


def opbuffer_ingestion(backend, batches, stab_every):
    """Ingest every batch; drain the stable prefix every ``stab_every``."""
    buf = OpBuffer(backend=backend)
    add = buf.add
    floor = 0
    for i, ops in enumerate(batches):
        for ts, origin, seq in ops:
            add(ts, origin, seq, None)
        if i % stab_every == stab_every - 1:
            floor = max(floor, ops[-1][0] - 200)
            buf.pop_stable(floor)
    buf.pop_stable(float("inf"))
    return buf


@pytest.mark.parametrize("batch", [1, 8, 64],
                         ids=["b1", "b8", "b64"])
@pytest.mark.parametrize("backend", ["runs", "rbtree", "avl"])
def bench_opbuffer_ingestion(benchmark, backend, batch):
    batches = monotone_batches(n_partitions=16, batch=batch, n_ops=N_OPS)
    stab_every = max(1, 400 // batch)   # ~one drain per 400 ops, every size
    result = benchmark(opbuffer_ingestion, backend, batches, stab_every)
    assert result.total_added >= N_OPS
    assert len(result) == 0             # fully drained


# ----------------------------------------------------------------------
# Tree-level primitives (the paper's red-black vs AVL ablation)
# ----------------------------------------------------------------------


def eunomia_access_pattern(tree_cls, n_ops=N_OPS, stab_every=500):
    """Insert timestamps in arrival order; pop the stable prefix periodically.

    Timestamps are mostly increasing with bounded out-of-order arrivals —
    the shape Eunomia sees from loosely synchronized partitions.
    """
    rng = random.Random(7)
    tree = tree_cls()
    clock = 0
    stable = 0
    for i in range(n_ops):
        clock += rng.randrange(1, 10)
        tree.insert(clock - rng.randrange(0, 50), i)
        if i % stab_every == stab_every - 1:
            stable = clock - 100
            tree.pop_leq(stable)
    return tree


@pytest.mark.parametrize("tree_cls", [RedBlackTree, AVLTree],
                         ids=["red-black", "avl"])
def bench_eunomia_buffer_pattern(benchmark, tree_cls):
    benchmark(eunomia_access_pattern, tree_cls)


@pytest.mark.parametrize("tree_cls", [RedBlackTree, AVLTree],
                         ids=["red-black", "avl"])
def bench_random_inserts(benchmark, tree_cls):
    rng = random.Random(11)
    keys = [rng.randrange(10**9) for _ in range(N_OPS)]

    def insert_all():
        tree = tree_cls()
        for k in keys:
            tree.insert(k, k)
        return tree

    benchmark(insert_all)


@pytest.mark.parametrize("tree_cls", [RedBlackTree, AVLTree],
                         ids=["red-black", "avl"])
def bench_ordered_prefix_extraction(benchmark, tree_cls):
    rng = random.Random(13)
    keys = [rng.randrange(10**9) for _ in range(N_OPS)]

    def build_and_drain():
        tree = tree_cls()
        for k in keys:
            tree.insert(k, k)
        while tree:
            tree.pop_leq(tree.min_item()[0] + 10**7)

    benchmark(build_and_drain)
