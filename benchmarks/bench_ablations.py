"""Ablations of DESIGN.md's called-out design choices (§5, §6) plus the
sharded-stabilizer axis this repo adds on top of the paper.

Knobs the paper motivates but does not sweep in a numbered figure:

* **batching interval** — §7.1: "Eunomia's throughput can be further
  stretched by increasing the batching time (while slightly increasing the
  remote update visibility latency)"; the sweep shows exactly that
  dial;
* **separation of data and metadata** — §5: shipping values through Eunomia
  couples its load to value size; with separation its traffic is
  metadata-only;
* **propagation tree** — §5: interior relays coalesce the partition fan-in,
  cutting the message rate into the service;
* **shard count K** — beyond the paper: the sequential stabilizer split
  across K workers with a merging coordinator, swept under the overload
  methodology of §7.1 (emulated partitions driving the service straight to
  saturation, a remote sink charging the propagation cost);
* **unstable-op buffer backend** — beyond the paper: the run-aware buffer
  (O(1) monotone ingestion + k-way-merge FIND_STABLE) against the §6 trees,
  swept over backend × batch size × partition count, plus the wall-clock
  effect on a fig-4-style overload rig (the simulated *protocol* numbers
  are backend-invariant by construction — the backend buys builder time,
  i.e. more simulated traffic per CPU second).
"""

import time

import pytest

from repro.calibration import Calibration
from repro.core import EunomiaConfig, TreeRelay
from repro.geo.system import GeoSystemSpec, build_geo_system
from repro.harness.loadgen import build_eunomia_rig
from repro.harness.report import format_table
from repro.metrics import percentile
from repro.workload import WorkloadSpec

SPEC = GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=6, seed=77)
WL = WorkloadSpec(read_ratio=0.9, n_keys=500)


def bench_batching_interval_sweep(benchmark):
    """Larger uplink batches: same throughput, higher visibility latency."""

    def sweep():
        rows = []
        for interval_ms in (1, 5, 20):
            config = EunomiaConfig(batch_interval=interval_ms / 1e3,
                                   heartbeat_interval=interval_ms / 1e3)
            system = build_geo_system("eunomia", SPEC, WL, config=config)
            system.run(4.0)
            rows.append((interval_ms, system.total_throughput(),
                         percentile(system.visibility_extra_ms(0, 1), 90)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(["batch_ms", "ops_s", "vis_p90_ms"], rows))
    vis = [v for _, _, v in rows]
    thpt = [t for _, t, _ in rows]
    assert vis[0] < vis[1] < vis[2]          # visibility pays for batching
    assert min(thpt) > 0.9 * max(thpt)       # throughput barely moves here


def bench_data_metadata_separation(benchmark):
    """§5: without separation, Eunomia's bytes scale with value size."""

    def compare():
        out = {}
        for separated in (True, False):
            config = EunomiaConfig(separate_data_metadata=separated)
            system = build_geo_system(
                "eunomia", SPEC,
                WorkloadSpec(read_ratio=0.9, n_keys=500, value_bytes=1000),
                config=config)
            system.run(3.0)
            eunomia = system.datacenters[0].eunomia_replicas[0]
            stable = eunomia.ops_stabilized
            thpt = system.total_throughput()
            out[separated] = (thpt, stable)
        return out

    out = benchmark.pedantic(compare, rounds=1, iterations=1)
    print()
    print(format_table(
        ["separated", "ops_s", "dc1_ops_stabilized"],
        [[k, v[0], v[1]] for k, v in out.items()]))
    # both modes do the ordering work; separation is about *bytes*, which
    # the wire accounting below asserts directly
    assert out[True][1] > 0 and out[False][1] > 0


def bench_metadata_bytes_independent_of_value_size(benchmark):
    """Direct §5 claim: Eunomia's inbound bytes don't grow with values."""
    from repro.kvstore.types import Update

    def wire_sizes():
        small = Update(key="k", value=None, origin_dc=0, partition_index=0,
                       seq=1, ts=1, vts=(1, 0, 0), value_bytes=100)
        large = Update(key="k", value=None, origin_dc=0, partition_index=0,
                       seq=1, ts=1, vts=(1, 0, 0), value_bytes=100_000)
        return small.metadata_bytes, large.metadata_bytes

    small, large = benchmark(wire_sizes)
    assert small == large


def bench_propagation_tree_fanin(benchmark):
    """§5 tree: ~8x fewer messages into Eunomia at fanout 8."""

    def run_tree():
        config = EunomiaConfig(use_propagation_tree=True, tree_fanout=8)
        rig = build_eunomia_rig(24, config=config, seed=9)
        rig.run(1.5)
        relays = [p for p in rig.service_processes
                  if isinstance(p, TreeRelay)]
        ratios = [r.compression_ratio() for r in relays]
        return rig.throughput(), ratios

    thpt, ratios = benchmark.pedantic(run_tree, rounds=1, iterations=1)
    print(f"\ntree rig: {thpt:.0f} ops/s, relay compression ratios "
          f"{[round(r, 1) for r in ratios]}")
    assert thpt > 0
    assert all(ratio > 3.0 for ratio in ratios)


def bench_opbuffer_backend_sweep(benchmark):
    """Buffer backends across batch size and partition count.

    The ingestion pattern is Algorithm 3's: randomly interleaved batches,
    monotone timestamps per partition, periodic FIND_STABLE drains.  The
    acceptance bar of the ``buffer_backend="runs"`` change is asserted
    here too: ≥3× over the red–black tree at batch ≥ 8.
    """
    from bench_trees import monotone_batches, opbuffer_ingestion

    n_ops = 20_000

    def sweep():
        rows = []
        for n_parts in (4, 16, 64):
            for batch in (1, 8, 64):
                batches = monotone_batches(n_parts, batch, n_ops)
                stab_every = max(1, 400 // batch)
                cell = {}
                for backend in ("runs", "rbtree", "avl"):
                    best = min(
                        _timed(opbuffer_ingestion, backend, batches,
                               stab_every)
                        for _ in range(3))
                    cell[backend] = best
                rows.append((n_parts, batch,
                             round(cell["runs"] * 1e3, 2),
                             round(cell["rbtree"] * 1e3, 2),
                             round(cell["avl"] * 1e3, 2),
                             round(cell["rbtree"] / cell["runs"], 2)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["n_parts", "batch", "runs_ms", "rbtree_ms", "avl_ms", "speedup"],
        rows))
    # The tentpole acceptance bar — >=3x at batch >= 8 — is asserted at the
    # gated configuration (16 partitions, matching bench_opbuffer_ingestion);
    # other partition counts get a looser floor: the k-way-merge fan-in
    # grows with partition count, and their margins (~3.1x at 64 parts on
    # the baseline machine) are too thin to hard-fail on noise.
    for n_parts, batch, _, _, _, speedup in rows:
        if batch < 8:
            continue
        floor = 3.0 if n_parts == 16 else 2.0
        assert speedup >= floor, (
            f"runs backend only {speedup}x over rbtree "
            f"(n_parts={n_parts}, batch={batch}, floor {floor}x)")


def _timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def bench_opbuffer_backend_overload_rig(benchmark):
    """Fig-4-style overload run: builder wall-clock by buffer backend.

    48 emulated partitions drive a single stabilizer far past saturation
    (the fig-2/fig-4 overload regime).  The simulated protocol throughput
    is backend-invariant (asserted); what the run-aware buffer buys is
    wall-clock — the same simulation completes measurably faster, which is
    what bounds how much simulated traffic every experiment can afford.
    """
    cal = Calibration(emulated_partition_gen_us=25.0)

    def run_backend(backend):
        config = EunomiaConfig(buffer_backend=backend)
        rig = build_eunomia_rig(48, config=config, calibration=cal, seed=11)
        start = time.perf_counter()
        rig.run(1.0)
        return time.perf_counter() - start, rig.throughput()

    def compare():
        out = {}
        for backend in ("runs", "rbtree"):
            out[backend] = min(
                (run_backend(backend) for _ in range(2)),
                key=lambda pair: pair[0])
        return out

    out = benchmark.pedantic(compare, rounds=1, iterations=1)
    wall_gain = out["rbtree"][0] / out["runs"][0]
    print()
    print(format_table(
        ["backend", "wall_s", "stab_ops_s"],
        [[b, round(w, 3), round(t, 0)] for b, (w, t) in out.items()]))
    print(f"end-to-end builder wall-clock gain: {wall_gain:.2f}x")
    # protocol results are a strategy invariant...
    assert out["runs"][1] == pytest.approx(out["rbtree"][1])
    # ...and the wall-clock effect is reported above but only gated as a
    # non-regression: the buffer is one slice of the whole sim loop
    # (~1.15x here), well inside wall-clock noise on a busy runner.
    assert wall_gain > 0.9


def bench_cure_pending_backend_sweep(benchmark):
    """Cure's deferred-update set: per-origin runs vs the classic rescan.

    A cross-protocol payoff of the single-spine refactor: the run-aware
    buffering axis, born in Eunomia's stabilizer, now reaches Cure's
    vector-gated pending set (``pending_backend="runs"`` vs ``"scan"``).
    The simulated protocol results must be backend-invariant (the gate is
    a vector comparison either way; installs land through LWW puts) —
    asserted on store fingerprints — while the run-aware variant bounds
    each release round by the covered prefixes instead of rescanning the
    whole set.  Wall-clock is reported informationally: at this scale the
    pending set is a small slice of the sim loop, so the win is bounded.
    """
    spec = GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=6,
                         seed=29)
    wl = WorkloadSpec(read_ratio=0.75, n_keys=500)

    def run_backend(backend):
        from repro.geo.system import build_geo_system

        config_start = time.perf_counter()
        system = build_geo_system("cure", spec, wl,
                                  pending_backend=backend)
        system.run(3.0)
        wall = time.perf_counter() - config_start
        system.quiesce(2.0)
        prints = tuple(dc.fingerprint() for dc in system.datacenters)
        pending = sum(p.pending_count()
                      for dc in system.datacenters for p in dc.partitions)
        return wall, system.total_throughput(), prints, pending

    def sweep():
        return {backend: run_backend(backend)
                for backend in ("runs", "scan")}

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["pending_backend", "wall_s", "ops_s", "drained"],
        [[b, round(w, 3), round(t, 0), pend == 0]
         for b, (w, t, _, pend) in out.items()]))
    # protocol results are a strategy invariant: identical stores...
    assert out["runs"][2] == out["scan"][2]
    assert out["runs"][1] == pytest.approx(out["scan"][1])
    # ...and both backends fully drain their pending sets after quiesce
    assert out["runs"][3] == 0 and out["scan"][3] == 0


def bench_durability_overhead_sweep(benchmark):
    """WAL durability cost across stabilizer shapes (durability × K × R).

    Each shape runs the §7.1 overload rig twice — crash-stop-with-perfect-
    memory (``durability="none"``) versus the write-ahead-log stack
    (``durability="wal"`` at the default checkpoint interval: per-op log
    staging on the ingest path, group-commit fsyncs + checkpoints on the
    disk lane, ack-after-fsync for the fault-tolerant shapes) — and reports
    the stabilization-throughput overhead of durability.  The acceptance
    bar: ≤ 15% at the default checkpoint interval for every shape,
    including the K=4 × R=3 composition the recovery drill crashes.
    """
    cal = Calibration(emulated_partition_gen_us=25.0)

    def run_shape(n_shards, n_replicas, durability):
        config = EunomiaConfig(n_shards=n_shards, n_replicas=n_replicas,
                               fault_tolerant=n_replicas > 1,
                               durability=durability)
        rig = build_eunomia_rig(24, config=config, calibration=cal, seed=13)
        rig.run(1.0)
        return rig.throughput()

    def sweep():
        rows = []
        for n_shards, n_replicas in ((1, 1), (1, 3), (4, 3)):
            plain = run_shape(n_shards, n_replicas, "none")
            durable = run_shape(n_shards, n_replicas, "wal")
            rows.append((n_shards, n_replicas, round(plain, 0),
                         round(durable, 0),
                         round(100.0 * (1.0 - durable / plain), 1)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["n_shards", "n_replicas", "none_ops_s", "wal_ops_s", "overhead_%"],
        rows))
    for n_shards, n_replicas, _, _, overhead in rows:
        assert overhead <= 15.0, (
            f"durability overhead {overhead}% at K={n_shards} R={n_replicas} "
            "exceeds the 15% bar (default checkpoint interval)")


def bench_shard_count_sweep(benchmark):
    """Sharded stabilization under overload: throughput must scale with K.

    48 emulated partitions generate ~4x what a single stabilizer can absorb
    (the fig-2/fig-6-style overload regime: offered load far above the
    service's saturation point).  Sweeping K ∈ {1, 2, 4, 8} shows
    stabilization throughput scaling near-linearly until the merging
    coordinator (cheap per-op forwards of pre-serialized runs) or the
    offered load caps it.
    """
    # Faster generators than the paper's ~6.2 kops/s drivers so 48 of them
    # overload even an 8-shard deployment within a short simulation.
    cal = Calibration(emulated_partition_gen_us=25.0)

    def sweep():
        rows = []
        for n_shards in (1, 2, 4, 8):
            config = EunomiaConfig(n_shards=n_shards)
            rig = build_eunomia_rig(48, config=config, calibration=cal,
                                    seed=11)
            rig.run(1.5)
            rows.append((n_shards, rig.throughput(), rig.sink.received))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = rows[0][1]
    print()
    print(format_table(
        ["n_shards", "stab_ops_s", "sink_ops", "speedup"],
        [[k, t, r, t / base] for k, t, r in rows]))
    by_k = {k: t for k, t, _ in rows}
    # stable ordering keeps flowing in every configuration
    assert all(t > 0 for t in by_k.values())
    # the acceptance bar: K=4 sustains at least 2x the K=1 stabilizer
    assert by_k[4] >= 2.0 * by_k[1]
    # and the axis is monotone through the scaling regime
    assert by_k[1] < by_k[2] < by_k[4] <= by_k[8] * 1.05
