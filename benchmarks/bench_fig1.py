"""Figure 1 bench — the motivating throughput/visibility tradeoff (§2).

Regenerates: S-Seq and A-Seq throughput penalties versus an eventually
consistent baseline, plus GentleRain/Cure across the stabilization-interval
sweep.  Paper shapes asserted: A-Seq ≈ free, S-Seq pays double digits of
nothing but waiting, and the global-stabilization systems trade throughput
for visibility along the interval axis.
"""

from conftest import run_figure

from repro.harness.figures import fig1


def _assert_fig1_shapes(result):
    sseq_penalty = result.row_value("sseq", "penalty_pct")
    aseq_penalty = result.row_value("aseq", "penalty_pct")
    assert sseq_penalty < -4.0              # the synchronous-sequencer tax
    assert aseq_penalty > sseq_penalty + 3  # ...which A-Seq mostly dodges

    gr_fast = result.row_value("gentlerain@1ms", "penalty_pct")
    gr_slow = result.row_value("gentlerain@100ms", "penalty_pct")
    assert gr_fast < gr_slow                # small interval = more CPU burned

    cure_slow = result.row_value("cure@100ms", "penalty_pct")
    assert cure_slow < -5.0                 # paper: −11.6% even at 100 ms

    gr_vis_fast = result.row_value("gentlerain@1ms", "vis_p90_ms")
    gr_vis_slow = result.row_value("gentlerain@100ms", "vis_p90_ms")
    assert gr_vis_slow > gr_vis_fast + 50   # interval dominates visibility


def bench_fig1_motivation_tradeoff(benchmark):
    result = run_figure(benchmark, fig1, fig1.Fig1Params.quick())
    _assert_fig1_shapes(result)


def bench_fig1_motivation_tradeoff_full(benchmark):
    """Figure 1 over its full parameter grid — all five stabilization
    intervals, 6 s runs, 8 clients per DC.  The batched sim core made this
    affordable in the smoke-bench job (previously only the ``quick()`` cut
    ran in CI); its wall clock is gated at the wide threshold so a substrate
    slowdown that prices the full figure back out of CI fails the gate."""
    result = run_figure(benchmark, fig1, fig1.Fig1Params())
    _assert_fig1_shapes(result)
