"""Tests for the Eunomia-aware partition (Algorithms 1–2, §4, §5)."""

import pytest

from repro.clocks import PhysicalClock
from repro.core import EunomiaConfig, EunomiaPartition
from repro.core.messages import (
    ApplyRemote,
    ClientRead,
    ClientUpdate,
    RemoteData,
)
from repro.kvstore.types import Update
from repro.metrics import MetricsHub
from repro.sim import ConstantLatency, Environment, Network, Process


class FakeClient(Process):
    def __init__(self, env, name="client"):
        super().__init__(env, name)
        self.read_replies = []
        self.update_replies = []

    def on_client_read_reply(self, msg, src):
        self.read_replies.append(msg)

    def on_client_update_reply(self, msg, src):
        self.update_replies.append(msg)


class FakeReceiver(Process):
    def __init__(self, env):
        super().__init__(env, "receiver")
        self.oks = []

    def on_apply_remote_ok(self, msg, src):
        self.oks.append(msg.uid)


class SiblingSink(Process):
    def __init__(self, env, name):
        super().__init__(env, name, site=1)
        self.data = []

    def on_remote_data(self, msg, src):
        self.data.append(msg.update)


@pytest.fixture
def rig(env, metrics):
    Network(env, ConstantLatency(0.0001))
    config = EunomiaConfig()
    partition = EunomiaPartition(env, "p0", dc_id=0, index=0, n_dcs=3,
                                 clock=PhysicalClock(env), config=config,
                                 metrics=metrics)
    client = FakeClient(env)
    return env, partition, client


def update_msg(key="k", value="v", vts=(0, 0, 0)):
    return ClientUpdate(key, value, vts, value_bytes=10, request_id=1)


def remote_update(key="rk", value="rv", vts=(0, 500, 0), dc=1, seq=1,
                  metadata_only=True):
    return Update(key=key, value=None if metadata_only else value,
                  origin_dc=dc, partition_index=0, seq=seq,
                  ts=vts[dc], vts=vts, commit_time=0.0)


class TestClientPath:
    def test_read_missing_key_returns_zero_vector(self, rig):
        env, partition, client = rig
        client.send(partition, ClientRead("nope", request_id=1))
        env.run()
        reply = client.read_replies[0]
        assert reply.value is None
        assert reply.vts == (0, 0, 0)

    def test_update_vector_structure(self, rig):
        env, partition, client = rig
        client.send(partition, update_msg(vts=(5, 7, 9)))
        env.run()
        vts = client.update_replies[0].vts
        # remote entries copied from the client, local entry fresh & greater
        assert vts[1] == 7 and vts[2] == 9
        assert vts[0] > 5

    def test_update_then_read_roundtrip(self, rig):
        env, partition, client = rig
        client.send(partition, update_msg(key="a", value="hello"))
        env.run()
        client.send(partition, ClientRead("a", request_id=2))
        env.run()
        reply = client.read_replies[0]
        assert reply.value == "hello"
        assert reply.vts == client.update_replies[0].vts

    def test_successive_updates_strictly_increase(self, rig):
        env, partition, client = rig
        vts = (0, 0, 0)
        for i in range(5):
            client.send(partition, ClientUpdate("k", i, vts, request_id=i))
            env.run()
            new = client.update_replies[-1].vts
            assert new[0] > vts[0]
            vts = new

    def test_update_timestamp_exceeds_client_dependency(self, rig):
        env, partition, client = rig
        dep = 10_000_000_000  # way past the physical clock
        client.send(partition, update_msg(vts=(dep, 0, 0)))
        env.run()
        assert client.update_replies[0].vts[0] == dep + 1


class TestDataMetadataSeparation:
    def test_payload_ships_to_siblings_metadata_to_uplink(self, rig):
        env, partition, client = rig
        siblings = {1: SiblingSink(env, "s1"), 2: SiblingSink(env, "s2")}
        for dc, sink in siblings.items():
            partition.set_sibling(dc, sink)
        client.send(partition, update_msg(value="payload"))
        env.run()
        for sink in siblings.values():
            assert sink.data[0].value == "payload"
        # metadata queued for Eunomia is value-free
        assert partition.uplink._pending[0].value is None

    def test_without_separation_value_goes_through_eunomia(self, env, metrics):
        Network(env, ConstantLatency(0.0001))
        config = EunomiaConfig(separate_data_metadata=False)
        partition = EunomiaPartition(env, "p0", 0, 0, 3, PhysicalClock(env),
                                     config, metrics=metrics)
        client = FakeClient(env)
        client.send(partition, update_msg(value="inline"))
        env.run()
        assert partition.uplink._pending[0].value == "inline"

    def test_sibling_registration_ignores_self(self, rig):
        env, partition, _ = rig
        partition.set_sibling(0, partition)
        assert 0 not in partition.siblings


class TestRemoteExecution:
    def test_apply_waits_for_data(self, rig):
        env, partition, _ = rig
        receiver = FakeReceiver(env)
        meta = remote_update()
        receiver.send(partition, ApplyRemote(meta))
        env.run()
        assert receiver.oks == []  # no data yet
        data = remote_update(metadata_only=False)
        receiver.send(partition, RemoteData(data))
        env.run()
        assert receiver.oks == [meta.uid]
        assert partition.store.get("rk").value == "rv"

    def test_data_then_apply(self, rig):
        env, partition, _ = rig
        receiver = FakeReceiver(env)
        receiver.send(partition, RemoteData(remote_update(metadata_only=False)))
        env.run()
        assert partition.store.get("rk") is None  # staged, not applied
        receiver.send(partition, ApplyRemote(remote_update()))
        env.run()
        assert partition.store.get("rk").value == "rv"

    def test_visibility_extra_zero_when_data_arrives_last(self, rig, metrics):
        env, partition, _ = rig
        receiver = FakeReceiver(env)
        receiver.send(partition, ApplyRemote(remote_update()))
        env.run()
        receiver.send(partition, RemoteData(remote_update(metadata_only=False)))
        env.run()
        points = partition.metrics.point_series("vis_extra_ms:1->0")
        assert len(points) == 1
        assert points[0][1] == pytest.approx(0.0)

    def test_visibility_extra_positive_when_metadata_lags(self, rig):
        env, partition, _ = rig
        receiver = FakeReceiver(env)
        receiver.send(partition, RemoteData(remote_update(metadata_only=False)))
        env.run()
        env.loop.schedule(0.050, lambda: receiver.send(
            partition, ApplyRemote(remote_update())))
        env.run()
        points = partition.metrics.point_series("vis_extra_ms:1->0")
        assert points[0][1] == pytest.approx(50.0, abs=5.0)

    def test_lww_remote_does_not_clobber_causally_newer_local(self, rig):
        env, partition, client = rig
        receiver = FakeReceiver(env)
        # install remote version, read it, overwrite it locally
        receiver.send(partition,
                      RemoteData(remote_update(key="x", metadata_only=False)))
        receiver.send(partition, ApplyRemote(remote_update(key="x")))
        env.run()
        remote_vts = partition.store.get("x").vts
        client.send(partition, ClientUpdate("x", "mine", remote_vts,
                                            request_id=9))
        env.run()
        assert partition.store.get("x").value == "mine"
        # a replay of the remote version must lose
        receiver.send(partition,
                      RemoteData(remote_update(key="x", seq=2,
                                               metadata_only=False)))
        receiver.send(partition, ApplyRemote(remote_update(key="x", seq=2)))
        env.run()
        assert partition.store.get("x").value == "mine"

    def test_remote_counters(self, rig):
        env, partition, _ = rig
        receiver = FakeReceiver(env)
        receiver.send(partition, RemoteData(remote_update(metadata_only=False)))
        receiver.send(partition, ApplyRemote(remote_update()))
        env.run()
        assert partition.remote_applies == 1
        assert partition.datastore() is partition.store
