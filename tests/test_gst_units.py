"""Unit-level tests for the GentleRain/Cure stabilization machinery."""

import pytest

from repro.baselines.cure import CurePartition
from repro.baselines.gentlerain import GentleRainPartition
from repro.baselines.gst import GstTimings
from repro.baselines.messages import GstBroadcast, GstHeartbeat
from repro.clocks import PhysicalClock
from repro.core.messages import ClientUpdate, RemoteData
from repro.kvstore.types import Update
from repro.metrics import MetricsHub
from repro.sim import ConstantLatency, Environment, Network, Process


def make_partition(env, cls, dc_id=0, index=1, metrics=None, **kwargs):
    """index=1: not the aggregator, so no periodic aggregation interferes."""
    return cls(env, f"dc{dc_id}/p{index}", dc_id, index, 3,
               PhysicalClock(env), GstTimings(),
               metrics=metrics or MetricsHub(), **kwargs)


def remote(dc, ts, vts, seq=1, key="rk", value="rv"):
    return Update(key=key, value=value, origin_dc=dc, partition_index=0,
                  seq=seq, ts=ts, vts=vts, commit_time=0.0)


class Sender(Process):
    pass


class TestGentleRainUnit:
    def test_remote_update_gated_until_gst(self, env, net, metrics):
        partition = make_partition(env, GentleRainPartition, metrics=metrics)
        sender = Sender(env, "s")
        sender.send(partition, RemoteData(remote(1, 100, (100,))))
        env.run(until=0.01)
        assert partition.visible.get("rk") is None      # gated
        assert partition.pending_count() == 1
        sender.send(partition, GstBroadcast((100,)))
        env.run(until=0.02)
        assert partition.visible.get("rk").value == "rv"
        assert partition.pending_count() == 0

    def test_release_in_timestamp_order(self, env, net, metrics):
        # The heap ablation tolerates arbitrary arrival order, so it can be
        # probed with a synthetic out-of-order stream.
        partition = make_partition(env, GentleRainPartition, metrics=metrics,
                                   pending_backend="heap")
        sender = Sender(env, "s")
        for ts in (30, 10, 20):
            sender.send(partition, RemoteData(
                remote(1, ts, (ts,), seq=ts, key=f"k{ts}")))
        env.run(until=0.01)
        sender.send(partition, GstBroadcast((15,)))
        env.run(until=0.02)
        assert partition.visible.get("k10") is not None
        assert partition.visible.get("k20") is None
        assert partition.pending_count() == 2

    def test_runs_pending_releases_partial_prefix(self, env, net, metrics):
        """Default run-aware pending set under realistic FIFO streams."""
        partition = make_partition(env, GentleRainPartition, metrics=metrics)
        sender = Sender(env, "s")
        for dc, ts in ((1, 10), (2, 25), (1, 30), (2, 35)):   # FIFO per origin
            sender.send(partition, RemoteData(
                remote(dc, ts, (ts,), seq=ts, key=f"k{ts}")))
        env.run(until=0.01)
        assert partition.pending_count() == 4
        sender.send(partition, GstBroadcast((25,)))
        env.run(until=0.02)
        assert partition.visible.get("k10") is not None
        assert partition.visible.get("k25") is not None
        assert partition.visible.get("k30") is None
        assert partition.pending_count() == 2

    def test_runs_pending_rejects_non_fifo_stream(self, env, net, metrics):
        """The default backend's contract: a FIFO violation fails loudly."""
        partition = make_partition(env, GentleRainPartition, metrics=metrics)
        sender = Sender(env, "s")
        sender.send(partition, RemoteData(remote(1, 30, (30,), seq=3)))
        sender.send(partition, RemoteData(remote(1, 10, (10,), seq=1)))
        with pytest.raises(ValueError, match="non-monotone insert"):
            env.run(until=0.01)

    def test_unknown_pending_backend_rejected(self, env, net, metrics):
        with pytest.raises(ValueError, match="unknown pending backend"):
            make_partition(env, GentleRainPartition, metrics=metrics,
                           pending_backend="btree")

    def test_heartbeat_advances_vv(self, env, net, metrics):
        partition = make_partition(env, GentleRainPartition, metrics=metrics)
        sender = Sender(env, "s")
        sender.send(partition, GstHeartbeat(2, 0, 12345))
        env.run(until=0.01)
        assert partition.vv[2] == 12345

    def test_local_summary_is_min_of_vv(self, env, net, metrics):
        partition = make_partition(env, GentleRainPartition, metrics=metrics)
        partition.vv = [100, 50, 70]
        assert partition._local_summary() == (50,)

    def test_update_stamp_scalar(self, env, net, metrics):
        partition = make_partition(env, GentleRainPartition, metrics=metrics)
        update = partition._stamp(ClientUpdate("k", "v", (500_000,)))
        assert update.vts == (update.ts,)
        assert update.ts > 500_000

    def test_gst_broadcast_monotone_merge(self, env, net, metrics):
        partition = make_partition(env, GentleRainPartition, metrics=metrics)
        sender = Sender(env, "s")
        sender.send(partition, GstBroadcast((100,)))
        sender.send(partition, GstBroadcast((60,)))  # stale broadcast
        env.run(until=0.01)
        assert partition.summary == (100,)


class TestCureUnit:
    def test_release_requires_every_remote_entry(self, env, net, metrics):
        partition = make_partition(env, CurePartition, metrics=metrics)
        sender = Sender(env, "s")
        # from dc1, also depends on dc2's ts 80
        sender.send(partition, RemoteData(remote(1, 100, (0, 100, 80))))
        env.run(until=0.01)
        sender.send(partition, GstBroadcast((0, 100, 0)))
        env.run(until=0.02)
        assert partition.visible.get("rk") is None      # dc2 entry missing
        sender.send(partition, GstBroadcast((0, 100, 80)))
        env.run(until=0.03)
        assert partition.visible.get("rk").value == "rv"

    def test_local_entry_not_required(self, env, net, metrics):
        partition = make_partition(env, CurePartition, metrics=metrics)
        sender = Sender(env, "s")
        # vts[0] is the local DC: must not gate visibility
        sender.send(partition, RemoteData(remote(1, 10, (999_999, 10, 0))))
        env.run(until=0.01)
        sender.send(partition, GstBroadcast((0, 10, 0)))
        env.run(until=0.02)
        assert partition.visible.get("rk") is not None

    def test_update_stamp_vector(self, env, net, metrics):
        partition = make_partition(env, CurePartition, metrics=metrics)
        update = partition._stamp(ClientUpdate("k", "v", (7, 0, 9)))
        # dc_id=0: local entry is index 0, remote entries copied verbatim
        assert update.vts[0] > 7
        assert update.vts[1] == 0 and update.vts[2] == 9
        assert update.ts == update.vts[partition.dc_id]

    def test_local_summary_is_full_vv(self, env, net, metrics):
        partition = make_partition(env, CurePartition, metrics=metrics)
        partition.vv = [5, 6, 7]
        assert partition._local_summary() == (5, 6, 7)

    def test_visibility_metrics_recorded_on_release(self, env, net):
        metrics = MetricsHub()
        partition = make_partition(env, CurePartition, metrics=metrics)
        sender = Sender(env, "s")
        sender.send(partition, RemoteData(remote(1, 10, (0, 10, 0))))
        env.run(until=0.01)
        env.loop.schedule_at(0.05, lambda: sender.send(
            partition, GstBroadcast((0, 10, 0))))
        env.run(until=0.1)
        points = metrics.point_series("vis_extra_ms:1->0")
        assert len(points) == 1
        assert points[0][1] == pytest.approx(50.0, abs=5.0)


class TestAggregation:
    def test_aggregator_broadcasts_min_of_reports(self, env, net, metrics):
        aggregator = GentleRainPartition(
            env, "p0", 0, 0, 3, PhysicalClock(env), GstTimings(),
            metrics=metrics)
        follower = make_partition(env, GentleRainPartition, metrics=metrics)
        aggregator.local_partitions = [aggregator, follower]
        aggregator._reports = {0: (50,), 1: (30,)}
        aggregator._aggregate()
        env.run(until=0.01)
        assert follower.summary == (30,)

    def test_aggregator_waits_for_all_reports(self, env, net, metrics):
        aggregator = GentleRainPartition(
            env, "p0", 0, 0, 3, PhysicalClock(env), GstTimings(),
            metrics=metrics)
        follower = make_partition(env, GentleRainPartition, metrics=metrics)
        aggregator.local_partitions = [aggregator, follower]
        aggregator._reports = {0: (50,)}  # follower hasn't reported yet
        aggregator._aggregate()
        env.run(until=0.01)
        assert follower.summary == (0,)
