"""Tests for the §7.1 load rigs and the figure harness plumbing."""

import pytest

from repro.calibration import Calibration
from repro.core import EunomiaConfig
from repro.harness import (
    FigureResult,
    build_eunomia_rig,
    build_sequencer_rig,
    format_table,
)
from repro.harness.figures import FIGURES


class TestRigs:
    def test_sequencer_rig_saturates_at_service_cost(self):
        cal = Calibration(scale=10.0)
        rig = build_sequencer_rig(20, calibration=cal, seed=1)
        rig.run(1.0)
        expected_cap = 1.0 / cal.cost("sequencer_request")
        assert rig.throughput() == pytest.approx(expected_cap, rel=0.05)

    def test_sequencer_rig_below_saturation_tracks_offered_load(self):
        cal = Calibration(scale=10.0)
        rig = build_sequencer_rig(2, calibration=cal, seed=1)
        rig.run(1.0)
        # 2 closed-loop clients can't reach the ~4.8k cap
        assert rig.throughput() < 0.5 / cal.cost("sequencer_request")

    def test_chain_rig_slower_than_plain(self):
        cal = Calibration(scale=10.0)
        plain = build_sequencer_rig(20, calibration=cal, seed=1)
        plain.run(1.0)
        chain = build_sequencer_rig(20, chain_length=3, calibration=cal,
                                    seed=1)
        chain.run(1.0)
        ratio = chain.throughput() / plain.throughput()
        assert ratio == pytest.approx(2 / 3, abs=0.05)  # paper: −33%

    def test_eunomia_rig_outscales_sequencer(self):
        cal = Calibration(scale=10.0)
        eunomia = build_eunomia_rig(30, calibration=cal, seed=1)
        eunomia.run(1.0)
        sequencer = build_sequencer_rig(30, calibration=cal, seed=1)
        sequencer.run(1.0)
        assert eunomia.throughput() > 3 * sequencer.throughput()

    def test_eunomia_rig_ft_mode(self):
        config = EunomiaConfig(fault_tolerant=True, n_replicas=2)
        rig = build_eunomia_rig(6, config=config, seed=1)
        rig.run(1.0)
        assert rig.throughput() > 0
        assert rig.sink.received > 0

    def test_throughput_timeline_has_buckets(self):
        rig = build_sequencer_rig(5, seed=1)
        rig.run(1.0)
        timeline = rig.throughput_timeline(width=0.25)
        assert len(timeline) == 4
        assert all(rate > 0 for _, rate in timeline)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 20.25]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert "20.25" in lines[3]

    def test_figure_result_roundtrip(self):
        result = FigureResult("Figure X", "title", ["a", "b"])
        result.add_row("row1", 1.0)
        result.add_series("s", [(0.0, 1.0), (1.0, 2.0)])
        result.note("hello")
        assert result.row_value("row1", "b") == 1.0
        with pytest.raises(KeyError):
            result.row_value("missing", "b")
        text = result.render_text()
        assert "Figure X" in text and "hello" in text and "series s" in text

    def test_registry_complete(self):
        assert sorted(FIGURES) == [1, 2, 3, 4, 5, 6, 7]
        for number, module in FIGURES.items():
            assert hasattr(module, "run")
            assert hasattr(module, f"Fig{number}Params")
            params_cls = getattr(module, f"Fig{number}Params")
            assert hasattr(params_cls, "quick")
