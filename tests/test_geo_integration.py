"""End-to-end EunomiaKV integration tests: the full 3-DC deployment."""

import pytest

from repro.baselines import build_system
from repro.checker import CausalChecker, SessionHistory
from repro.core import EunomiaConfig
from repro.datastruct import AVLTree
from repro.geo.system import GeoSystemSpec, build_eunomia_system
from repro.metrics import percentile
from repro.workload import WorkloadSpec

SPEC = GeoSystemSpec(n_dcs=3, partitions_per_dc=2, clients_per_dc=3, seed=23)
WL = WorkloadSpec(read_ratio=0.8, n_keys=64)


def run_eunomia(duration=3.0, drain=3.0, spec=SPEC, workload=WL, **kwargs):
    system = build_eunomia_system(spec, workload, **kwargs)
    system.run(duration)
    system.quiesce(drain)
    return system


def test_convergence_and_causality():
    history = SessionHistory()
    system = run_eunomia(history=history)
    assert system.converged()
    checker = CausalChecker(history)
    assert checker.check() == []
    assert checker.check_write_read_pairs() == []


def test_visibility_within_paper_band():
    system = run_eunomia(duration=5.0)
    for origin, dest in [(0, 1), (1, 2), (2, 0)]:
        extras = system.visibility_extra_ms(origin, dest)
        assert extras, f"no visibility samples for {origin}->{dest}"
        # paper: ~95% of updates within 15 ms extra delay
        assert percentile(extras, 95) < 25.0
        assert percentile(extras, 50) < 15.0


def test_remote_values_actually_replicate():
    system = run_eunomia()
    snapshots = system.snapshots()
    # every DC must hold values written by clients of other DCs
    for dc_id, snapshot in enumerate(snapshots):
        origins = {origin for (_, origin, _) in snapshot.values()}
        assert origins == {0, 1, 2}


def test_deterministic_given_seed():
    a = run_eunomia()
    b = run_eunomia()
    assert a.total_throughput() == b.total_throughput()
    assert a.snapshots() == b.snapshots()


def test_different_seeds_differ():
    a = run_eunomia()
    b = run_eunomia(spec=GeoSystemSpec(n_dcs=3, partitions_per_dc=2,
                                       clients_per_dc=3, seed=24))
    assert a.total_throughput() != b.total_throughput()


def test_fault_tolerant_geo_deployment():
    config = EunomiaConfig(fault_tolerant=True, n_replicas=3)
    history = SessionHistory()
    system = run_eunomia(config=config, history=history)
    assert system.converged()
    assert CausalChecker(history).check() == []


def test_geo_survives_eunomia_leader_crash():
    config = EunomiaConfig(fault_tolerant=True, n_replicas=2,
                           replica_alive_interval=0.2,
                           replica_suspect_timeout=0.65)
    system = build_eunomia_system(SPEC, WL, config=config)
    system.start()
    # crash dc0's leader replica mid-run; the follower must take over
    leader = system.datacenters[0].eunomia_replicas[0]
    system.env.loop.schedule(1.0, leader.crash)
    system.run(4.0)
    system.quiesce(4.0)
    assert system.converged()
    survivor = system.datacenters[0].eunomia_replicas[1]
    assert survivor.is_leader()
    assert survivor.ops_stabilized > 0


def test_avl_backed_eunomia_behaves_identically():
    """§6 ablation: the tree choice affects speed, not behaviour."""
    rb = run_eunomia()
    avl = run_eunomia(tree_factory=AVLTree)
    assert avl.converged()
    assert avl.snapshots() == rb.snapshots()


def test_without_data_metadata_separation():
    config = EunomiaConfig(separate_data_metadata=False)
    history = SessionHistory()
    system = run_eunomia(config=config, history=history)
    assert system.converged()
    assert CausalChecker(history).check() == []


def test_two_datacenter_topology():
    spec = GeoSystemSpec(n_dcs=2, partitions_per_dc=2, clients_per_dc=3,
                         seed=31)
    system = run_eunomia(spec=spec)
    assert system.converged()
    assert system.total_throughput() > 0


def test_zipf_workload_converges():
    workload = WorkloadSpec(read_ratio=0.6, n_keys=64, distribution="zipf")
    history = SessionHistory()
    system = run_eunomia(workload=workload, history=history)
    assert system.converged()
    assert CausalChecker(history).check() == []


def test_eunomia_throughput_close_to_eventual():
    """The headline Figure 5 claim at small scale."""
    eunomia = run_eunomia(duration=3.0)
    eventual = build_system("eventual", SPEC, WL)
    eventual.run(3.0)
    ratio = eunomia.total_throughput() / eventual.total_throughput()
    assert ratio > 0.90


def test_dc_throughput_sums_to_total():
    system = run_eunomia()
    total = system.total_throughput()
    per_dc = sum(system.dc_throughput(d) for d in range(3))
    assert per_dc == pytest.approx(total, rel=0.01)
