"""Partial geo-replication, pinned by equivalence tests.

Three layers of guarantees, each tested here:

1. **Full placement is bit-for-bit the old spine.**  ``placement="full"``
   must reproduce every protocol's pre-placement golden digest exactly —
   the placement map, forwarding tables, and placement-aware stable cut
   are provably inert until a partial shape is requested.
2. **Restriction equivalence.**  A partial deployment's stable output is
   the full deployment's output *restricted* to the partitions it stores:
   same ops, same (ts, origin, seq) order, nothing extra, nothing
   stalled.  Checked pipeline-level (injected deterministic timelines
   into the Eunomia stabilizer stack, and injected remote streams into a
   GentleRain partition), because end-to-end forwarding legitimately
   changes HLC stamps and LWW winners.
3. **Forwarding correctness end to end.**  Non-resident operations
   round-trip through the nearest resident DC, survive network partitions
   with client retries, keep every causal session guarantee, and are
   always served by a resident DC (``check_placement_routing``); the
   stable cut never stalls on zero-overlap origins.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import Calibration
from repro.checker import CausalChecker, SessionHistory
from repro.clocks.physical import PhysicalClock
from repro.core import EunomiaConfig, build_stabilizer_stack
from repro.core.messages import AddOpBatch, PartitionHeartbeat, RemoteData
from repro.core.placement import PLACEMENT_POLICIES, PlacementMap
from repro.core.protocols import available_protocols
from repro.baselines.gentlerain import GentleRainPartition
from repro.baselines.cure import CurePartition
from repro.baselines.gst import GstTimings, UNTRACKED
from repro.geo.system import GeoSystemSpec, build_geo_system
from repro.harness.goldens import (
    GOLDEN_SPEC,
    GOLDEN_WORKLOAD,
    run_fingerprint,
)
from repro.kvstore.ring import ConsistentHashRing
from repro.kvstore.types import Update
from repro.sim import ConstantLatency, Environment, Network, Process
from repro.workload import WorkloadSpec

GOLDENS = json.loads(
    (Path(__file__).parent / "golden" / "baseline_goldens.json").read_text())
STRICT_FIELDS = ("fingerprints", "snapshot_sha", "stable_sha",
                 "vis_sorted_sha", "ops", "converged")

#: one DC (dc2) is an island: overlaps nobody, forwards 0/1, serves 2/3
ISLAND = "dc0=0,1;dc1=0,1;dc2=2,3"
#: every partition has exactly one home; every DC forwards something
SPARSE = "stride:1"


# ----------------------------------------------------------------------
# PlacementMap unit behaviour
# ----------------------------------------------------------------------
class TestPlacementMap:
    def test_full_is_canonical_and_inert(self):
        pmap = PlacementMap.full(3, 4)
        assert pmap.is_full()
        assert PlacementMap.from_spec(3, 4, None) == pmap
        assert PlacementMap.from_spec(3, 4, "full") == pmap
        assert pmap.island_dcs() == ()

    def test_spec_string_round_trips(self):
        pmap = PlacementMap.from_spec(3, 4, ISLAND)
        assert PlacementMap.from_spec(3, 4, pmap.describe()) == pmap
        assert pmap.resident_partitions(2) == (2, 3)
        assert pmap.residents(0) == (0, 1)
        assert not pmap.overlaps(0, 2)
        assert pmap.island_dcs() == (2,)

    def test_stride_covers_everything(self):
        pmap = PlacementMap.stride(3, 6, copies=2)
        for p in range(6):
            assert len(pmap.residents(p)) == 2
        for dc in range(3):
            assert pmap.resident_partitions(dc)

    def test_orphan_partition_rejected(self):
        with pytest.raises(ValueError, match="resident nowhere"):
            PlacementMap.from_spec(2, 3, {0: [0, 1], 1: [0]})

    def test_empty_dc_rejected(self):
        with pytest.raises(ValueError, match="storing nothing"):
            PlacementMap.from_spec(2, 2, {0: [0, 1], 1: []})

    def test_nearest_resident_prefers_self_then_rtt(self):
        pmap = PlacementMap.from_spec(3, 4, ISLAND)
        spec = GeoSystemSpec(n_dcs=3, partitions_per_dc=4)
        rtt = spec.topology()
        assert pmap.nearest_resident(0, 1, rtt) == 0     # resident: stay home
        target = pmap.nearest_resident(2, 0, rtt)        # forwarded
        assert target in (0, 1)
        assert rtt.one_way_s(2, target) == min(
            rtt.one_way_s(2, d) for d in pmap.residents(0))


def test_policy_knob_names_are_exported():
    assert PLACEMENT_POLICIES == ("full", "stride")


# ----------------------------------------------------------------------
# Layer 1: placement="full" is bit-for-bit the pre-placement spine
# ----------------------------------------------------------------------
def test_every_registered_protocol_has_a_golden():
    assert set(available_protocols()) == {g["protocol"] for g in GOLDENS}


@pytest.mark.parametrize(
    "golden", GOLDENS, ids=lambda g: f"{g['protocol']}-seed{g['seed']}")
def test_explicit_full_placement_reproduces_goldens(golden):
    kwargs = {}
    if golden["protocol"] == "cure":
        kwargs["pending_backend"] = "scan"    # the backend the capture ran
    spec = GeoSystemSpec(seed=golden["seed"], placement="full",
                         **GOLDEN_SPEC)
    system = build_geo_system(golden["protocol"], spec,
                              WorkloadSpec(**GOLDEN_WORKLOAD), **kwargs)
    system.run(2.0)
    system.quiesce(2.5)
    fresh = run_fingerprint(system)
    for field in STRICT_FIELDS:
        assert fresh[field] == golden[field], (
            f"{golden['protocol']}/seed{golden['seed']}: {field} drifted "
            f"under placement='full'")


# ----------------------------------------------------------------------
# Layer 2a: Eunomia stack restriction equivalence (pipeline level)
# ----------------------------------------------------------------------
def _make_op(ts, partition, seq):
    return Update(key=f"k{ts}", value=None, origin_dc=0,
                  partition_index=partition, seq=seq, ts=ts, vts=(ts,),
                  commit_time=0.0)


class _StableSink(Process):
    def __init__(self, env):
        super().__init__(env, "sink", site=1)
        self.ops = []

    def on_remote_stable_batch(self, msg, src):
        self.ops.extend(msg.ops)


class _AckFeeder(Process):
    def on_batch_ack(self, msg, src):
        pass


def run_stack(ts_by_partition, indices, n_shards):
    """Feed fixed per-partition timelines into one DC's stabilizer stack
    (restricted to ``indices`` when not None) and return the delivered
    stable serialization as (partition, uid) pairs."""
    env = Environment(seed=11)
    Network(env, ConstantLatency(0.0001))
    n_parts = len(ts_by_partition)
    config = EunomiaConfig(stabilization_interval=0.004, n_shards=n_shards)
    config.validate()
    stack = build_stabilizer_stack(env, 0, n_parts, config, Calibration(),
                                   indices=indices)
    sink = _StableSink(env)
    for propagator in stack.propagators():
        propagator.add_destination(sink)
    for proc in stack.processes():
        proc.start()
    feeder = _AckFeeder(env, "feeder")
    fed = list(range(n_parts)) if indices is None else sorted(indices)
    top = 0
    for p in fed:
        ops = [_make_op(ts, p, seq=i + 1)
               for i, ts in enumerate(ts_by_partition[p])]
        if ops:
            top = max(top, ops[-1].ts)
            batch = AddOpBatch(p, tuple(ops), prev_ts=0)
            for target in stack.uplink_targets(p):
                feeder.send(target, batch)
    for p in fed:
        beat = PartitionHeartbeat(p, top + 1)
        for target in stack.uplink_targets(p):
            feeder.send(target, beat)
    env.run(until=0.5)
    return [(op.partition_index, op.uid) for op in sink.ops]


stack_timelines = st.lists(
    st.lists(st.integers(min_value=1, max_value=400),
             min_size=0, max_size=12),
    min_size=3, max_size=6,
).map(lambda per_part: [sorted(set(ts)) for ts in per_part])


@settings(max_examples=15, deadline=None)
@given(timelines=stack_timelines, data=st.data())
def test_stack_restriction_equivalence(timelines, data):
    """The resident-only stable cut is a *restriction*: for any timeline
    set and any resident subset, the partial stack (K-sharded included)
    emits exactly the full stack's serialization filtered to resident
    partitions — same ops, same order, no stall on absent partitions."""
    n_parts = len(timelines)
    resident = sorted(data.draw(
        st.sets(st.integers(min_value=0, max_value=n_parts - 1),
                min_size=1, max_size=n_parts),
        label="resident"))
    n_shards = min(data.draw(st.sampled_from([1, 2, 3]), label="shards"),
                   len(resident))
    full = run_stack(timelines, indices=None, n_shards=1)
    partial = run_stack(timelines, indices=resident, n_shards=n_shards)
    assert partial == [(p, uid) for p, uid in full if p in resident]


def test_stack_restriction_equivalence_pinned():
    """One deterministic K-sharded instance of the property (no shrink
    budget needed to debug a regression)."""
    timelines = [[10, 30, 50], [20, 40], [15, 35, 55], [25, 45]]
    full = run_stack(timelines, indices=None, n_shards=1)
    partial = run_stack(timelines, indices=[0, 2, 3], n_shards=2)
    assert partial == [(p, uid) for p, uid in full if p in (0, 2, 3)]
    assert {p for p, _ in partial} == {0, 2, 3}


# ----------------------------------------------------------------------
# Layer 2b: GST restriction equivalence + no-stall (pipeline level)
# ----------------------------------------------------------------------
class _RecordingGR(GentleRainPartition):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.installed = []

    def _install(self, update, arrival):
        self.installed.append(update.uid)
        super()._install(update, arrival)


def drive_gst_partition(tracked, origin1_present):
    """One GentleRain partition at dc0 (3-DC world), self-aggregating.
    Origin 2 streams updates + a heartbeat; origin 1 sends heartbeats
    only when present (the full-replication world).  Returns the
    partition after the run."""
    env = Environment(seed=5)
    Network(env, ConstantLatency(0.0001))
    part = _RecordingGR(env, "p0", dc_id=0, index=0, n_dcs=3,
                        clock=PhysicalClock(env), timings=GstTimings())
    part.local_partitions = [part]      # single-partition DC roster
    part.aggregator = part
    part.tracked = tracked
    part.start()
    feeder = Process(env, "feeder", site=2)
    for i, ts in enumerate((1000, 2000, 3000)):
        feeder.send(part, RemoteData(_make_op_from(ts, origin=2, seq=i + 1)))
    from repro.baselines.messages import GstHeartbeat
    feeder.after(0.01, lambda: feeder.send(part, GstHeartbeat(2, 0, 4000)))
    if origin1_present:
        feeder.after(0.01, lambda: feeder.send(part, GstHeartbeat(1, 0, 4000)))
    env.run(until=0.2)
    return part


def _make_op_from(ts, origin, seq):
    return Update(key=f"k{ts}", value=None, origin_dc=origin,
                  partition_index=0, seq=seq, ts=ts, vts=(ts,),
                  commit_time=0.0)


def test_gst_tracked_cut_restricts_and_does_not_stall():
    """The placement-aware GST cut: a partition whose index dc1 does not
    store (tracked = {0, 2}) installs exactly what the full-replication
    partition installs from the origins that exist — and does so without
    dc1's heartbeats, while the untracked-and-silent origin pins the
    *full* partition's GST at zero forever (the stall the cut removes)."""
    full = drive_gst_partition(tracked=None, origin1_present=True)
    partial = drive_gst_partition(tracked=(0, 2), origin1_present=False)
    assert full.installed, "full run installed nothing - harness broken"
    assert partial.installed == full.installed
    assert partial.summary[0] >= 4000
    assert partial.pending_count() == 0
    # and the counterfactual: without the tracked cut, the silent origin
    # stalls visibility forever
    stalled = drive_gst_partition(tracked=None, origin1_present=False)
    assert stalled.installed == []
    assert stalled.pending_count() == 3


def test_cure_untracked_origins_report_sentinel():
    env = Environment(seed=5)
    Network(env, ConstantLatency(0.0001))
    part = CurePartition(env, "p0", dc_id=0, index=0, n_dcs=3,
                         clock=PhysicalClock(env), timings=GstTimings())
    part.vv = [7, 0, 9]
    assert part._local_summary() == (7, 0, 9)
    part.tracked = (0, 2)
    assert part._local_summary() == (7, UNTRACKED, 9)
    # an arbitrarily large dependency on the untracked origin releases
    # unconditionally once the GSV entry is the sentinel (nothing from
    # that origin can be resident here, so the entry is vacuous)
    part.summary = (7, UNTRACKED, 9)
    dep = Update(key="k", value=None, origin_dc=2, partition_index=0,
                 seq=1, ts=5, vts=(0, 10 ** 9, 5), commit_time=0.0)
    assert part._releasable(dep)
    blocked = Update(key="k", value=None, origin_dc=2, partition_index=0,
                     seq=2, ts=10, vts=(0, 0, 10), commit_time=0.0)
    assert not part._releasable(blocked)   # tracked entries still gate


# ----------------------------------------------------------------------
# Layer 3: forwarding, end to end
# ----------------------------------------------------------------------
def _run_partial(protocol, placement, seed=1234, client_retry=None,
                 run_for=1.2, drain=2.2, **options):
    spec = GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=2,
                         seed=seed, placement=placement,
                         client_retry=client_retry)
    history = SessionHistory()
    system = build_geo_system(protocol, spec, WorkloadSpec(read_ratio=0.5),
                              history=history, **options)
    system.run(run_for)
    system.quiesce(drain)
    return system, history


def _protocol_options(protocol, placement):
    if protocol != "eunomia":
        return {}
    # K-sharded where the shape allows it: a shard must own >= 1 of the
    # DC's resident partitions, so K is capped by the thinnest DC.
    pmap = PlacementMap.from_spec(3, 4, placement)
    thinnest = min(len(pmap.resident_partitions(d)) for d in range(3))
    return {"config": EunomiaConfig(n_shards=min(2, thinnest))}


PARTIAL_PROTOCOLS = ["eunomia", "gentlerain", "cure", "sseq", "eventual"]


@pytest.mark.parametrize("protocol", PARTIAL_PROTOCOLS)
@pytest.mark.parametrize("placement", [ISLAND, SPARSE],
                         ids=["island", "sparse"])
def test_partial_run_is_causal_routed_and_converges(protocol, placement):
    """Every protocol under two partial shapes: sessions stay causal
    through forwarding, every op lands on a resident DC, and every
    partition converges across exactly its resident DCs."""
    system, history = _run_partial(protocol, placement,
                                   **_protocol_options(protocol, placement))
    assert history.total_ops > 0
    assert system.converged()
    checker = CausalChecker(history)
    assert checker.check() == []
    assert checker.check_write_read_pairs() == []
    assert checker.check_placement_routing(
        system.placement, ConsistentHashRing(4)) == []
    # forwarding actually happened: some op was served away from home
    forwarded = [r for c in history.clients() for r in history.session(c)
                 if r.served_by is not None
                 and r.served_by != int(c[2])]     # "dcN/clientM"
    assert forwarded, "no op was forwarded under a partial placement"


def test_forwarded_write_is_read_back():
    """Read-your-writes across a forwarding hop: with think-less clients
    on the sparse shape, every client's own written values reappear on
    its subsequent reads of the same key (the session checker enforces
    the general property; this pins the concrete round-trip)."""
    spec = GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=1,
                         seed=1234, placement=SPARSE)
    history = SessionHistory()
    system = build_geo_system("gentlerain", spec,
                              WorkloadSpec(read_ratio=0.5, n_keys=8),
                              history=history)
    system.run(1.2)
    system.quiesce(2.2)
    seen_roundtrip = False
    for client in history.clients():
        written = {}
        for r in history.session(client):
            if r.kind == "update":
                written[r.key] = r.value
            elif r.key in written and r.value == written[r.key]:
                home = int(client[2])
                if r.served_by != home:
                    seen_roundtrip = True
    assert seen_roundtrip, "no forwarded write/read round-trip observed"


def test_forwarding_survives_partition_with_retries():
    """Cut the island DC's clients off from every forwarding target
    mid-run: retries bridge the outage, sessions resume after heal, and
    all oracles still pass."""
    spec = GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=2,
                         seed=909, placement=ISLAND, client_retry=0.2)
    history = SessionHistory()
    system = build_geo_system("gentlerain", spec,
                              WorkloadSpec(read_ratio=0.5), history=history)
    island_clients = [c for c in system.clients if c.dc_id == 2]
    targets = [dc.partitions[i] for dc in system.datacenters[:2]
               for i in (0, 1)]
    fs = system.failures()
    fs.partition_at(0.5, island_clients, targets)
    fs.heal_at(1.0, island_clients, targets)
    system.run(1.8)
    system.quiesce(2.2)
    assert sum(c.retries for c in island_clients) > 0
    post_heal = [r for c in history.clients() for r in history.session(c)
                 if c.startswith("dc2/") and r.time > 1.1]
    assert post_heal, "island sessions never resumed after heal"
    assert system.converged()
    checker = CausalChecker(history)
    assert checker.check() == []
    assert checker.check_placement_routing(
        system.placement, ConsistentHashRing(4)) == []


@pytest.mark.parametrize("protocol,options",
                         [("eunomia", {"config": EunomiaConfig(n_shards=2)}),
                          ("gentlerain", {}), ("sseq", {})],
                         ids=["eunomia", "gentlerain", "sseq"])
def test_zero_overlap_origins_do_not_stall(protocol, options):
    """The island DC shares no partition with anyone: its stable cut must
    advance on local input alone, and the mainland receivers/partitions
    must drain completely — no queue waits on an origin that never
    sends."""
    system, history = _run_partial(protocol, ISLAND, **options)
    assert system.converged()
    for dc in system.datacenters:
        if dc.receiver is not None:
            backlog = sum(len(q) for q in dc.receiver.queues.values())
            assert backlog == 0, (
                f"dc{dc.dc_id} receiver holds {backlog} undelivered updates")
        for part in dc.resident_partitions():
            if hasattr(part, "pending_count"):
                assert part.pending_count() == 0
            if hasattr(part, "summary"):
                assert part.summary[0] > 0, (
                    f"dc{dc.dc_id}/p{part.index} stable summary never "
                    f"advanced - zero-overlap stall")
