"""Unit tests for the discrete-event loop."""

import pytest

from repro.sim.loop import EventLoop, SimulationError


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule(3.0, fired.append, "c")
    loop.schedule(1.0, fired.append, "a")
    loop.schedule(2.0, fired.append, "b")
    loop.run()
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_scheduling_order():
    loop = EventLoop()
    fired = []
    for label in "abcde":
        loop.schedule(1.0, fired.append, label)
    loop.run()
    assert fired == list("abcde")


def test_now_advances_to_event_time():
    loop = EventLoop()
    seen = []
    loop.schedule(2.5, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [2.5]
    assert loop.now == 2.5


def test_run_until_stops_before_later_events():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, fired.append, "early")
    loop.schedule(5.0, fired.append, "late")
    loop.run(until=2.0)
    assert fired == ["early"]
    assert loop.now == 2.0  # clock advances to the boundary
    loop.run()
    assert fired == ["early", "late"]


def test_cancelled_events_do_not_fire():
    loop = EventLoop()
    fired = []
    keep = loop.schedule(1.0, fired.append, "keep")
    drop = loop.schedule(1.0, fired.append, "drop")
    drop.cancel()
    loop.run()
    assert fired == ["keep"]
    assert keep.time == 1.0


def test_cancel_is_idempotent():
    loop = EventLoop()
    event = loop.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    loop.run()
    assert loop.processed_events == 0


def test_scheduling_in_the_past_raises():
    loop = EventLoop()
    loop.schedule(1.0, lambda: None)
    loop.run()
    with pytest.raises(SimulationError):
        loop.schedule_at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        loop.schedule(-1.0, lambda: None)


def test_events_scheduled_during_execution_fire():
    loop = EventLoop()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            loop.schedule(1.0, chain, n + 1)

    loop.schedule(0.0, chain, 0)
    loop.run()
    assert fired == [0, 1, 2, 3]
    assert loop.now == 3.0


def test_step_executes_one_event():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, fired.append, 1)
    loop.schedule(2.0, fired.append, 2)
    assert loop.step() is True
    assert fired == [1]
    assert loop.step() is True
    assert loop.step() is False


def test_max_events_bound():
    loop = EventLoop()
    fired = []
    for i in range(10):
        loop.schedule(float(i), fired.append, i)
    loop.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_pending_excludes_cancelled():
    loop = EventLoop()
    loop.schedule(1.0, lambda: None)
    event = loop.schedule(2.0, lambda: None)
    event.cancel()
    assert loop.pending() == 1


def test_pending_counter_tracks_schedule_cancel_and_pop():
    """pending() is a live counter (O(1)), not a heap scan — it must stay
    exact through every combination of firing, cancellation (including
    double-cancel), and partial runs."""
    loop = EventLoop()
    events = [loop.schedule(float(i + 1), lambda: None) for i in range(6)]
    assert loop.pending() == 6
    events[4].cancel()
    events[4].cancel()          # idempotent: must not decrement twice
    assert loop.pending() == 5
    loop.step()                 # fires t=1
    assert loop.pending() == 4
    loop.run(until=3.0)         # fires t=2, t=3
    assert loop.pending() == 2
    events[5].cancel()
    assert loop.pending() == 1
    loop.run()                  # fires t=4; cancelled t=5/t=6 lazily popped
    assert loop.pending() == 0
    assert not loop._heap


def test_cancel_after_fire_does_not_corrupt_pending():
    """A handle cancelled after its event already fired (e.g. a timeout
    cancelled on completion) must be a no-op, not a double decrement."""
    loop = EventLoop()
    event = loop.schedule(1.0, lambda: None)
    loop.run()
    assert loop.pending() == 0
    event.cancel()
    event.cancel()
    assert loop.pending() == 0
    assert event.cancelled  # the flag still reads as cancelled (harmless)
    loop.schedule(2.0, lambda: None)
    assert loop.pending() == 1


def test_pending_is_constant_time_under_large_heaps():
    """The counter must not degrade into an O(heap) scan again: polling
    pending() many times against a large heap has to stay far cheaper than
    the equivalent scans."""
    import time

    loop = EventLoop()
    for i in range(50_000):
        loop.schedule(float(i), lambda: None)
    polls = 10_000
    start = time.perf_counter()
    for _ in range(polls):
        loop.pending()
    elapsed = time.perf_counter() - start
    # 10k O(1) polls are microseconds each even on slow CI; 10k O(heap)
    # scans of a 50k heap would take tens of seconds.
    assert elapsed < 1.0
    assert loop.pending() == 50_000


def test_loop_is_not_reentrant():
    loop = EventLoop()
    errors = []

    def reenter():
        try:
            loop.run()
        except SimulationError:
            errors.append(True)

    loop.schedule(1.0, reenter)
    loop.run()
    assert errors == [True]


def test_determinism_same_schedule_same_history():
    def history():
        loop = EventLoop()
        out = []
        for i in range(50):
            loop.schedule((i * 7919 % 13) / 10.0, out.append, i)
        loop.run()
        return out

    assert history() == history()
