"""Unit tests for the discrete-event loop."""

import pytest

from repro.sim.loop import EventLoop, SimulationError, TimeWheelLoop


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule(3.0, fired.append, "c")
    loop.schedule(1.0, fired.append, "a")
    loop.schedule(2.0, fired.append, "b")
    loop.run()
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_scheduling_order():
    loop = EventLoop()
    fired = []
    for label in "abcde":
        loop.schedule(1.0, fired.append, label)
    loop.run()
    assert fired == list("abcde")


def test_now_advances_to_event_time():
    loop = EventLoop()
    seen = []
    loop.schedule(2.5, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [2.5]
    assert loop.now == 2.5


def test_run_until_stops_before_later_events():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, fired.append, "early")
    loop.schedule(5.0, fired.append, "late")
    loop.run(until=2.0)
    assert fired == ["early"]
    assert loop.now == 2.0  # clock advances to the boundary
    loop.run()
    assert fired == ["early", "late"]


def test_cancelled_events_do_not_fire():
    loop = EventLoop()
    fired = []
    keep = loop.schedule(1.0, fired.append, "keep")
    drop = loop.schedule(1.0, fired.append, "drop")
    drop.cancel()
    loop.run()
    assert fired == ["keep"]
    assert keep.time == 1.0


def test_cancel_is_idempotent():
    loop = EventLoop()
    event = loop.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    loop.run()
    assert loop.processed_events == 0


def test_scheduling_in_the_past_raises():
    loop = EventLoop()
    loop.schedule(1.0, lambda: None)
    loop.run()
    with pytest.raises(SimulationError):
        loop.schedule_at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        loop.schedule(-1.0, lambda: None)


def test_events_scheduled_during_execution_fire():
    loop = EventLoop()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            loop.schedule(1.0, chain, n + 1)

    loop.schedule(0.0, chain, 0)
    loop.run()
    assert fired == [0, 1, 2, 3]
    assert loop.now == 3.0


def test_step_executes_one_event():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, fired.append, 1)
    loop.schedule(2.0, fired.append, 2)
    assert loop.step() is True
    assert fired == [1]
    assert loop.step() is True
    assert loop.step() is False


def test_max_events_bound():
    loop = EventLoop()
    fired = []
    for i in range(10):
        loop.schedule(float(i), fired.append, i)
    loop.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_pending_excludes_cancelled():
    loop = EventLoop()
    loop.schedule(1.0, lambda: None)
    event = loop.schedule(2.0, lambda: None)
    event.cancel()
    assert loop.pending() == 1


def test_pending_counter_tracks_schedule_cancel_and_pop():
    """pending() is a live counter (O(1)), not a heap scan — it must stay
    exact through every combination of firing, cancellation (including
    double-cancel), and partial runs."""
    loop = EventLoop()
    events = [loop.schedule(float(i + 1), lambda: None) for i in range(6)]
    assert loop.pending() == 6
    events[4].cancel()
    events[4].cancel()          # idempotent: must not decrement twice
    assert loop.pending() == 5
    loop.step()                 # fires t=1
    assert loop.pending() == 4
    loop.run(until=3.0)         # fires t=2, t=3
    assert loop.pending() == 2
    events[5].cancel()
    assert loop.pending() == 1
    loop.run()                  # fires t=4; cancelled t=5/t=6 lazily popped
    assert loop.pending() == 0
    assert not loop._heap


def test_cancel_after_fire_does_not_corrupt_pending():
    """A handle cancelled after its event already fired (e.g. a timeout
    cancelled on completion) must be a no-op, not a double decrement."""
    loop = EventLoop()
    event = loop.schedule(1.0, lambda: None)
    loop.run()
    assert loop.pending() == 0
    event.cancel()
    event.cancel()
    assert loop.pending() == 0
    assert event.cancelled  # the flag still reads as cancelled (harmless)
    loop.schedule(2.0, lambda: None)
    assert loop.pending() == 1


def test_pending_is_constant_time_under_large_heaps():
    """The counter must not degrade into an O(heap) scan again: polling
    pending() many times against a large heap has to stay far cheaper than
    the equivalent scans."""
    import time

    loop = EventLoop()
    for i in range(50_000):
        loop.schedule(float(i), lambda: None)
    polls = 10_000
    start = time.perf_counter()
    for _ in range(polls):
        loop.pending()
    elapsed = time.perf_counter() - start
    # 10k O(1) polls are microseconds each even on slow CI; 10k O(heap)
    # scans of a 50k heap would take tens of seconds.
    assert elapsed < 1.0
    assert loop.pending() == 50_000


def test_loop_is_not_reentrant():
    loop = EventLoop()
    errors = []

    def reenter():
        try:
            loop.run()
        except SimulationError:
            errors.append(True)

    loop.schedule(1.0, reenter)
    loop.run()
    assert errors == [True]


def test_determinism_same_schedule_same_history():
    def history():
        loop = EventLoop()
        out = []
        for i in range(50):
            loop.schedule((i * 7919 % 13) / 10.0, out.append, i)
        loop.run()
        return out

    assert history() == history()


# ----------------------------------------------------------------------
# schedule_periodic
# ----------------------------------------------------------------------

def test_periodic_fires_every_interval():
    loop = EventLoop()
    times = []
    handle = loop.schedule_periodic(1.0, lambda: times.append(loop.now))
    loop.run(until=3.5)
    handle.cancel()
    loop.run()
    assert times == [1.0, 2.0, 3.0]
    assert not handle.active


def test_periodic_phase_offsets_first_firing():
    loop = EventLoop()
    times = []
    handle = loop.schedule_periodic(1.0, lambda: times.append(loop.now),
                                    phase=0.25)
    loop.run(until=2.5)
    handle.cancel()
    assert times == [0.25, 1.25, 2.25]


def test_periodic_cancel_from_inside_callback():
    loop = EventLoop()
    fired = []
    handle = loop.schedule_periodic(1.0, lambda: (
        fired.append(loop.now),
        handle.cancel() if len(fired) == 2 else None))
    loop.run()
    assert fired == [1.0, 2.0]
    assert loop.pending() == 0


def test_periodic_callable_interval_reread_each_arming():
    loop = EventLoop()
    times = []
    step = [1.0]

    def fire():
        times.append(loop.now)
        step[0] = 0.5           # takes effect from the *next* arming on

    handle = loop.schedule_periodic(lambda: step[0], fire)
    loop.run(until=2.3)
    handle.cancel()
    assert times == [1.0, 1.5, 2.0]


def test_periodic_rearms_after_callback_returns():
    """The next firing is scheduled *after* the callback body runs, so any
    events the callback schedules at the next firing time get earlier
    sequence numbers and fire first — the order hand-rolled self-
    rescheduling loops produced."""
    loop = EventLoop()
    order = []

    def fire():
        order.append(("tick", loop.now))
        loop.schedule(1.0, order.append, ("inner", loop.now + 1.0))

    handle = loop.schedule_periodic(1.0, fire)
    loop.run(until=2.5)
    handle.cancel()
    assert order == [("tick", 1.0), ("inner", 2.0), ("tick", 2.0)]


# ----------------------------------------------------------------------
# TimeWheelLoop
# ----------------------------------------------------------------------

def test_wheel_rejects_bad_parameters():
    with pytest.raises(SimulationError):
        TimeWheelLoop(resolution=0.0)
    with pytest.raises(SimulationError):
        TimeWheelLoop(resolution=-1e-3)
    with pytest.raises(SimulationError):
        TimeWheelLoop(wheel_slots=1)


def test_wheel_fires_in_time_then_seq_order():
    loop = TimeWheelLoop(resolution=1e-3, wheel_slots=8)
    fired = []
    loop.schedule(0.003, fired.append, "c")
    loop.schedule(0.001, fired.append, "a")
    loop.schedule(0.001, fired.append, "a2")   # same slot, same time: seq order
    loop.schedule(0.002, fired.append, "b")
    loop.run()
    assert fired == ["a", "a2", "b", "c"]
    assert loop.now == 0.003


def test_wheel_overflow_beyond_horizon_fires_at_exact_time():
    # horizon = 4 slots * 1ms = 4ms; 50ms lands deep in the overflow heap
    loop = TimeWheelLoop(resolution=1e-3, wheel_slots=4)
    seen = []
    loop.schedule(0.050, lambda: seen.append(loop.now))
    loop.schedule(0.001, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [0.001, 0.050]
    assert loop.processed_events == 2


def test_wheel_cursor_jumps_over_empty_stretch():
    # A single far-future event: the ring is empty, so _pop_next must jump
    # the cursor straight to the overflow head instead of sweeping slots.
    loop = TimeWheelLoop(resolution=1e-3, wheel_slots=4)
    seen = []
    loop.schedule(123.456, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [123.456]


def test_wheel_until_boundary_pushes_event_back():
    loop = TimeWheelLoop(resolution=1e-3, wheel_slots=4)
    fired = []
    loop.schedule(0.0015, fired.append, "early")
    loop.schedule(0.0095, fired.append, "late")
    loop.run(until=0.005)
    assert fired == ["early"]
    assert loop.now == 0.005
    assert loop.pending() == 1
    loop.run()
    assert fired == ["early", "late"]
    assert loop.pending() == 0


def test_wheel_cancelled_events_skipped_in_ring_and_overflow():
    loop = TimeWheelLoop(resolution=1e-3, wheel_slots=4)
    fired = []
    ring_drop = loop.schedule(0.002, fired.append, "ring")
    overflow_drop = loop.schedule(0.040, fired.append, "overflow")
    loop.schedule(0.003, fired.append, "keep")
    ring_drop.cancel()
    overflow_drop.cancel()
    assert loop.pending() == 1
    loop.run()
    assert fired == ["keep"]
    assert loop.pending() == 0


def test_wheel_supports_periodic_and_nested_scheduling():
    loop = TimeWheelLoop(resolution=1e-3, wheel_slots=4)
    times = []
    handle = loop.schedule_periodic(0.0027, lambda: times.append(loop.now))
    loop.run(until=0.009)
    handle.cancel()
    loop.run()
    assert times == pytest.approx([0.0027, 0.0054, 0.0081])
