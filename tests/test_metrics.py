"""Tests for metric collection and post-run statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import (
    MetricsHub,
    NullMetrics,
    cdf,
    mean,
    percentile,
    steady_window,
    throughput,
    trim_marks,
    windowed_points,
    windowed_rate,
)


class TestHub:
    def test_counters(self, metrics):
        metrics.count("x")
        metrics.count("x", 4)
        assert metrics.counter("x") == 5
        assert metrics.counter("missing") == 0

    def test_samples_marks_points(self, metrics):
        metrics.record("lat", 1.0)
        metrics.mark("ops", 0.5)
        metrics.point("vis", 0.5, 9.0)
        assert metrics.sample_values("lat") == [1.0]
        assert metrics.mark_times("ops") == [0.5]
        assert metrics.point_series("vis") == [(0.5, 9.0)]

    def test_names_listing(self, metrics):
        metrics.count("c")
        metrics.record("s", 1)
        names = metrics.names()
        assert names["counters"] == ["c"]
        assert names["samples"] == ["s"]

    def test_mark_many_with_count(self, metrics):
        metrics.mark("ops", 0.5)
        metrics.mark_many("ops", 1.5, 3)
        metrics.mark_many("ops", 9.9, 0)     # no-op, no empty-list entry
        assert metrics.mark_times("ops") == [0.5, 1.5, 1.5, 1.5]

    def test_mark_many_with_explicit_times(self, metrics):
        metrics.mark_many("ops", 0.0, [0.1, 0.2])
        assert metrics.mark_times("ops") == [0.1, 0.2]

    def test_mark_many_equivalent_to_mark_loop(self, metrics):
        bulk = MetricsHub()
        for _ in range(5):
            metrics.mark("ops", 2.5)
        bulk.mark_many("ops", 2.5, 5)
        assert bulk.mark_times("ops") == metrics.mark_times("ops")

    def test_null_hub_discards(self):
        hub = NullMetrics()
        hub.count("x")
        hub.record("y", 1.0)
        hub.mark("z", 1.0)
        hub.mark_many("z", 1.0, 7)
        hub.point("w", 1.0, 2.0)
        assert hub.counter("x") == 0
        assert hub.sample_values("y") == []
        assert hub.mark_times("z") == []


class TestStats:
    def test_mean_and_empty(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 90) == pytest.approx(90.1)
        assert percentile([], 50) == 0.0

    @given(values=st.lists(st.floats(min_value=0, max_value=1e6,
                                     allow_nan=False), min_size=1,
                           max_size=200))
    def test_percentile_bounds(self, values):
        assert min(values) <= percentile(values, 50) <= max(values)

    def test_cdf_monotone_and_complete(self):
        points = cdf([3.0, 1.0, 2.0, 2.0])
        assert points == [(1.0, 0.25), (2.0, 0.75), (3.0, 1.0)]

    def test_cdf_resolution_buckets(self):
        points = cdf([0.2, 0.9, 1.4], resolution=1.0)
        assert points == [(0.0, 2 / 3), (1.0, 1.0)]

    def test_cdf_empty(self):
        assert cdf([]) == []

    @given(values=st.lists(st.floats(0, 1000, allow_nan=False), min_size=1,
                           max_size=100))
    def test_cdf_fractions_monotone(self, values):
        points = cdf(values)
        fracs = [f for _, f in points]
        assert fracs == sorted(fracs)
        assert fracs[-1] == pytest.approx(1.0)

    def test_steady_window_trims(self):
        lo, hi = steady_window(0.0, 10.0)
        assert lo == pytest.approx(1.5)
        assert hi == pytest.approx(8.5)

    def test_throughput_counts_in_window(self):
        marks = [0.1 * i for i in range(100)]  # 10 ops/s for 10s
        assert throughput(marks, (2.0, 8.0)) == pytest.approx(10.0, rel=0.05)
        assert throughput(marks, (5.0, 5.0)) == 0.0

    def test_trim_marks(self):
        assert trim_marks([0.5, 1.5, 2.5], (1.0, 2.0)) == [1.5]

    def test_windowed_rate(self):
        marks = [0.25, 0.75, 1.25]  # 2 in [0,1), 1 in [1,2)
        rates = windowed_rate(marks, 0.0, 2.0, 1.0)
        assert rates == [(0.5, 2.0), (1.5, 1.0)]

    def test_windowed_rate_degenerate(self):
        assert windowed_rate([1.0], 5.0, 5.0, 1.0) == []

    def test_windowed_points_aggregations(self):
        points = [(0.1, 10.0), (0.2, 20.0), (1.5, 5.0)]
        assert windowed_points(points, 0, 2, 1, agg="mean") == [
            (0.5, 15.0), (1.5, 5.0)]
        assert windowed_points(points, 0, 2, 1, agg="max")[0] == (0.5, 20.0)
        p90 = windowed_points(points, 0, 2, 1, agg="p90")[0][1]
        assert 10.0 <= p90 <= 20.0

    def test_windowed_points_skips_empty_buckets(self):
        points = [(0.5, 1.0), (2.5, 2.0)]
        out = windowed_points(points, 0, 3, 1, agg="mean")
        assert [t for t, _ in out] == [0.5, 2.5]

    def test_windowed_points_unknown_agg(self):
        with pytest.raises(ValueError):
            windowed_points([(0.5, 1.0)], 0, 1, 1, agg="bogus")
