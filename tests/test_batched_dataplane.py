"""Equivalence of the batched dataplane against its per-op semantics.

PR 10 batches three hot lanes — the partition→Eunomia uplink (suffix-reuse
frame cache), the receiver's grouped FLUSH shipping (``send_many`` over
consecutive same-partition releases), and the pipelined apply window
(``EunomiaConfig.receiver_pipeline``).  Each batching layer claims a
precise equivalence with the per-op code it replaced, and each claim gets
the strongest test it supports:

* the **frame cache** is a pure memoization — disabling it (rebuilding
  every retransmission suffix from the pending columns) must leave the
  whole run *bit-identical*, including under the loss-induced ack stalls
  that make the cache fire in the first place;
* **grouped shipping** rides the ``send_many`` contract (one RNG draw per
  message, issue order, FIFO) — reverting the receiver to per-op ``send``
  must also be bit-identical;
* the **apply pipeline** intentionally changes timing (runs release
  together), so whole-system twins legitimately diverge in commit
  timestamps; its claim is *op-for-op* at the receiver — same updates, to
  the same partitions, in the same per-origin order as stop-and-wait —
  proven on a scripted receiver harness with at-least-once re-shipped
  streams, plus a system-level causal-checker invariant under real
  loss/partition interleavings.

Observability-attached variants guard the instruments' no-perturbation
promise on every batched path.
"""

from __future__ import annotations

import types
from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EunomiaConfig
from repro.core.messages import (
    ApplyRemoteOk,
    ApplyRemoteOkRun,
    RemoteStableBatch,
)
from repro.checker import CausalChecker, SessionHistory
from repro.datastruct.opblock import OpBlock
from repro.geo.receiver import Receiver
from repro.geo.system import GeoSystemSpec, build_geo_system
from repro.harness.goldens import run_fingerprint
from repro.kvstore.ring import ConsistentHashRing
from repro.kvstore.types import Update
from repro.sim import Environment, Network, Process
from repro.sim.latency import JitteredLatency
from repro.workload.generator import WorkloadSpec

SPEC = dict(n_dcs=3, partitions_per_dc=2, clients_per_dc=1)
WL = dict(read_ratio=0.5, n_keys=48)
RUN_S = 1.2
DRAIN_S = 2.0


def _system(seed: int, config: EunomiaConfig | None = None, history=None):
    spec = GeoSystemSpec(seed=seed, **SPEC)
    kwargs = {"config": config} if config is not None else {}
    return build_geo_system("eunomia", spec, WorkloadSpec(**WL),
                            history=history, **kwargs)


# ----------------------------------------------------------------------
# Fault plans (hypothesis-drawn windows, always healed before the drain)
# ----------------------------------------------------------------------
_WINDOW = st.tuples(
    st.floats(min_value=0.15, max_value=0.7),   # start (s)
    st.floats(min_value=0.1, max_value=0.4),    # duration (s)
    st.sampled_from(["loss", "cut", "gray"]),
    st.integers(min_value=0, max_value=SPEC["n_dcs"] - 1),  # src dc
    st.integers(min_value=1, max_value=SPEC["n_dcs"] - 1),  # dst dc offset
)

_PLANS = st.lists(_WINDOW, min_size=0, max_size=3)


def _arm_interdc_faults(system, plan) -> None:
    """Perturb the lanes feeding the grouped receiver flush.

    Faults respect each lane's delivery contract (the same rule the chaos
    matrix follows): the propagator→receiver stream is fire-and-forget,
    so it only takes *gray* (slow-not-dead) windows — a dropped
    RemoteStableBatch is unrecoverable by design — while loss and cuts go
    on the partition↔stabilizer lane, where the uplink's at-least-once
    retransmission recovers them.  Both shapes stall and then burst the
    stable streams, which is exactly what drives large grouped flushes.
    """
    sched = system.failures()
    dcs = system.datacenters
    net = system.env.network
    for start, dur, kind, a_idx, off in plan:
        a = dcs[a_idx]
        b = dcs[(a_idx + off) % len(dcs)]
        if kind == "gray":
            lane = [(p, b.receiver) for p in a.propagators()]
            sched.degrade_links_at(start, lane, 0.015)
            sched.restore_links_at(start + dur, lane)
            continue
        replicas = sorted({r for p in a.partitions
                           for r in p.uplink.replicas},
                          key=lambda proc: proc.name)
        if kind == "cut":
            sched.partition_at(start, list(a.partitions), replicas)
            sched.heal_at(start + dur, list(a.partitions), replicas)
        else:
            pairs = [(p, r) for p in a.partitions for r in p.uplink.replicas]
            pairs += [(r, p) for p, r in pairs]

            def begin(ps=pairs):
                for s, d in ps:
                    net.set_link_loss(s, d, 0.4)

            def end(ps=pairs):
                for s, d in ps:
                    net.set_link_loss(s, d, 0.0)

            sched.at(start, begin, "loss-on")
            sched.at(start + dur, end, "loss-off")


def _arm_uplink_faults(system, plan) -> None:
    """Degrade partition↔service links (the lane the frame cache serves).

    Both directions take the fault: dropping AddOpBatch frames forces
    whole-suffix retransmission, dropping BatchAck replies forces the ack
    stall that makes an *identical* suffix get re-shipped — the cache-hit
    case under test.
    """
    sched = system.failures()
    dcs = system.datacenters
    net = system.env.network
    for start, dur, kind, a_idx, _off in plan:
        dc = dcs[a_idx]
        pairs = []
        for p in dc.partitions:
            for replica in p.uplink.replicas:
                pairs.append((p, replica))
                pairs.append((replica, p))
        if kind == "cut":
            group_a = list(dc.partitions)
            group_b = [r for p in dc.partitions for r in p.uplink.replicas]
            sched.partition_at(start, group_a, group_b)
            sched.heal_at(start + dur, group_a, group_b)
        elif kind == "gray":
            sched.degrade_links_at(start, pairs, 0.004)
            sched.restore_links_at(start + dur, pairs)
        else:
            def begin(ps=pairs):
                for s, d in ps:
                    net.set_link_loss(s, d, 0.35)

            def end(ps=pairs):
                for s, d in ps:
                    net.set_link_loss(s, d, 0.0)

            sched.at(start, begin, "uplink-loss-on")
            sched.at(start + dur, end, "uplink-loss-off")


# ----------------------------------------------------------------------
# Pipelined apply window: op-for-op equivalence on a scripted receiver
# ----------------------------------------------------------------------
class _StubPartition(Process):
    """Applies releases in arrival order and acks like the real partition."""

    def __init__(self, env, name, index, log):
        super().__init__(env, name)
        self.index = index
        self.log = log            # shared (partition_index, uid) apply log

    def on_apply_remote(self, msg, src):
        self.log.append((self.index, msg.update.uid))
        self.send(src, ApplyRemoteOk(msg.update.uid))

    def on_apply_remote_run(self, msg, src):
        uids = tuple(u.uid for u in msg.updates)
        for uid in uids:
            self.log.append((self.index, uid))
        self.send(src, ApplyRemoteOkRun(uids))


@st.composite
def _stream_plans(draw):
    """An at-least-once stable-stream schedule for a 3-DC receiver.

    Returns (per-origin update lists, per-origin frame schedule).  Ops are
    generated in one global interleaving; each op's cross-DC dependency
    (when drawn) names a timestamp some *earlier-generated* op of the
    other origin carries, so a topological apply order always exists and
    the run must fully drain.  Frames chunk each stream with drawn overlap
    (re-shipped prefixes — the observable form of loss + at-least-once
    retry on this lane) and staggered send times.
    """
    origins = (1, 2)
    n_ops = draw(st.integers(min_value=12, max_value=48))
    order = draw(st.lists(st.sampled_from(origins),
                          min_size=n_ops, max_size=n_ops))
    dep_flags = draw(st.lists(st.booleans(), min_size=n_ops, max_size=n_ops))
    keys = draw(st.lists(st.integers(min_value=0, max_value=15),
                         min_size=n_ops, max_size=n_ops))
    parts = draw(st.lists(st.integers(min_value=0, max_value=1),
                          min_size=n_ops, max_size=n_ops))
    streams: dict[int, list[Update]] = {k: [] for k in origins}
    last_ts = {k: 0 for k in origins}
    seq = defaultdict(int)
    for i, k in enumerate(order):
        ts = last_ts[k] + 1 + (i % 3)
        last_ts[k] = ts
        other = origins[1 - origins.index(k)]
        vts = [0, 0, 0]
        vts[k] = ts
        if dep_flags[i] and last_ts[other]:
            vts[other] = last_ts[other]
        key = (parts[i], keys[i])
        s = seq[(k, parts[i])]
        seq[(k, parts[i])] = s + 1
        streams[k].append(Update(
            key=key, value=f"v{k}.{parts[i]}.{s}", origin_dc=k,
            partition_index=parts[i], seq=s, ts=ts, vts=tuple(vts)))

    schedule: dict[int, list[tuple[float, int, int]]] = {}
    for k in origins:
        n = len(streams[k])
        frames, pos, t = [], 0, 0.0
        while pos < n:
            size = draw(st.integers(min_value=1, max_value=6))
            overlap = draw(st.integers(min_value=0, max_value=3))
            t += draw(st.floats(min_value=0.0005, max_value=0.01))
            frames.append((t, max(0, pos - overlap), min(n, pos + size)))
            pos += size
        schedule[k] = frames
    return streams, schedule


def _run_receiver(streams, schedule, pipeline: int):
    """Drive a real Receiver off scripted streams; return its outcome."""
    env = Environment(seed=5)
    net = Network(env, JitteredLatency(base_s=0.001, jitter_s=0.0004))
    log: list[tuple[int, tuple]] = []
    partitions = [_StubPartition(env, f"p{i}", i, log) for i in range(2)]
    origins = {k: Process(env, f"origin{k}") for k in schedule}
    receiver = Receiver(env, "r0", dc_id=0, n_dcs=3, check_interval=0.005,
                        pipeline=pipeline)
    receiver.set_partitions(ConsistentHashRing(2), partitions)
    receiver.start()
    for k, frames in schedule.items():
        for when, lo, hi in frames:
            chunk = tuple(streams[k][lo:hi])
            msg = RemoteStableBatch(origin_dc=k, ops=chunk,
                                    block=OpBlock.from_updates(chunk))
            env.loop.schedule_at(
                when, net.send, origins[k], receiver, msg)
    env.run(until=2.0)
    per_origin: dict[int, list] = defaultdict(list)
    for pidx, uid in log:
        per_origin[uid[0]].append((pidx, uid))
    return {
        "per_origin": dict(per_origin),
        "applied": receiver.applied,
        "site_time": list(receiver.site_time),
        "duplicates": receiver.duplicates_dropped,
        "backlog": receiver.backlog(),
    }


@settings(max_examples=30, deadline=None)
@given(plan=_stream_plans(), pipeline=st.integers(min_value=2, max_value=6))
def test_receiver_pipeline_is_op_for_op_equivalent(plan, pipeline):
    """Pipelined FLUSH releases the same updates, to the same partitions,
    in the same per-origin order as stop-and-wait — and fully drains
    re-shipped at-least-once streams with identical dedup counts."""
    streams, schedule = plan
    base = _run_receiver(streams, schedule, pipeline=1)
    piped = _run_receiver(streams, schedule, pipeline=pipeline)
    assert piped["per_origin"] == base["per_origin"]
    assert piped["applied"] == base["applied"]
    assert piped["site_time"] == base["site_time"]
    assert piped["duplicates"] == base["duplicates"]
    assert base["backlog"] == 0 and piped["backlog"] == 0
    # and the per-origin order is exactly the stream (queue) order
    for k, stream in streams.items():
        assert [uid for _, uid in base["per_origin"].get(k, [])] \
            == [u.uid for u in stream]


@settings(max_examples=8, deadline=None)
@given(plan=_PLANS,
       pipeline=st.integers(min_value=2, max_value=6),
       seed=st.integers(min_value=0, max_value=2**10))
def test_pipelined_system_keeps_causal_guarantees(plan, pipeline, seed):
    """Whole-system oracle for the pipeline under *real* loss/cut/gray
    interleavings: every client session stays causal, every read returns
    a causally-consistent value, and the DCs converge after heal."""
    history = SessionHistory()
    # Fault-tolerant service: BatchAck (and with it the uplink's
    # retransmission) is Alg. 4 machinery, and the loss/cut windows land
    # on exactly that lane — the plain Alg. 3 service would lose them.
    config = EunomiaConfig(fault_tolerant=True, n_replicas=2,
                           receiver_pipeline=pipeline)
    system = _system(seed, config, history=history)
    _arm_interdc_faults(system, plan)
    system.run(RUN_S)
    system.quiesce(DRAIN_S)
    checker = CausalChecker(history)
    assert checker.check() == []
    assert checker.check_write_read_pairs() == []
    assert system.converged()


def test_pipelined_system_causal_with_observability():
    """The causal oracle holds with the full obs surface attached."""
    history = SessionHistory()
    config = EunomiaConfig(fault_tolerant=True, n_replicas=2,
                           receiver_pipeline=4)
    system = _system(5, config, history=history)
    _arm_interdc_faults(system, [(0.3, 0.3, "cut", 0, 1),
                                 (0.5, 0.25, "loss", 2, 2)])
    system.observe(sample_every=16)
    system.run(RUN_S)
    system.quiesce(DRAIN_S)
    checker = CausalChecker(history)
    assert checker.check() == []
    assert system.converged()


# ----------------------------------------------------------------------
# Uplink frame cache: pure memoization, bit-identical when disabled
# ----------------------------------------------------------------------
def _disable_frame_cache(system) -> None:
    """Force every retransmission suffix to be rebuilt from the columns."""
    for dc in system.datacenters:
        for p in dc.partitions:
            uplink = p.uplink
            orig = uplink._ship_suffix

            def rebuild(replica, _up=uplink, _orig=orig):
                _up._frames.clear()
                return _orig(replica)

            uplink._ship_suffix = rebuild


def _run_uplink(seed: int, plan, cache: bool, observe: bool = False):
    config = EunomiaConfig(fault_tolerant=True, n_replicas=2)
    system = _system(seed, config)
    if not cache:
        _disable_frame_cache(system)
    _arm_uplink_faults(system, plan)
    if observe:
        system.observe(sample_every=16)
    system.run(RUN_S)
    system.quiesce(DRAIN_S)
    reused = sum(p.uplink.frames_reused
                 for dc in system.datacenters for p in dc.partitions)
    retx = sum(p.uplink.retransmissions
               for dc in system.datacenters for p in dc.partitions)
    return run_fingerprint(system), reused, retx


@settings(max_examples=6, deadline=None)
@given(plan=_PLANS, seed=st.integers(min_value=0, max_value=2**10))
def test_uplink_frame_cache_is_pure_under_ack_stalls(plan, seed):
    """Resend-after-ack-stall with the suffix cache is bit-identical to
    rebuilding every frame: same fingerprints, same visibility series,
    same retransmission count — the cache touches no RNG and no state."""
    cached, _reused, retx_a = _run_uplink(seed, plan, cache=True)
    rebuilt, reused_off, retx_b = _run_uplink(seed, plan, cache=False)
    assert cached == rebuilt
    assert retx_a == retx_b
    assert reused_off == 0          # the kill-switch actually disengaged it


def test_uplink_ack_stall_reuses_frames_and_converges():
    """A one-way ack blackout across the drain boundary forces identical
    suffix resends: the cache must fire (frames_reused > 0) and the run
    must still converge once the acks flow again."""
    config = EunomiaConfig(fault_tolerant=True, n_replicas=2)
    system = _system(seed=9, config=config)
    dc = system.datacenters[0]
    replicas = [r for p in dc.partitions for r in p.uplink.replicas]
    sched = system.failures()
    # Block BatchAck (replica → partition) only; AddOpBatch keeps flowing.
    sched.partition_at(0.8, replicas, list(dc.partitions), symmetric=False)
    sched.heal_at(2.0, replicas, list(dc.partitions))
    system.run(1.0)
    system.quiesce(2.5)
    reused = sum(p.uplink.frames_reused for p in dc.partitions)
    retx = sum(p.uplink.retransmissions for p in dc.partitions)
    assert retx > 0
    assert reused > 0
    assert system.converged()


def test_uplink_frame_cache_pure_with_observability():
    """Cache purity holds with tracing/SLO/gauges attached (obs draws no
    randomness, so the twin runs must still match bit-for-bit)."""
    plan = [(0.25, 0.3, "loss", 1, 1)]
    cached, _, _ = _run_uplink(7, plan, cache=True, observe=True)
    rebuilt, _, _ = _run_uplink(7, plan, cache=False, observe=True)
    assert cached == rebuilt


# ----------------------------------------------------------------------
# Grouped FLUSH shipping: bit-identical to per-op sends
# ----------------------------------------------------------------------
def _per_op_ship(self, sends):
    for target, msg in sends:
        self.send(target, msg)


def _run_grouped(seed: int, plan, grouped: bool, pipeline: int = 1,
                 observe: bool = False):
    config = EunomiaConfig(fault_tolerant=True, n_replicas=2,
                           receiver_pipeline=pipeline)
    system = _system(seed, config)
    if not grouped:
        for dc in system.datacenters:
            dc.receiver._ship = types.MethodType(_per_op_ship, dc.receiver)
    _arm_interdc_faults(system, plan)
    if observe:
        system.observe(sample_every=16)
    system.run(RUN_S)
    system.quiesce(DRAIN_S)
    return run_fingerprint(system)


@settings(max_examples=6, deadline=None)
@given(plan=_PLANS,
       pipeline=st.sampled_from([1, 3]),
       seed=st.integers(min_value=0, max_value=2**10))
def test_grouped_flush_shipping_bit_identical(plan, pipeline, seed):
    """``send_many`` grouping of consecutive same-partition releases is
    RNG- and FIFO-identical to the per-op ``send`` loop it replaced —
    the whole-run fingerprint (stores + ordered visibility series) must
    not move a bit, faults included."""
    assert (_run_grouped(seed, plan, grouped=True, pipeline=pipeline)
            == _run_grouped(seed, plan, grouped=False, pipeline=pipeline))


def test_grouped_flush_shipping_bit_identical_with_observability():
    plan = [(0.3, 0.25, "gray", 0, 2)]
    assert (_run_grouped(3, plan, grouped=True, pipeline=3, observe=True)
            == _run_grouped(3, plan, grouped=False, pipeline=3, observe=True))
