"""Property-based and unit tests for the red–black and AVL trees."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastruct import AVLTree, OpBuffer, RedBlackTree

keys = st.lists(st.integers(min_value=-1000, max_value=1000), max_size=200)


@pytest.mark.parametrize("tree_cls", [RedBlackTree, AVLTree])
class TestTreeBasics:
    def test_empty(self, tree_cls):
        tree = tree_cls()
        assert len(tree) == 0
        assert not tree
        assert 1 not in tree
        assert tree.get(1, "d") == "d"
        with pytest.raises(KeyError):
            tree.min_item()
        with pytest.raises(KeyError):
            tree.pop_min()

    def test_insert_get_overwrite(self, tree_cls):
        tree = tree_cls()
        tree.insert(5, "a")
        tree.insert(5, "b")  # overwrite, not duplicate
        assert len(tree) == 1
        assert tree.get(5) == "b"

    def test_delete_missing_raises(self, tree_cls):
        tree = tree_cls()
        tree.insert(1, 1)
        with pytest.raises(KeyError):
            tree.delete(2)

    def test_items_sorted(self, tree_cls):
        tree = tree_cls()
        data = [5, 3, 8, 1, 9, 7, 2]
        for k in data:
            tree.insert(k, k * 10)
        assert [k for k, _ in tree.items()] == sorted(data)
        tree.validate()

    def test_pop_min_order(self, tree_cls):
        tree = tree_cls()
        for k in [5, 3, 8, 1]:
            tree.insert(k, k)
        popped = [tree.pop_min()[0] for _ in range(4)]
        assert popped == [1, 3, 5, 8]
        assert len(tree) == 0

    def test_pop_leq_extracts_prefix(self, tree_cls):
        tree = tree_cls()
        for k in range(10):
            tree.insert(k, k)
        out = tree.pop_leq(4)
        assert [k for k, _ in out] == [0, 1, 2, 3, 4]
        assert [k for k, _ in tree.items()] == [5, 6, 7, 8, 9]
        tree.validate()

    def test_pop_leq_empty_prefix(self, tree_cls):
        tree = tree_cls()
        tree.insert(10, 10)
        assert tree.pop_leq(5) == []
        assert len(tree) == 1

    @given(data=keys)
    @settings(max_examples=60, deadline=None)
    def test_matches_sorted_dict_model(self, tree_cls, data):
        tree = tree_cls()
        model = {}
        for k in data:
            tree.insert(k, k * 2)
            model[k] = k * 2
        tree.validate()
        assert list(tree.items()) == sorted(model.items())
        assert len(tree) == len(model)

    @given(data=keys, deletions=st.lists(st.integers(-1000, 1000),
                                         max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_interleaved_insert_delete(self, tree_cls, data, deletions):
        tree = tree_cls()
        model = {}
        for k in data:
            tree.insert(k, k)
            model[k] = k
        for k in deletions:
            if k in model:
                assert tree.delete(k) == model.pop(k)
            else:
                with pytest.raises(KeyError):
                    tree.delete(k)
        tree.validate()
        assert list(tree.items()) == sorted(model.items())

    @given(data=keys, bound=st.integers(-1000, 1000))
    @settings(max_examples=60, deadline=None)
    def test_pop_leq_model(self, tree_cls, data, bound):
        tree = tree_cls()
        model = {}
        for k in data:
            tree.insert(k, k)
            model[k] = k
        popped = tree.pop_leq(bound)
        tree.validate()
        expected = sorted((k, v) for k, v in model.items() if k <= bound)
        assert popped == expected
        remaining = sorted((k, v) for k, v in model.items() if k > bound)
        assert list(tree.items()) == remaining


def test_rbtree_max_item():
    tree = RedBlackTree()
    for k in [3, 9, 1]:
        tree.insert(k, k)
    assert tree.max_item() == (9, 9)
    with pytest.raises(KeyError):
        RedBlackTree().max_item()


def test_trees_agree_on_random_workload():
    """The §6 ablation precondition: both structures are interchangeable."""
    rng = random.Random(42)
    rb, avl = RedBlackTree(), AVLTree()
    for _ in range(3000):
        k = rng.randrange(500)
        rb.insert(k, k)
        avl.insert(k, k)
        if rng.random() < 0.3:
            bound = rng.randrange(500)
            assert rb.pop_leq(bound) == avl.pop_leq(bound)
    assert list(rb.items()) == list(avl.items())
    rb.validate()
    avl.validate()


BACKENDS = ["runs", "rbtree", "avl"]


@pytest.mark.parametrize("backend", BACKENDS)
class TestOpBuffer:
    """Facade contract shared by every backend strategy."""

    def test_orders_by_timestamp_then_origin_then_seq(self, backend):
        buf = OpBuffer(backend=backend)
        buf.add(10, 2, 1, "b")
        buf.add(10, 1, 1, "a")   # same ts, lower partition first
        buf.add(5, 9, 1, "first")
        assert buf.pop_stable(10) == ["first", "a", "b"]

    def test_pop_stable_keeps_unstable_suffix(self, backend):
        buf = OpBuffer(backend=backend)
        for ts in (1, 2, 3, 4):
            buf.add(ts, 0, ts, ts)
        assert buf.pop_stable(2) == [1, 2]
        assert len(buf) == 2
        assert buf.min_ts() == 3

    def test_min_ts_empty(self, backend):
        assert OpBuffer(backend=backend).min_ts() is None

    def test_contains_and_counts(self, backend):
        buf = OpBuffer(backend=backend)
        buf.add(1, 0, 1, "x")
        assert buf.contains(1, 0, 1)
        assert not buf.contains(1, 0, 2)
        assert buf.total_added == 1

    def test_drop_stable_returns_count(self, backend):
        buf = OpBuffer(backend=backend)
        for ts in range(1, 6):
            buf.add(ts, 0, ts, ts)
        assert buf.drop_stable(3) == 3  # ts 1, 2, 3
        assert len(buf) == 2
        assert buf.min_ts() == 4

    @given(ops=st.lists(st.tuples(st.integers(0, 100), st.integers(0, 5),
                                  st.integers(0, 10**6)),
                        unique=True, max_size=150),
           stable=st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_pop_stable_is_sorted_prefix(self, backend, ops, stable):
        buf = OpBuffer(backend=backend)
        if backend == "runs":
            # The run buffer's contract is monotone per-origin ingestion
            # (what the stabilizer's PartitionTime dedup guarantees): keep
            # each origin's ops in strictly increasing timestamp order.
            monotone, last = [], {}
            for ts, origin, seq in sorted(ops,
                                          key=lambda e: (e[1], e[0], e[2])):
                if ts > last.get(origin, -1):
                    last[origin] = ts
                    monotone.append((ts, origin, seq))
            ops = monotone
        for ts, origin, seq in ops:
            buf.add(ts, origin, seq, (ts, origin, seq))
        out = buf.pop_stable(stable)
        assert out == sorted(out)
        assert all(op[0] <= stable for op in out)
        assert len(out) + len(buf) == len(ops)


def test_facade_dispatches_backends():
    from repro.datastruct import RunBuffer, TreeOpBuffer

    assert isinstance(OpBuffer(), RunBuffer)             # default strategy
    assert isinstance(OpBuffer(backend="runs"), RunBuffer)
    assert isinstance(OpBuffer(backend="rbtree"), TreeOpBuffer)
    assert isinstance(OpBuffer(backend="avl"), TreeOpBuffer)
    assert isinstance(OpBuffer(tree_factory=AVLTree), TreeOpBuffer)
    with pytest.raises(ValueError, match="unknown buffer backend"):
        OpBuffer(backend="btree")


def test_avl_backing():
    buf = OpBuffer(tree_factory=AVLTree)
    buf.add(2, 0, 1, "b")
    buf.add(1, 0, 0, "a")
    assert buf.pop_stable(5) == ["a", "b"]


@pytest.mark.parametrize("tree_cls", [RedBlackTree, AVLTree])
def test_drop_leq_counts_without_collecting(tree_cls):
    tree = tree_cls()
    for k in range(10):
        tree.insert(k, k)
    assert tree.drop_leq(4) == 5
    assert [k for k, _ in tree.items()] == [5, 6, 7, 8, 9]
    assert tree.drop_leq(4) == 0
    tree.validate()
