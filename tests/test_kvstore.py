"""Tests for the KV substrate: ring, versioned storage, value types."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.vector import vc_lt
from repro.kvstore import (
    METADATA_OVERHEAD_BYTES,
    ConsistentHashRing,
    Update,
    Versioned,
    VersionedStore,
)

vec = st.tuples(*[st.integers(min_value=0, max_value=30)] * 3)


def version(vts, origin=0):
    return Versioned(value=str(vts), ts=vts[origin], origin_dc=origin, vts=vts)


class TestRing:
    def test_deterministic(self):
        a = ConsistentHashRing(8)
        b = ConsistentHashRing(8)
        assert all(a.partition_for(k) == b.partition_for(k)
                   for k in range(1000))

    def test_covers_all_partitions(self):
        ring = ConsistentHashRing(8)
        owners = {ring.partition_for(k) for k in range(5000)}
        assert owners == set(range(8))

    def test_reasonably_balanced(self):
        ring = ConsistentHashRing(8, vnodes_per_partition=64)
        hist = ring.histogram(range(20000))
        assert min(hist) > 0.3 * (20000 / 8)
        assert max(hist) < 2.5 * (20000 / 8)

    def test_single_partition(self):
        ring = ConsistentHashRing(1)
        assert {ring.partition_for(k) for k in range(100)} == {0}

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(0)


class TestVersionedDominance:
    def test_dominates_none(self):
        assert version((1, 0, 0)).dominates(None)

    @given(a=vec, b=vec)
    def test_causal_order_respected(self, a, b):
        """A causally newer version always wins LWW."""
        if vc_lt(a, b):
            assert version(b).dominates(version(a))
            assert not version(a).dominates(version(b))

    @given(a=vec, b=vec)
    def test_total_order_antisymmetric(self, a, b):
        va, vb = version(a, origin=0), version(b, origin=1)
        assert va.dominates(vb) != vb.dominates(va)  # never both/neither

    @given(versions=st.lists(vec, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_arrival_order_does_not_matter(self, versions):
        """Convergence: the LWW winner is a function of the version set."""
        import itertools
        vs = [version(v, origin=i % 3) for i, v in enumerate(versions)]

        def winner(order):
            store = VersionedStore()
            for v in order:
                store.put("k", v)
            got = store.get("k")
            return (got.ts, got.origin_dc, got.value)

        reference = winner(vs)
        for order in itertools.islice(itertools.permutations(vs), 6):
            assert winner(list(order)) == reference


class TestVersionedStore:
    def test_put_get(self):
        store = VersionedStore()
        assert store.get("k") is None
        assert store.put("k", version((1, 0, 0)))
        assert store.get("k").value == "(1, 0, 0)"
        assert "k" in store
        assert len(store) == 1

    def test_losing_put_keeps_current(self):
        store = VersionedStore()
        store.put("k", version((5, 5, 5)))
        assert not store.put("k", version((1, 0, 0)))
        assert store.get("k").vts == (5, 5, 5)
        assert store.puts_superseded == 1

    def test_fingerprint_order_independent(self):
        a, b = VersionedStore(), VersionedStore()
        a.put("x", version((1, 0, 0)))
        a.put("y", version((0, 1, 0)))
        b.put("y", version((0, 1, 0)))
        b.put("x", version((1, 0, 0)))
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_detects_divergence(self):
        a, b = VersionedStore(), VersionedStore()
        a.put("x", version((1, 0, 0)))
        b.put("x", version((2, 0, 0)))
        assert a.fingerprint() != b.fingerprint()

    def test_snapshot(self):
        store = VersionedStore()
        store.put("x", Versioned("v", 7, 1, (0, 7, 0)))
        assert store.snapshot() == {"x": (7, 1, "v")}


class TestUpdateType:
    def make(self, value="v", vts=(5, 0, 0)):
        return Update(key="k", value=value, origin_dc=0, partition_index=2,
                      seq=9, ts=5, vts=vts, value_bytes=100)

    def test_uid_and_order_key(self):
        u = self.make()
        assert u.uid == (0, 2, 9)
        assert u.order_key() == (5, 2, 9)

    def test_size_accounting(self):
        u = self.make()
        assert u.size_bytes == 100 + 8 * 3 + METADATA_OVERHEAD_BYTES
        assert u.metadata_bytes == 8 * 3 + METADATA_OVERHEAD_BYTES
        # metadata-only form is value-size independent (§5)
        big = self.make(value="x" * 10000)
        assert big.metadata_bytes == u.metadata_bytes
