"""Tests for fault-tolerant Eunomia (Algorithm 4) and leader election."""

import pytest

from repro.core import EunomiaConfig, EunomiaReplica
from repro.core.election import OmegaElection
from repro.core.messages import AddOpBatch, ReplicaAlive
from repro.harness.loadgen import PartitionEmulator, RemoteSink
from repro.kvstore.types import Update
from repro.metrics import MetricsHub
from repro.sim import ConstantLatency, Environment, Network, Process


def build_group(env, n_replicas, n_partitions=2,
                alive=0.05, suspect=0.16):
    config = EunomiaConfig(fault_tolerant=True, n_replicas=n_replicas,
                           replica_alive_interval=alive,
                           replica_suspect_timeout=suspect,
                           stabilization_interval=0.01)
    metrics = MetricsHub()
    replicas = [
        EunomiaReplica(env, f"r{i}", 0, n_partitions, config, replica_id=i,
                       metrics=metrics, stable_mark="stable")
        for i in range(n_replicas)
    ]
    for replica in replicas:
        replica.set_peers(replicas)
    sink = RemoteSink(env)
    for replica in replicas:
        replica.add_destination(sink)
        replica.start()
    return config, metrics, replicas, sink


class Feeder(Process):
    def __init__(self, env):
        super().__init__(env, "feeder")

    def on_batch_ack(self, msg, src):
        pass


def make_op(ts, partition=0):
    return Update(key=f"k{ts}", value=None, origin_dc=0,
                  partition_index=partition, seq=ts, ts=ts, vts=(ts,),
                  commit_time=0.0)


def test_initial_leader_is_lowest_id(env, net):
    _, _, replicas, _ = build_group(env, 3)
    env.run(until=0.01)
    assert replicas[0].is_leader()
    assert not replicas[1].is_leader()
    assert not replicas[2].is_leader()


def test_only_leader_propagates(env, net):
    _, _, replicas, sink = build_group(env, 3)
    feeder = Feeder(env)
    for replica in replicas:
        feeder.send(replica, AddOpBatch(0, (make_op(10),)))
        feeder.send(replica, AddOpBatch(1, (make_op(11, 1),)))
    env.run(until=0.1)
    assert sink.received == 1  # one copy, not three


def test_followers_prune_on_stable_announce(env, net):
    _, _, replicas, _ = build_group(env, 2)
    feeder = Feeder(env)
    for replica in replicas:
        feeder.send(replica, AddOpBatch(0, (make_op(10),)))
        feeder.send(replica, AddOpBatch(1, (make_op(11, 1),)))
    env.run(until=0.1)
    # stable = min(10, 11) = 10: the ts=10 op is pruned via StableAnnounce,
    # the ts=11 op legitimately stays buffered (not yet stable).
    assert len(replicas[1].buffer) == 1
    assert replicas[1].stable_time == replicas[0].stable_time == 10


def test_replicas_ack_batches(env, net):
    _, _, replicas, _ = build_group(env, 2)

    acks = []

    class AckSink(Process):
        def on_batch_ack(self, msg, src):
            acks.append((src.name, msg.ack_ts))

    feeder = AckSink(env, "acker")
    feeder.send(replicas[0], AddOpBatch(0, (make_op(10),)))
    feeder.send(replicas[1], AddOpBatch(0, (make_op(10),)))
    env.run(until=0.05)
    assert sorted(acks) == [("r0", 10), ("r1", 10)]


def test_leader_failover_resumes_stabilization(env, net):
    _, _, replicas, sink = build_group(env, 3)
    feeder = Feeder(env)
    for replica in replicas:
        feeder.send(replica, AddOpBatch(0, (make_op(10),)))
        feeder.send(replica, AddOpBatch(1, (make_op(11, 1),)))
    env.run(until=0.05)
    assert sink.received == 1
    replicas[0].crash()
    # new ops reach only the survivors
    for replica in replicas[1:]:
        feeder.send(replica, AddOpBatch(0, (make_op(20),)))
        feeder.send(replica, AddOpBatch(1, (make_op(21, 1),)))
    env.run(until=0.6)  # past the suspicion timeout
    assert replicas[1].is_leader()
    assert sink.received >= 2  # the new op was propagated by the new leader


def test_failover_does_not_lose_unannounced_ops(env, net):
    """Ops the dead leader held but never announced survive on followers."""
    _, _, replicas, sink = build_group(env, 2)
    feeder = Feeder(env)
    # Deliver to BOTH replicas, then crash the leader before its next
    # stabilization tick can announce anything.
    for replica in replicas:
        feeder.send(replica, AddOpBatch(0, (make_op(10),)))
        feeder.send(replica, AddOpBatch(1, (make_op(11, 1),)))
    replicas[0].crash()
    env.run(until=0.6)
    assert sink.received == 1  # follower took over and shipped it


class SilentPeer(Process):
    def on_replica_alive(self, msg, src):
        pass


def test_omega_election_unit(env, net):
    host = Process(env, "host")
    election = OmegaElection(host, replica_id=1, alive_interval=0.05,
                             suspect_timeout=0.12)
    peer = SilentPeer(env, "peer")
    election.set_peers({0: peer})
    # peer 0 trusted at boot -> leader 0
    assert election.leader_id() == 0
    # silence: after the timeout the peer is suspected
    env.loop.schedule(0.2, lambda: None)
    env.run()
    assert election.leader_id() == 1
    # a fresh heartbeat reinstates it
    election.on_alive(ReplicaAlive(0))
    assert election.leader_id() == 0


def test_leadership_change_callback(env, net):
    changes = []
    host = Process(env, "host")
    election = OmegaElection(host, replica_id=1, alive_interval=0.05,
                             suspect_timeout=0.12,
                             on_change=changes.append)
    election.set_peers({0: SilentPeer(env, "peer")})
    election.start()
    env.run(until=0.5)
    assert changes and changes[-1] == 1  # took over after silence


def test_end_to_end_ft_pipeline_with_loss(env):
    """Emulated partitions + lossy links + replicas: nothing is lost."""
    net = Network(env, ConstantLatency(0.0001))
    config = EunomiaConfig(fault_tolerant=True, n_replicas=2,
                           stabilization_interval=0.005,
                           resend_timeout=0.02)
    metrics = MetricsHub()
    replicas = [
        EunomiaReplica(env, f"r{i}", 0, 2, config, replica_id=i,
                       metrics=metrics, stable_mark="stable")
        for i in range(2)
    ]
    for replica in replicas:
        replica.set_peers(replicas)
    sink = RemoteSink(env)
    for replica in replicas:
        replica.add_destination(sink)
        replica.start()
    emulators = [PartitionEmulator(env, f"p{i}", i, config) for i in range(2)]
    for emulator in emulators:
        emulator.set_eunomia(replicas)
        # 20% loss on every partition->replica link
        for replica in replicas:
            net.set_link_loss(emulator, replica, 0.2)
        emulator.start()
    env.run(until=1.0)
    for emulator in emulators:
        emulator.stop()  # stop generating; uplinks keep retransmitting
    env.run(until=2.5)
    generated = sum(e.generated for e in emulators)
    assert generated > 0
    # At-least-once delivery + dedup: every generated op stabilizes exactly
    # once despite 20% loss on every uplink link.
    assert sink.received == generated
    assert all(e.uplink.pending_count() == 0 for e in emulators)
