"""Tests for the partition → Eunomia uplink (batching, acks, heartbeats)."""

import pytest

from repro.clocks import HybridLogicalClock, PhysicalClock
from repro.core import EunomiaConfig
from repro.core.messages import AddOpBatch, BatchAck, PartitionHeartbeat
from repro.core.uplink import EunomiaUplink
from repro.kvstore.types import Update
from repro.sim import ConstantLatency, Environment, Network, Process


class Host(Process):
    """Minimal uplink host (partition stand-in)."""

    def __init__(self, env, config, **kw):
        super().__init__(env, "host", **kw)
        self.batch_interval = config.batch_interval
        self.clock = PhysicalClock(env)
        self.hlc = HybridLogicalClock(self.clock)
        self.uplink = EunomiaUplink(self, 0, config, self.hlc, self.clock,
                                    op_cost=0.0, batch_cost=0.0)

    def on_batch_ack(self, msg, src):
        self.uplink.on_ack(msg, src)


class FakeReplica(Process):
    def __init__(self, env, name, ack=True):
        super().__init__(env, name)
        self.ack_enabled = ack
        self.batches = []
        self.heartbeats = []

    def on_add_op_batch(self, msg, src):
        self.batches.append(msg)
        if self.ack_enabled:
            self.send(src, BatchAck(msg.partition_index, msg.ops[-1].ts))

    def on_partition_heartbeat(self, msg, src):
        self.heartbeats.append(msg)


def make_op(host, key="k"):
    ts = host.hlc.tick()
    return Update(key=key, value=None, origin_dc=0, partition_index=0,
                  seq=ts, ts=ts, vts=(ts,), commit_time=host.now)


@pytest.fixture
def rig(env):
    Network(env, ConstantLatency(0.0001))
    config = EunomiaConfig(fault_tolerant=True, n_replicas=2,
                           resend_timeout=0.05)
    host = Host(env, config)
    replicas = [FakeReplica(env, "r0"), FakeReplica(env, "r1")]
    host.uplink.set_replicas(replicas)
    host.uplink.start()
    return env, host, replicas


def test_batches_ship_to_all_replicas(rig):
    env, host, replicas = rig
    host.uplink.record(make_op(host))
    env.run(until=0.01)
    assert len(replicas[0].batches) == 1
    assert len(replicas[1].batches) == 1


def test_acked_ops_are_pruned(rig):
    env, host, replicas = rig
    for _ in range(5):
        host.uplink.record(make_op(host))
    env.run(until=0.05)
    assert host.uplink.pending_count() == 0
    assert host.uplink.acked_ts(replicas[0]) > 0


def test_unacked_ops_retransmit_after_timeout(rig):
    env, host, replicas = rig
    replicas[1].ack_enabled = False
    host.uplink.record(make_op(host))
    env.run(until=0.2)
    # replica 1 never acks: the op is retransmitted on RTO, kept pending
    assert host.uplink.retransmissions >= 1
    assert host.uplink.pending_count() == 1
    assert len(replicas[1].batches) >= 2


def test_no_retransmissions_when_acks_flow(rig):
    env, host, replicas = rig
    for _ in range(20):
        host.uplink.record(make_op(host))
    env.run(until=0.3)
    assert host.uplink.retransmissions == 0


def test_lost_batches_recovered_by_retransmission(env):
    net = Network(env, ConstantLatency(0.0001))
    config = EunomiaConfig(fault_tolerant=True, n_replicas=1,
                           resend_timeout=0.02)
    host = Host(env, config)
    replica = FakeReplica(env, "r0")
    host.uplink.set_replicas([replica])
    host.uplink.start()
    # First transmission window is lost entirely.
    net.set_link_loss(host, replica, 1.0)
    host.uplink.record(make_op(host))
    env.run(until=0.01)
    net.set_link_loss(host, replica, 0.0)
    env.run(until=0.1)
    assert len(replica.batches) >= 1          # recovered
    assert host.uplink.pending_count() == 0   # and acked


def test_batch_respects_max_batch_ops(env):
    Network(env, ConstantLatency(0.0001))
    config = EunomiaConfig(fault_tolerant=True, n_replicas=1,
                           max_batch_ops=3)
    host = Host(env, config)
    replica = FakeReplica(env, "r0", ack=False)
    host.uplink.set_replicas([replica])
    host.uplink.start()
    for _ in range(10):
        host.uplink.record(make_op(host))
    env.run(until=0.0015)
    assert len(replica.batches[0].ops) == 3


def test_heartbeats_fire_when_idle(rig):
    env, host, replicas = rig
    env.run(until=0.05)  # no ops at all
    assert replicas[0].heartbeats
    assert replicas[1].heartbeats
    ts_seq = [hb.ts for hb in replicas[0].heartbeats]
    assert ts_seq == sorted(ts_seq)


def test_heartbeat_timestamps_below_future_updates(rig):
    env, host, replicas = rig
    env.run(until=0.01)  # a few heartbeats first
    last_hb = replicas[0].heartbeats[-1].ts
    op = make_op(host)
    assert op.ts > last_hb


def test_heartbeats_pause_while_ops_outstanding(env):
    Network(env, ConstantLatency(0.0001))
    config = EunomiaConfig(fault_tolerant=True, n_replicas=1)
    host = Host(env, config)
    replica = FakeReplica(env, "r0", ack=False)  # never acks
    host.uplink.set_replicas([replica])
    host.uplink.start()
    host.uplink.record(make_op(host))
    env.run(until=0.05)
    assert replica.heartbeats == []  # outstanding op blocks heartbeats


def test_non_ft_mode_ships_once_and_clears(env):
    Network(env, ConstantLatency(0.0001))
    config = EunomiaConfig()  # fault_tolerant=False
    host = Host(env, config)
    replica = FakeReplica(env, "r0", ack=False)
    host.uplink.set_replicas([replica])
    host.uplink.start()
    host.uplink.record(make_op(host))
    env.run(until=0.05)
    assert len(replica.batches) == 1
    assert host.uplink.pending_count() == 0


def test_non_monotone_record_rejected(env):
    Network(env, ConstantLatency(0.0001))
    config = EunomiaConfig()
    host = Host(env, config)
    op = make_op(host)
    host.uplink.record(op)
    stale = Update(key="k", value=None, origin_dc=0, partition_index=0,
                   seq=op.seq + 1, ts=op.ts, vts=(op.ts,), commit_time=0.0)
    with pytest.raises(ValueError):
        host.uplink.record(stale)


def test_straggler_interval_respected(env):
    """Mutating host.batch_interval (Fig. 7) slows the shipping cadence."""
    Network(env, ConstantLatency(0.0001))
    config = EunomiaConfig()
    host = Host(env, config)
    replica = FakeReplica(env, "r0", ack=False)
    host.uplink.set_replicas([replica])
    host.batch_interval = 0.05  # straggle before the first tick is armed
    host.uplink.start()
    for _ in range(3):
        host.uplink.record(make_op(host))
    env.run(until=0.04)
    assert replica.batches == []  # nothing shipped before the long tick
    env.run(until=0.11)
    assert len(replica.batches) == 1
