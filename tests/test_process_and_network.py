"""Tests for the process service-queue model and the network."""

from dataclasses import dataclass

import pytest

from repro.sim import ConstantLatency, Environment, Network, RttMatrix
from repro.sim.process import CostModel, Process


@dataclass
class Ping:
    payload: int = 0
    size_bytes: int = 10


@dataclass
class Pong:
    payload: int = 0


class Echo(Process):
    def __init__(self, env, name, **kw):
        super().__init__(env, name, **kw)
        self.seen = []

    def on_ping(self, msg, src):
        self.seen.append((self.now, msg.payload))
        self.send(src, Pong(msg.payload))


class Caller(Process):
    def __init__(self, env, name, **kw):
        super().__init__(env, name, **kw)
        self.replies = []

    def on_pong(self, msg, src):
        self.replies.append((self.now, msg.payload))


@pytest.fixture
def pair(env):
    Network(env, ConstantLatency(0.001))
    return Echo(env, "echo"), Caller(env, "caller")


def test_message_roundtrip(env, pair):
    echo, caller = pair
    caller.send(echo, Ping(7))
    env.run()
    assert echo.seen == [(0.001, 7)]
    assert caller.replies == [(0.002, 7)]


def test_service_cost_delays_handling(env):
    Network(env, ConstantLatency(0.001))
    echo = Echo(env, "echo", cost_model=CostModel(costs={"Ping": 0.5}))
    caller = Caller(env, "caller")
    caller.send(echo, Ping(1))
    env.run()
    assert echo.seen[0][0] == pytest.approx(0.501)


def test_service_queue_serializes_work(env):
    Network(env, ConstantLatency(0.001))
    echo = Echo(env, "echo", cost_model=CostModel(costs={"Ping": 0.1}))
    caller = Caller(env, "caller")
    for i in range(3):
        caller.send(echo, Ping(i))
    env.run()
    times = [t for t, _ in echo.seen]
    # back-to-back service slots: 0.101, 0.201, 0.301
    assert times == pytest.approx([0.101, 0.201, 0.301])


def test_lanes_are_independent_servers(env):
    Network(env, ConstantLatency(0.001))

    class TwoLane(Echo):
        def lane_of(self, msg):
            return "replication" if msg.payload % 2 else "cpu"

    echo = TwoLane(env, "echo", cost_model=CostModel(costs={"Ping": 0.1}))
    caller = Caller(env, "caller")
    caller.send(echo, Ping(0))  # cpu lane
    caller.send(echo, Ping(1))  # replication lane
    env.run()
    times = sorted(t for t, _ in echo.seen)
    # both served in parallel, not 0.101 then 0.201
    assert times == pytest.approx([0.101, 0.101])


def test_cost_model_callable_and_per_byte():
    model = CostModel(default=1.0,
                      costs={"Ping": lambda msg: msg.payload * 0.5},
                      per_byte=0.01)
    assert model.cost_of(Ping(4)) == pytest.approx(4 * 0.5 + 10 * 0.01)
    assert model.cost_of(Pong()) == pytest.approx(1.0)  # no size_bytes


def test_unknown_message_raises(env, pair):
    echo, caller = pair
    echo.send(caller, Ping(1))  # Caller has no on_ping
    with pytest.raises(NotImplementedError):
        env.run()


def test_crash_drops_deliveries_and_timers(env, pair):
    echo, caller = pair
    echo.crash()
    caller.send(echo, Ping(1))
    fired = []
    caller.after(0.5, fired.append, "ok")
    env.run()
    assert echo.seen == []
    assert fired == ["ok"]


def test_crash_drops_inflight_service(env):
    Network(env, ConstantLatency(0.001))
    echo = Echo(env, "echo", cost_model=CostModel(costs={"Ping": 1.0}))
    caller = Caller(env, "caller")
    caller.send(echo, Ping(1))
    env.loop.schedule(0.5, echo.crash)  # mid-service
    env.run()
    assert echo.seen == []


def test_recover_accepts_new_work(env, pair):
    echo, caller = pair
    echo.crash()
    caller.send(echo, Ping(1))
    env.loop.schedule(0.01, echo.recover)
    env.loop.schedule(0.02, lambda: caller.send(echo, Ping(2)))
    env.run()
    assert [p for _, p in echo.seen] == [2]


def test_periodic_task_fires_and_stops(env):
    proc = Process(env, "p")
    count = []
    task = proc.periodic(0.1, lambda: count.append(proc.now))
    env.loop.run(until=0.55)
    task.stop()
    env.loop.run(until=2.0)
    assert len(count) == 5


def test_periodic_with_cost_consumes_service_time(env):
    proc = Process(env, "p")
    times = []
    proc.periodic(0.1, lambda: times.append(proc.now), cost=0.05)
    env.loop.run(until=0.36)
    # each firing runs 0.05s after its tick
    assert times == pytest.approx([0.15, 0.25, 0.35])


def test_network_fifo_per_link(env):
    # Jittery latencies must not reorder messages on one link.
    class Jitter(ConstantLatency):
        def __init__(self):
            self.calls = 0

        def delay(self, src, dst, rng):
            self.calls += 1
            return 0.010 if self.calls % 2 else 0.001

    Network(env, Jitter())
    echo = Echo(env, "echo")
    caller = Caller(env, "caller")
    for i in range(6):
        caller.send(echo, Ping(i))
    env.run()
    assert [p for _, p in echo.seen] == list(range(6))


def test_network_loss(env):
    net = Network(env, ConstantLatency(0.001), loss_rate=1.0)
    echo = Echo(env, "echo")
    caller = Caller(env, "caller")
    caller.send(echo, Ping(1))
    env.run()
    assert echo.seen == []
    assert net.messages_dropped == 1


def test_link_loss_is_directional(env):
    net = Network(env, ConstantLatency(0.001))
    echo = Echo(env, "echo")
    caller = Caller(env, "caller")
    net.set_link_loss(caller, echo, 1.0)
    caller.send(echo, Ping(1))
    env.run()
    assert echo.seen == []
    net.set_link_loss(caller, echo, 0.0)
    caller.send(echo, Ping(2))
    env.run()
    assert [p for _, p in echo.seen] == [2]


def test_disconnect_and_reconnect(env):
    net = Network(env, ConstantLatency(0.001))
    echo = Echo(env, "echo")
    caller = Caller(env, "caller")
    net.disconnect(caller, echo)
    caller.send(echo, Ping(1))
    env.run()
    assert echo.seen == []
    net.reconnect(caller, echo)
    caller.send(echo, Ping(2))
    env.run()
    assert [p for _, p in echo.seen] == [2]


def test_link_extra_delay(env):
    net = Network(env, ConstantLatency(0.001))
    echo = Echo(env, "echo")
    caller = Caller(env, "caller")
    net.set_link_extra_delay(caller, echo, 0.5)
    caller.send(echo, Ping(1))
    env.run()
    assert echo.seen[0][0] == pytest.approx(0.501)
    net.set_link_extra_delay(caller, echo, 0.0)


def test_rtt_matrix_one_way_delays():
    rtt = RttMatrix([[0, 80], [80, 0]], intra_us=100, jitter_frac=0.0)
    assert rtt.one_way_s(0, 1) == pytest.approx(0.040)
    assert rtt.one_way_s(0, 0) == pytest.approx(0.0001)


def test_rtt_matrix_rejects_non_square():
    with pytest.raises(ValueError):
        RttMatrix([[0, 1, 2], [1, 0, 2]])


def test_bytes_accounting(env):
    net = Network(env, ConstantLatency(0.001))
    echo = Echo(env, "echo")
    caller = Caller(env, "caller")
    caller.send(echo, Ping(1))
    env.run()
    assert net.bytes_sent == 10  # Ping.size_bytes; Pong has none
