"""Tests for the geo receiver (Algorithm 5)."""

import pytest

from repro.core.messages import ApplyRemote, ApplyRemoteOk, RemoteStableBatch
from repro.geo.receiver import Receiver
from repro.kvstore.ring import ConsistentHashRing
from repro.kvstore.types import Update
from repro.metrics import MetricsHub
from repro.sim import ConstantLatency, Environment, Network, Process


class RecordingPartition(Process):
    """Applies instantly and acks, recording the order."""

    def __init__(self, env, name, log):
        super().__init__(env, name)
        self.log = log

    def on_apply_remote(self, msg, src):
        self.log.append(msg.update.uid)
        self.send(src, ApplyRemoteOk(msg.update.uid))


def make_update(dc, ts, vts, seq=None, partition=0, key="k"):
    return Update(key=key, value="v", origin_dc=dc, partition_index=partition,
                  seq=seq if seq is not None else ts, ts=ts, vts=vts,
                  commit_time=0.0)


@pytest.fixture
def rig(env, metrics):
    Network(env, ConstantLatency(0.0001))
    receiver = Receiver(env, "recv", dc_id=0, n_dcs=3, check_interval=0.001,
                        metrics=metrics)
    log = []
    partitions = [RecordingPartition(env, f"p{i}", log) for i in range(2)]
    receiver.set_partitions(ConsistentHashRing(2), partitions)
    receiver.start()
    sender = Process(env, "eunomia-remote")
    return env, receiver, sender, log


def test_applies_in_origin_order(rig):
    env, receiver, sender, log = rig
    ops = tuple(make_update(1, ts, (0, ts, 0), key=f"k{ts}")
                for ts in (10, 20, 30))
    sender.send(receiver, RemoteStableBatch(1, ops))
    env.run(until=0.1)
    assert log == [op.uid for op in ops]
    assert receiver.site_time[1] == 30
    assert receiver.applied == 3


def test_cross_origin_dependency_gates_apply(rig):
    env, receiver, sender, log = rig
    # An update from dc1 that depends on dc2's ts 50.
    dependent = make_update(1, 10, (0, 10, 50))
    sender.send(receiver, RemoteStableBatch(1, (dependent,)))
    env.run(until=0.05)
    assert log == []  # blocked: SiteTime[2] < 50
    provider = make_update(2, 50, (0, 0, 50))
    sender.send(receiver, RemoteStableBatch(2, (provider,)))
    env.run(until=0.1)
    assert log == [provider.uid, dependent.uid]


def test_dependency_on_local_dc_entry_is_ignored(rig):
    env, receiver, sender, log = rig
    # vts[0] (the local DC) is non-zero: locally visible by construction.
    update = make_update(1, 10, (999, 10, 0))
    sender.send(receiver, RemoteStableBatch(1, (update,)))
    env.run(until=0.05)
    assert log == [update.uid]


def test_duplicates_are_dropped(rig):
    env, receiver, sender, log = rig
    op = make_update(1, 10, (0, 10, 0))
    sender.send(receiver, RemoteStableBatch(1, (op,)))
    sender.send(receiver, RemoteStableBatch(1, (op,)))  # failover re-ship
    env.run(until=0.1)
    assert log == [op.uid]
    assert receiver.duplicates_dropped == 1


def test_timestamp_ties_across_partitions_both_apply(rig):
    env, receiver, sender, log = rig
    a = make_update(1, 10, (0, 10, 0), seq=1, partition=0)
    b = make_update(1, 10, (0, 10, 0), seq=1, partition=1)
    sender.send(receiver, RemoteStableBatch(1, (a, b)))
    env.run(until=0.1)
    assert log == [a.uid, b.uid]
    assert receiver.site_time[1] == 10


def test_site_time_held_back_until_tie_fully_applied(rig):
    env, receiver, sender, log = rig
    a = make_update(1, 10, (0, 10, 0), seq=1, partition=0)
    b = make_update(1, 10, (0, 10, 0), seq=1, partition=1)
    sender.send(receiver, RemoteStableBatch(1, (a, b)))

    observed = []

    def spy():
        observed.append((len(log), receiver.site_time[1]))

    env.loop.schedule(0.0002, spy)  # between the two applies (RTT ~0.2ms)
    env.run(until=0.1)
    # whenever only one tied op had been applied, SiteTime must be < 10
    for applied, site in observed:
        if applied == 1:
            assert site == 9


def test_origins_progress_independently(rig):
    env, receiver, sender, log = rig
    blocked = make_update(1, 10, (0, 10, 99))  # waits on dc2 ts 99
    free = make_update(2, 5, (0, 0, 5))
    sender.send(receiver, RemoteStableBatch(1, (blocked,)))
    sender.send(receiver, RemoteStableBatch(2, (free,)))
    env.run(until=0.05)
    assert free.uid in log          # dc2's stream is not head-blocked
    assert blocked.uid not in log
    assert receiver.backlog() == 1


def test_unexpected_ack_raises(rig):
    env, receiver, sender, log = rig
    sender.send(receiver, ApplyRemoteOk((1, 0, 77)))
    with pytest.raises(RuntimeError):
        env.run(until=0.01)
