"""Equivalence guard for the single-spine deployment refactor.

``tests/golden/baseline_goldens.json`` was captured against the
*pre-refactor* builders (every baseline over its own
``baselines/common.py`` frame) immediately before the ``ProtocolSpec``
spine landed.  These tests prove the refactor is observationally
invisible: every protocol, rebuilt as a plugin over
``core/protocols.py`` + ``geo/``, reproduces its golden digest
bit-for-bit — final stores, the full ordered remote-visibility timeline,
and operation counts.

The goldens pin two fixed seeds; the hypothesis property extends the
guarantee across arbitrary seeds by asserting that every assembly route
into the spine (the legacy ``build_*_system`` wrappers, the
``build_system`` dispatcher, and ``build_geo_system`` itself) produces
identical runs — there is only one deployment path left to disagree
with itself.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    build_cure_system,
    build_gentlerain_system,
    build_seq_system,
    build_system,
)
from repro.geo.system import GeoSystemSpec, build_geo_system
from repro.harness.goldens import (
    GOLDEN_SPEC,
    GOLDEN_WORKLOAD,
    capture_golden,
    run_fingerprint,
)
from repro.workload import WorkloadSpec

GOLDENS = json.loads(
    (Path(__file__).parent / "golden" / "baseline_goldens.json").read_text())

#: digest fields that must match the pre-refactor capture exactly
STRICT_FIELDS = ("fingerprints", "snapshot_sha", "stable_sha",
                 "vis_sorted_sha", "ops", "converged")


def golden_id(golden):
    return f"{golden['protocol']}-seed{golden['seed']}"


@pytest.mark.parametrize("golden", GOLDENS, ids=golden_id)
def test_spine_reproduces_pre_refactor_golden(golden):
    kwargs = {}
    if golden["protocol"] == "cure":
        # The golden predates the run-aware pending set; pin its backend
        # to the classic scan the capture ran with.  The "runs" default is
        # pinned transitively by test_cure_pending_backends_equivalent.
        kwargs["pending_backend"] = "scan"
    fresh = capture_golden(golden["protocol"], golden["seed"], **kwargs)
    for field in STRICT_FIELDS:
        assert fresh[field] == golden[field], (
            f"{golden_id(golden)}: {field} drifted across the refactor")


@pytest.mark.parametrize("protocol,seed", [("eunomia", 1234),
                                           ("gentlerain", 77)])
def test_time_wheel_reproduces_goldens(protocol, seed):
    """The slotted time-wheel is a drop-in scheduler backend.

    Both backends fire events in identical (time, seq) order, so a whole
    protocol run under ``scheduler="wheel"`` must reproduce the heap-backed
    golden digest bit-for-bit — one Eunomia and one GST-style capture pin
    the claim end to end (the exhaustive ordering property lives in
    ``tests/test_sim_batching.py``).
    """
    golden = next(g for g in GOLDENS
                  if g["protocol"] == protocol and g["seed"] == seed)
    fresh = capture_golden(protocol, seed, scheduler="wheel")
    for field in STRICT_FIELDS:
        assert fresh[field] == golden[field], (
            f"{golden_id(golden)}: {field} drifted under the time wheel")


def test_cure_pending_backends_equivalent():
    """The run-aware pending set is a pure data-structure swap.

    Installs within one release round may reorder (LWW makes the store
    invariant), so the comparison uses the order-independent visibility
    digest alongside stores and op counts.
    """
    runs = capture_golden("cure", GOLDENS[0]["seed"], pending_backend="runs")
    scan = capture_golden("cure", GOLDENS[0]["seed"], pending_backend="scan")
    for field in ("fingerprints", "snapshot_sha", "vis_sorted_sha", "ops",
                  "converged"):
        assert runs[field] == scan[field], f"{field} differs across backends"


def test_cure_rejects_unknown_pending_backend():
    spec = GeoSystemSpec(seed=1, **GOLDEN_SPEC)
    with pytest.raises(ValueError):
        build_cure_system(spec, WorkloadSpec(**GOLDEN_WORKLOAD),
                          pending_backend="heap")


def test_unknown_options_rejected_up_front():
    """A typo'd tunable — or one meant for another protocol — must fail
    loudly instead of silently running the experiment without it."""
    spec = GeoSystemSpec(seed=1, **GOLDEN_SPEC)
    wl = WorkloadSpec(**GOLDEN_WORKLOAD)
    with pytest.raises(TypeError, match="timngs"):
        build_system("eunomia", spec, wl, timngs=123)
    with pytest.raises(TypeError, match="pending_backend"):
        build_system("eventual", spec, wl, pending_backend="runs")
    with pytest.raises(TypeError, match="chain_length"):
        build_system("gentlerain", spec, wl, chain_length=3)


_ROUTES = {
    "sseq": (lambda spec, wl: build_seq_system(spec, wl, synchronous=True),
             lambda spec, wl: build_system("sseq", spec, wl),
             lambda spec, wl: build_geo_system("sseq", spec, wl)),
    "gentlerain": (build_gentlerain_system,
                   lambda spec, wl: build_system("gentlerain", spec, wl),
                   lambda spec, wl: build_geo_system("gentlerain", spec, wl)),
    "cure": (build_cure_system,
             lambda spec, wl: build_system("cure", spec, wl),
             lambda spec, wl: build_geo_system("cure", spec, wl)),
}


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       protocol=st.sampled_from(sorted(_ROUTES)))
def test_assembly_routes_agree(seed, protocol):
    """Sequencer/GentleRain/Cure runs are identical no matter which
    assembly entry point built them — the refactor left one spine."""
    spec = GeoSystemSpec(seed=seed, **GOLDEN_SPEC)
    digests = []
    for route in _ROUTES[protocol]:
        system = route(spec, WorkloadSpec(**GOLDEN_WORKLOAD))
        system.run(0.8)
        system.quiesce(1.0)
        digests.append(run_fingerprint(system))
    assert digests[0] == digests[1] == digests[2]
