"""Tests for the §5 propagation tree (relays coalescing uplink traffic)."""

import pytest

from repro.checker import CausalChecker, SessionHistory
from repro.core import EunomiaConfig, EunomiaService, TreeRelay
from repro.core.messages import AddOpBatch, PartitionHeartbeat
from repro.core.tree import CombinedBatch
from repro.geo.system import GeoSystemSpec, build_eunomia_system
from repro.harness.loadgen import build_eunomia_rig
from repro.kvstore.types import Update
from repro.metrics import MetricsHub
from repro.sim import ConstantLatency, Environment, Network, Process
from repro.workload import WorkloadSpec


def make_op(ts, partition=0):
    return Update(key=f"k{ts}", value=None, origin_dc=0,
                  partition_index=partition, seq=ts, ts=ts, vts=(ts,),
                  commit_time=0.0)


class Upstream(Process):
    def __init__(self, env):
        super().__init__(env, "up", site=0)
        self.combined = []

    def on_combined_batch(self, msg, src):
        self.combined.append(msg)


@pytest.fixture
def relay_rig(env, net):
    relay = TreeRelay(env, "relay", 0, flush_interval=0.002)
    upstream = Upstream(env)
    relay.set_upstream([upstream])
    relay.start()
    feeder = Process(env, "feeder")
    return env, relay, upstream, feeder


class TestRelayUnit:
    def test_coalesces_window_into_one_message(self, relay_rig):
        env, relay, upstream, feeder = relay_rig
        feeder.send(relay, AddOpBatch(0, (make_op(1),)))
        feeder.send(relay, AddOpBatch(1, (make_op(2, 1),)))
        feeder.send(relay, PartitionHeartbeat(2, 99))
        env.run(until=0.01)
        assert len(upstream.combined) == 1
        combined = upstream.combined[0]
        assert combined.op_count() == 2
        assert len(combined.heartbeats) == 1
        assert relay.compression_ratio() == pytest.approx(3.0)

    def test_keeps_only_latest_heartbeat_per_partition(self, relay_rig):
        env, relay, upstream, feeder = relay_rig
        feeder.send(relay, PartitionHeartbeat(0, 10))
        feeder.send(relay, PartitionHeartbeat(0, 20))
        env.run(until=0.01)
        beats = upstream.combined[0].heartbeats
        assert len(beats) == 1
        assert beats[0].ts == 20

    def test_empty_windows_send_nothing(self, relay_rig):
        env, relay, upstream, feeder = relay_rig
        env.run(until=0.05)
        assert upstream.combined == []
        assert relay.compression_ratio() == 0.0

    def test_batch_order_preserved_within_partition(self, relay_rig):
        env, relay, upstream, feeder = relay_rig
        feeder.send(relay, AddOpBatch(0, (make_op(1),)))
        feeder.send(relay, AddOpBatch(0, (make_op(2),)))
        env.run(until=0.01)
        batches = upstream.combined[0].batches
        assert [b.ops[0].ts for b in batches] == [1, 2]


class TestServiceIntegration:
    def test_service_unpacks_combined_batches(self, env, net, metrics):
        config = EunomiaConfig(stabilization_interval=0.005)
        service = EunomiaService(env, "e", 0, 3, config, metrics=metrics)
        feeder = Process(env, "feeder")
        combined = CombinedBatch(
            batches=(AddOpBatch(0, (make_op(10),)),
                     AddOpBatch(1, (make_op(12, 1),))),
            heartbeats=(PartitionHeartbeat(2, 11),),
        )
        feeder.send(service, combined)
        env.run(until=0.01)
        assert service.partition_time == [10, 12, 11]
        assert len(service.buffer) == 2

    def test_combined_cost_counts_one_message_overhead(self, env, net):
        service = EunomiaService(Environment(seed=1), "e", 0, 2,
                                 EunomiaConfig(), insert_op_cost=1.0,
                                 batch_cost=10.0)
        combined = CombinedBatch(
            batches=(AddOpBatch(0, (make_op(1), make_op(2))),
                     AddOpBatch(1, (make_op(3, 1),))),
            heartbeats=(),
        )
        # one 10.0 overhead + 3 inserts, NOT 2x10 + 3
        assert service._combined_cost_of(combined) == pytest.approx(13.0)


class TestTreeDeployment:
    def test_tree_config_validation(self):
        with pytest.raises(ValueError):
            EunomiaConfig(use_propagation_tree=True,
                          fault_tolerant=True, n_replicas=2).validate()
        with pytest.raises(ValueError):
            EunomiaConfig(use_propagation_tree=True, tree_fanout=0).validate()

    def test_geo_system_with_tree_is_causal_and_converges(self):
        config = EunomiaConfig(use_propagation_tree=True, tree_fanout=2)
        history = SessionHistory()
        system = build_eunomia_system(
            GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=3,
                          seed=5),
            WorkloadSpec(read_ratio=0.8, n_keys=60),
            config=config, history=history)
        system.run(3.0)
        system.quiesce(3.0)
        assert system.converged()
        assert CausalChecker(history).check() == []
        assert len(system.datacenters[0].relays) == 2

    def test_tree_reduces_messages_at_eunomia(self):
        """The point of §5: fewer messages into the service."""
        def messages_into_eunomia(use_tree):
            config = EunomiaConfig(use_propagation_tree=use_tree,
                                   tree_fanout=8)
            rig = build_eunomia_rig(16, config=config, seed=3)
            rig.run(1.0)
            service = rig.service_processes[0]
            # relays emit CombinedBatch; partitions emit AddOpBatch + HBs
            return rig.sink.received, service

        flat_ops, _ = messages_into_eunomia(False)
        tree_ops, _ = messages_into_eunomia(True)
        # same work gets through either way
        assert tree_ops == pytest.approx(flat_ops, rel=0.05)

    def test_relay_compression_at_load(self):
        config = EunomiaConfig(use_propagation_tree=True, tree_fanout=8)
        rig = build_eunomia_rig(16, config=config, seed=3)
        rig.run(1.0)
        relays = [p for p in rig.service_processes
                  if isinstance(p, TreeRelay)]
        assert relays
        for relay in relays:
            assert relay.compression_ratio() > 2.0
