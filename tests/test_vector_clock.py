"""Property-based tests for the vector clock algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.clocks import (
    VectorClock,
    vc_bump,
    vc_concurrent,
    vc_leq,
    vc_lt,
    vc_merge,
    vc_zero,
)

vec3 = st.tuples(*[st.integers(min_value=0, max_value=50)] * 3)


def test_zero_is_bottom():
    z = vc_zero(3)
    assert z == (0, 0, 0)
    assert vc_leq(z, (1, 2, 3))


@given(a=vec3, b=vec3)
def test_merge_is_least_upper_bound(a, b):
    m = vc_merge(a, b)
    assert vc_leq(a, m) and vc_leq(b, m)
    # least: any other upper bound dominates m
    assert all(m[i] == max(a[i], b[i]) for i in range(3))


@given(a=vec3, b=vec3)
def test_merge_commutative(a, b):
    assert vc_merge(a, b) == vc_merge(b, a)


@given(a=vec3, b=vec3, c=vec3)
def test_merge_associative(a, b, c):
    assert vc_merge(vc_merge(a, b), c) == vc_merge(a, vc_merge(b, c))


@given(a=vec3)
def test_leq_reflexive(a):
    assert vc_leq(a, a)
    assert not vc_lt(a, a)


@given(a=vec3, b=vec3, c=vec3)
def test_leq_transitive(a, b, c):
    if vc_leq(a, b) and vc_leq(b, c):
        assert vc_leq(a, c)


@given(a=vec3, b=vec3)
def test_order_trichotomy(a, b):
    """Exactly one of: a<b, b<a, a==b, concurrent."""
    relations = [vc_lt(a, b), vc_lt(b, a), a == b, vc_concurrent(a, b)]
    assert sum(relations) == 1


@given(a=vec3)
def test_bump_strictly_dominates(a):
    bumped = vc_bump(a, 1, a[1] + 1)
    assert vc_lt(a, bumped)


@given(a=vec3, b=vec3)
def test_causal_order_implies_sum_order(a, b):
    """The convergent-LWW foundation: vc_lt ⇒ strictly smaller entry sum."""
    if vc_lt(a, b):
        assert sum(a) < sum(b)


class TestVectorClockWrapper:
    def test_algebra_matches_free_functions(self):
        a = VectorClock((1, 2, 3))
        b = VectorClock((2, 2, 2))
        assert a.merge(b) == VectorClock((2, 2, 3))
        assert a.concurrent_with(b)
        assert not (a <= b)
        assert a.bump(0, 5)[0] == 5
        assert len(a) == 3

    def test_zero_and_ordering(self):
        z = VectorClock.zero(2)
        one = VectorClock((1, 1))
        assert z < one
        assert z <= one
        assert hash(z) == hash(VectorClock.zero(2))

    def test_repr_roundtrip_info(self):
        assert "1, 2" in repr(VectorClock((1, 2)))
