"""Tests for the Environment bundle and seeded RNG streams."""

import pytest

from repro.sim import Environment
from repro.sim.rng import RngRegistry


class TestEnvironment:
    def test_now_tracks_loop(self, env):
        assert env.now == 0.0
        env.loop.schedule(1.25, lambda: None)
        env.run()
        assert env.now == 1.25

    def test_now_us_rounds(self, env):
        env.loop.schedule(0.0000015, lambda: None)
        env.run()
        assert env.now_us() == 2  # 1.5 µs rounds to 2

    def test_pids_unique_and_sequential(self, env):
        assert [env.allocate_pid() for _ in range(3)] == [0, 1, 2]

    def test_run_until(self, env):
        fired = []
        env.loop.schedule(5.0, fired.append, 1)
        env.run(until=1.0)
        assert fired == []
        env.run()
        assert fired == [1]


class TestRngRegistry:
    def test_same_seed_same_streams(self):
        a = RngRegistry(seed=42).stream("workload")
        b = RngRegistry(seed=42).stream("workload")
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("workload")
        b = RngRegistry(seed=2).stream("workload")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        reg = RngRegistry(seed=1)
        first = [reg.stream("a").random() for _ in range(10)]
        # Interleaving draws from another stream must not perturb "a".
        reg2 = RngRegistry(seed=1)
        second = []
        for _ in range(10):
            reg2.stream("b").random()
            second.append(reg2.stream("a").random())
        assert first == second

    def test_stream_identity_cached(self):
        reg = RngRegistry(seed=1)
        assert reg.stream("x") is reg.stream("x")

    def test_fork_derives_independent_registry(self):
        reg = RngRegistry(seed=1)
        fork_a = reg.fork("dc0").stream("net")
        fork_b = reg.fork("dc1").stream("net")
        assert [fork_a.random() for _ in range(5)] != \
               [fork_b.random() for _ in range(5)]

    def test_fork_deterministic(self):
        a = RngRegistry(seed=9).fork("x").stream("s").random()
        b = RngRegistry(seed=9).fork("x").stream("s").random()
        assert a == b
