"""Tests for physical, hybrid, Lamport, and NTP clock models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks import (
    HybridLogicalClock,
    LamportClock,
    NtpSynchronizer,
    PhysicalClock,
)
from repro.sim import Environment


def advance(env, seconds):
    # Bounded run: self-rescheduling components (NTP) never drain the loop.
    env.loop.run(until=env.loop.now + seconds)


class TestPhysicalClock:
    def test_zero_drift_tracks_true_time(self, env):
        clock = PhysicalClock(env)
        advance(env, 1.0)
        assert clock.read_us() == 1_000_000

    def test_drift_scales_readings(self, env):
        clock = PhysicalClock(env, drift_ppm=100.0)
        advance(env, 1.0)
        assert clock.read_us() == pytest.approx(1_000_100, abs=2)

    def test_offset_shifts_readings(self, env):
        clock = PhysicalClock(env, offset_us=500.0)
        assert clock.read_us() == 500

    def test_readings_are_monotone_even_after_backward_ntp_step(self, env):
        clock = PhysicalClock(env, offset_us=1000.0)
        advance(env, 1.0)
        before = clock.read_us()
        clock.ntp_correct(-50.0)  # steps the clock backwards
        assert clock.read_us() >= before

    def test_skew_us_reports_error(self, env):
        clock = PhysicalClock(env, drift_ppm=50.0, offset_us=10.0)
        advance(env, 2.0)
        assert clock.skew_us() == pytest.approx(2.0 * 50 + 10)

    def test_random_clock_within_bounds(self, env):
        rng = env.rng.stream("t")
        for _ in range(20):
            clock = PhysicalClock.random(env, rng, max_drift_ppm=50,
                                         max_offset_us=500)
            assert abs(clock.drift_ppm) <= 50
            assert abs(clock.offset_us) <= 500


class TestNtp:
    def test_sync_bounds_skew(self, env):
        ntp = NtpSynchronizer(env, interval=1.0, residual_us=50.0)
        rng = env.rng.stream("clocks")
        for _ in range(5):
            ntp.manage(PhysicalClock.random(env, rng, max_drift_ppm=100,
                                            max_offset_us=5000))
        advance(env, 1.001)  # just past one sync round
        assert ntp.max_skew_us() <= 2 * 50.0 + 1.0

    def test_offset_regrows_with_drift_between_syncs(self, env):
        ntp = NtpSynchronizer(env, interval=1.0, residual_us=0.0)
        clock = PhysicalClock(env, drift_ppm=100.0, offset_us=0.0)
        ntp.manage(clock)
        advance(env, 1.001)
        skew_after_sync = abs(clock.skew_us())
        advance(env, 0.9)  # drift accumulates again
        assert abs(clock.skew_us()) > skew_after_sync


class TestHybridClock:
    def test_tick_monotonic(self, env):
        hlc = HybridLogicalClock(PhysicalClock(env))
        values = [hlc.tick() for _ in range(100)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_update_exceeds_dependency(self, env):
        hlc = HybridLogicalClock(PhysicalClock(env))
        future_dep = 10_000_000  # far beyond the physical clock
        assert hlc.update(future_dep) == future_dep + 1

    def test_physical_time_dominates_when_ahead(self, env):
        clock = PhysicalClock(env)
        hlc = HybridLogicalClock(clock)
        hlc.update(5)
        advance(env, 1.0)
        assert hlc.tick() == clock.read_us()

    def test_observe_lifts_future_ticks(self, env):
        hlc = HybridLogicalClock(PhysicalClock(env))
        hlc.observe(999_999)
        assert hlc.tick() == 1_000_000

    def test_logical_lead(self, env):
        hlc = HybridLogicalClock(PhysicalClock(env))
        hlc.update(2_000_000)
        assert hlc.logical_lead_us() == pytest.approx(2_000_001, abs=2)
        advance(env, 3.0)
        assert hlc.logical_lead_us() == 0

    @given(deps=st.lists(st.integers(min_value=0, max_value=10**9),
                         min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_1_and_2_hold_for_any_dependency_sequence(self, deps):
        """Alg. 2 line 5: outputs strictly increase and exceed every dep."""
        env = Environment(seed=7)
        hlc = HybridLogicalClock(PhysicalClock(env))
        last = 0
        for dep in deps:
            ts = hlc.update(dep)
            assert ts > dep      # Property 1 ingredient
            assert ts > last     # Property 2
            last = ts


class TestLamport:
    def test_tick_and_update(self):
        clock = LamportClock()
        assert clock.tick() == 1
        assert clock.update(10) == 11
        assert clock.update(3) == 12  # max rule
        assert clock.value == 12
