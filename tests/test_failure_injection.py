"""Tests for failure schedules, stragglers, and calibration semantics."""

import pytest

from repro.calibration import Calibration
from repro.clocks.ntp import NtpSynchronizer
from repro.clocks.physical import PhysicalClock
from repro.durability.wal import WriteAheadLog
from repro.sim import ConstantLatency, Environment, FailureSchedule, Network, \
    Process, Straggler
from repro.sim.disk import DiskModel


class Dummy(Process):
    pass


def test_schedule_crash_and_recover(env, net):
    proc = Dummy(env, "d")
    schedule = FailureSchedule(env)
    schedule.crash_at(1.0, proc).recover_at(2.0, proc)
    schedule.arm()
    env.run(until=1.5)
    assert proc.crashed
    env.run(until=2.5)
    assert not proc.crashed
    assert [label for _, label in schedule.log] == ["crash d", "recover d"]


def test_schedule_amnesia_crash_wipes_state(env, net):
    class Stateful(Dummy):
        def __init__(self, e):
            super().__init__(e, "s")
            self.counter = 7

        def _lose_state(self):
            self.counter = 0

    proc = Stateful(env)
    schedule = FailureSchedule(env)
    schedule.crash_at(1.0, proc, lose_state=True).recover_at(2.0, proc)
    schedule.arm()
    env.run(until=1.5)
    assert proc.crashed and proc.state_lost and proc.counter == 0
    env.run(until=2.5)
    assert not proc.crashed
    assert proc.state_lost          # recover alone never restores state
    assert [label for _, label in schedule.log] == \
        ["amnesia-crash s", "recover s"]


def test_schedule_custom_action(env):
    hits = []
    schedule = FailureSchedule(env)
    schedule.at(0.5, lambda: hits.append(env.now), "poke")
    schedule.arm()
    env.run(until=1.0)
    assert hits == [0.5]
    assert schedule.log == [(0.5, "poke")]


def test_straggler_mutates_and_restores_interval(env, net):
    class HostsInterval(Process):
        def __init__(self, e):
            super().__init__(e, "p")
            self.batch_interval = 0.001

    partition = HostsInterval(env)
    schedule = FailureSchedule(env)
    Straggler(partition, start=1.0, end=2.0,
              straggle_interval=0.5).arm(schedule)
    schedule.arm()
    env.run(until=1.5)
    assert partition.batch_interval == 0.5
    env.run(until=2.5)
    assert partition.batch_interval == 0.001


class _Interval:
    def __init__(self):
        self.name = "p"
        self.batch_interval = 0.001


def test_straggler_begin_is_idempotent():
    """A repeated begin must never save the straggle interval as the
    'original' — the classic double-begin bug that heals to the fault."""
    p = _Interval()
    s = Straggler(p, start=0.0, end=1.0, straggle_interval=0.5)
    s.begin()
    s.begin()
    assert p.batch_interval == 0.5
    s.heal()
    assert p.batch_interval == 0.001


def test_straggler_heal_is_idempotent_across_amnesia_recovery():
    """After a heal closes the window, a partition that re-initializes its
    own interval (amnesia crash + recovery) must not have the stale
    pre-crash value forced back by a second heal."""
    p = _Interval()
    s = Straggler(p, start=0.0, end=1.0, straggle_interval=0.5)
    s.begin()
    s.heal()
    p.batch_interval = 0.002      # re-initialized by recovery, not 0.001
    s.heal()
    assert p.batch_interval == 0.002


class _PairTB(Process):
    def __init__(self, env, name):
        super().__init__(env, name)
        self.got = []

    def on_ping(self, msg, src):
        self.got.append((self.now, msg.seq))


def _ping(seq):
    from tests.test_network_faults import Ping
    return Ping(seq)


class TestFaultDsl:
    """Each DSL verb must inject and (where paired) fully restore."""

    def test_partition_blocks_and_heal_restores(self, env, net):
        a, b = _PairTB(env, "a"), _PairTB(env, "b")
        fs = FailureSchedule(env)
        fs.partition_at(1.0, [a], [b]).heal_at(2.0, [a], [b])
        fs.arm()
        fs.at(0.5, lambda: env.network.send(a, b, _ping(0)), "t0")
        fs.at(1.5, lambda: env.network.send(a, b, _ping(1)), "t1")
        fs.at(1.5, lambda: env.network.send(b, a, _ping(2)), "t2")
        fs.at(2.5, lambda: env.network.send(a, b, _ping(3)), "t3")
        env.run(until=3.0)
        assert [s for _, s in b.got] == [0, 3]    # 1 dropped both ways
        assert [s for _, s in a.got] == []        # symmetric: 2 dropped too

    def test_asymmetric_partition_blocks_one_direction(self, env, net):
        a, b = _PairTB(env, "a"), _PairTB(env, "b")
        fs = FailureSchedule(env)
        fs.partition_at(1.0, [a], [b], symmetric=False)
        fs.arm()
        fs.at(1.5, lambda: env.network.send(a, b, _ping(1)), "t1")
        fs.at(1.5, lambda: env.network.send(b, a, _ping(2)), "t2")
        env.run(until=2.0)
        assert [s for _, s in b.got] == []        # a -> b cut
        assert [s for _, s in a.got] == [2]       # b -> a still up

    def test_gray_links_stretch_then_restore(self, env, net):
        a, b = _PairTB(env, "a"), _PairTB(env, "b")
        fs = FailureSchedule(env)
        fs.degrade_links_at(1.0, [(a, b)], extra_s=0.05)
        fs.restore_links_at(2.0, [(a, b)])
        fs.arm()
        fs.at(1.1, lambda: env.network.send(a, b, _ping(0)), "t0")
        fs.at(2.1, lambda: env.network.send(a, b, _ping(1)), "t1")
        env.run(until=3.0)
        (t_gray, _), (t_ok, _) = b.got
        assert t_gray == pytest.approx(1.1 + 0.0001 + 0.05)
        assert t_ok == pytest.approx(2.1 + 0.0001)

    def test_gray_disk_degrades_and_restores_fsync_cost(self, env):
        disk = DiskModel(fsync_latency_s=30e-6)
        healthy = disk.fsync_cost(128)
        fs = FailureSchedule(env)
        fs.degrade_disk_at(1.0, disk, factor=40.0)
        fs.restore_disk_at(2.0, disk)
        fs.arm()
        env.run(until=1.5)
        assert disk.fsync_cost(128) == pytest.approx(40.0 * healthy)
        env.run(until=2.5)
        assert disk.fsync_cost(128) == pytest.approx(healthy)

    def test_wal_fsync_fault_window(self, env):
        wal = WriteAheadLog("w", disk=DiskModel())
        fs = FailureSchedule(env)
        fs.wal_fail_fsyncs_at(1.0, wal, count=2)
        fs.arm()
        env.run(until=1.5)
        for attempt in range(3):
            wal.stage_op(attempt + 1, 0, attempt + 1, ("k", attempt))
            wal.commit()
        assert wal.fsync_failures == 2
        # staged records survived the failed commits; third attempt landed
        assert len(wal) == 3
        assert wal.staged == 0

    def test_clock_drift_changes_rate_without_retroactive_jump(self, env):
        clock = PhysicalClock(env, drift_ppm=0.0)
        fs = FailureSchedule(env)
        fs.clock_drift_at(1.0, clock, drift_ppm=1000.0, step_us=250.0)
        fs.arm()
        env.run(until=0.999)
        assert clock.skew_us() == pytest.approx(0.0, abs=1e-6)
        env.run(until=2.0)
        # phase step + one second of the new rate; the first second is not
        # retroactively re-rated
        assert clock.skew_us() == pytest.approx(250.0 + 1000.0, abs=2.0)

    def test_ntp_outage_skips_corrections_in_window(self, env):
        ntp = NtpSynchronizer(env, interval=0.25, residual_us=10.0)
        ntp.manage(PhysicalClock(env, drift_ppm=200.0))
        fs = FailureSchedule(env)
        fs.ntp_outage(1.0, 2.0, ntp)
        fs.arm()
        env.run(until=3.0)
        # outage window [1, 2) covers exactly the 1.0..1.75 ticks
        assert ntp.corrections_skipped == 4
        labels = [label for _, label in fs.log]
        assert labels == ["ntp-outage begin", "ntp-outage end"]


class TestCalibration:
    def test_cost_scales_overhead_does_not(self):
        cal = Calibration(scale=10.0)
        assert cal.cost("sequencer_request") == pytest.approx(208e-6)
        assert cal.overhead("eunomia_stab_round") == pytest.approx(10e-6)

    def test_scale_one_equalizes(self):
        cal = Calibration(scale=1.0)
        assert cal.cost("uplink_op") == cal.overhead("uplink_op")

    def test_throughput_scale(self):
        assert Calibration(scale=10.0).throughput_scale() == 10.0

    def test_unknown_cost_raises(self):
        with pytest.raises(AttributeError):
            Calibration().cost("made_up")
