"""Tests for failure schedules, stragglers, and calibration semantics."""

import pytest

from repro.calibration import Calibration
from repro.sim import ConstantLatency, Environment, FailureSchedule, Network, \
    Process, Straggler


class Dummy(Process):
    pass


def test_schedule_crash_and_recover(env, net):
    proc = Dummy(env, "d")
    schedule = FailureSchedule(env)
    schedule.crash_at(1.0, proc).recover_at(2.0, proc)
    schedule.arm()
    env.run(until=1.5)
    assert proc.crashed
    env.run(until=2.5)
    assert not proc.crashed
    assert [label for _, label in schedule.log] == ["crash d", "recover d"]


def test_schedule_amnesia_crash_wipes_state(env, net):
    class Stateful(Dummy):
        def __init__(self, e):
            super().__init__(e, "s")
            self.counter = 7

        def _lose_state(self):
            self.counter = 0

    proc = Stateful(env)
    schedule = FailureSchedule(env)
    schedule.crash_at(1.0, proc, lose_state=True).recover_at(2.0, proc)
    schedule.arm()
    env.run(until=1.5)
    assert proc.crashed and proc.state_lost and proc.counter == 0
    env.run(until=2.5)
    assert not proc.crashed
    assert proc.state_lost          # recover alone never restores state
    assert [label for _, label in schedule.log] == \
        ["amnesia-crash s", "recover s"]


def test_schedule_custom_action(env):
    hits = []
    schedule = FailureSchedule(env)
    schedule.at(0.5, lambda: hits.append(env.now), "poke")
    schedule.arm()
    env.run(until=1.0)
    assert hits == [0.5]
    assert schedule.log == [(0.5, "poke")]


def test_straggler_mutates_and_restores_interval(env, net):
    class HostsInterval(Process):
        def __init__(self, e):
            super().__init__(e, "p")
            self.batch_interval = 0.001

    partition = HostsInterval(env)
    schedule = FailureSchedule(env)
    Straggler(partition, start=1.0, end=2.0,
              straggle_interval=0.5).arm(schedule)
    schedule.arm()
    env.run(until=1.5)
    assert partition.batch_interval == 0.5
    env.run(until=2.5)
    assert partition.batch_interval == 0.001


class TestCalibration:
    def test_cost_scales_overhead_does_not(self):
        cal = Calibration(scale=10.0)
        assert cal.cost("sequencer_request") == pytest.approx(208e-6)
        assert cal.overhead("eunomia_stab_round") == pytest.approx(10e-6)

    def test_scale_one_equalizes(self):
        cal = Calibration(scale=1.0)
        assert cal.cost("uplink_op") == cal.overhead("uplink_op")

    def test_throughput_scale(self):
        assert Calibration(scale=10.0).throughput_scale() == 10.0

    def test_unknown_cost_raises(self):
        with pytest.raises(AttributeError):
            Calibration().cost("made_up")
