"""Tests for the Eunomia service (Algorithm 3) and the partition uplink."""

import pytest

from repro.core import EunomiaConfig, EunomiaService
from repro.core.messages import AddOpBatch, PartitionHeartbeat
from repro.kvstore.types import Update
from repro.metrics import MetricsHub
from repro.sim import ConstantLatency, Environment, Network, Process


def make_op(ts, partition=0, seq=None, dc=0):
    return Update(key=f"k{ts}", value=None, origin_dc=dc,
                  partition_index=partition, seq=seq if seq is not None else ts,
                  ts=ts, vts=(ts,), commit_time=0.0)


class Sink(Process):
    def __init__(self, env):
        super().__init__(env, "sink", site=1)
        self.batches = []

    def on_remote_stable_batch(self, msg, src):
        self.batches.append(msg)

    @property
    def ops(self):
        return [op for batch in self.batches for op in batch.ops]


@pytest.fixture
def service_env():
    env = Environment(seed=5)
    Network(env, ConstantLatency(0.0001))
    config = EunomiaConfig(stabilization_interval=0.01)
    service = EunomiaService(env, "eunomia", 0, n_partitions=3, config=config,
                             metrics=MetricsHub())
    sink = Sink(env)
    service.add_destination(sink)
    service.start()
    return env, service, sink


class Feeder(Process):
    """Driver that injects batches/heartbeats into the service."""

    def __init__(self, env):
        super().__init__(env, "feeder")


def test_stable_time_is_min_partition_time(service_env):
    env, service, sink = service_env
    feeder = Feeder(env)
    feeder.send(service, AddOpBatch(0, (make_op(100, 0),)))
    feeder.send(service, AddOpBatch(1, (make_op(200, 1),)))
    # partition 2 silent: PartitionTime[2] == 0, nothing stabilizes
    env.run(until=0.1)
    assert service.stable_time == 0
    assert sink.ops == []
    feeder.send(service, PartitionHeartbeat(2, 150))
    env.run(until=0.2)
    # min(PartitionTime) = min(100, 200, 150) = 100
    assert service.stable_time == 100
    assert [op.ts for op in sink.ops] == [100]


def test_ops_emitted_in_timestamp_order(service_env):
    env, service, sink = service_env
    feeder = Feeder(env)
    feeder.send(service, AddOpBatch(0, (make_op(10, 0, 1), make_op(30, 0, 2))))
    feeder.send(service, AddOpBatch(1, (make_op(20, 1, 1), make_op(40, 1, 2))))
    feeder.send(service, AddOpBatch(2, (make_op(50, 2, 1),)))
    env.run(until=0.1)
    assert [op.ts for op in sink.ops] == [10, 20, 30]
    assert service.stable_time == 30  # min(30, 40, 50)


def test_equal_timestamps_break_ties_by_partition(service_env):
    env, service, sink = service_env
    feeder = Feeder(env)
    feeder.send(service, AddOpBatch(1, (make_op(10, 1),)))
    feeder.send(service, AddOpBatch(0, (make_op(10, 0),)))
    feeder.send(service, AddOpBatch(2, (make_op(10, 2),)))
    env.run(until=0.1)
    assert [(op.ts, op.partition_index) for op in sink.ops] == [
        (10, 0), (10, 1), (10, 2)]


def test_duplicate_ops_are_filtered(service_env):
    env, service, sink = service_env
    feeder = Feeder(env)
    batch = AddOpBatch(0, (make_op(10, 0, 1), make_op(20, 0, 2)))
    feeder.send(service, batch)
    feeder.send(service, batch)  # at-least-once duplicate
    feeder.send(service, AddOpBatch(1, (make_op(99, 1),)))
    feeder.send(service, AddOpBatch(2, (make_op(99, 2),)))
    env.run(until=0.1)
    assert [op.ts for op in sink.ops] == [10, 20]
    assert service.buffer.total_added == 4  # 2 + the two 99s


def test_heartbeat_never_regresses_partition_time(service_env):
    env, service, _ = service_env
    feeder = Feeder(env)
    feeder.send(service, PartitionHeartbeat(0, 500))
    feeder.send(service, PartitionHeartbeat(0, 400))  # stale
    env.run(until=0.05)
    assert service.partition_time[0] == 500


def test_stabilization_marks_throughput(service_env):
    env, service, sink = service_env
    feeder = Feeder(env)
    for p in range(3):
        feeder.send(service, AddOpBatch(p, (make_op(10 + p, p),)))
    env.run(until=0.1)
    marks = service.metrics.mark_times(service.stable_mark)
    assert len(marks) == len(sink.ops) == 1  # only min is stable


def test_batch_cost_skips_duplicate_prefix():
    env = Environment(seed=1)
    Network(env, ConstantLatency(0.0001))
    config = EunomiaConfig()
    service = EunomiaService(env, "e", 0, 1, config,
                             insert_op_cost=1.0, batch_cost=0.5)
    ops = tuple(make_op(t, 0, t) for t in (1, 2, 3, 4))
    assert service._batch_cost_of(AddOpBatch(0, ops)) == pytest.approx(4.5)
    service.partition_time[0] = 2
    assert service._batch_cost_of(AddOpBatch(0, ops)) == pytest.approx(2.5)
    service.partition_time[0] = 100
    assert service._batch_cost_of(AddOpBatch(0, ops)) == pytest.approx(0.5)


def test_multiple_destinations_each_get_the_stream():
    env = Environment(seed=2)
    Network(env, ConstantLatency(0.0001))
    service = EunomiaService(env, "e", 0, 1,
                             EunomiaConfig(stabilization_interval=0.01))
    sinks = [Sink(env), Sink(env)]
    for sink in sinks:
        service.add_destination(sink)
    service.start()
    feeder = Feeder(env)
    feeder.send(service, AddOpBatch(0, (make_op(5),)))
    env.run(until=0.05)
    assert [op.ts for op in sinks[0].ops] == [5]
    assert [op.ts for op in sinks[1].ops] == [5]
