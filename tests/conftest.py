"""Shared fixtures: tiny environments, networks, and deployments."""

from __future__ import annotations

import pytest

from repro.calibration import Calibration
from repro.core.config import EunomiaConfig
from repro.geo.system import GeoSystemSpec
from repro.metrics import MetricsHub
from repro.sim import ConstantLatency, Environment, Network
from repro.workload import WorkloadSpec


@pytest.fixture
def env():
    """A fresh deterministic environment."""
    return Environment(seed=1234)


@pytest.fixture
def net(env):
    """A zero-ish latency network attached to ``env``."""
    return Network(env, ConstantLatency(0.0001))


@pytest.fixture
def metrics():
    return MetricsHub()


@pytest.fixture
def small_spec():
    """A 3-DC deployment small enough for fast integration tests."""
    return GeoSystemSpec(n_dcs=3, partitions_per_dc=2, clients_per_dc=3,
                         seed=99)


@pytest.fixture
def small_workload():
    return WorkloadSpec(read_ratio=0.8, n_keys=64)


@pytest.fixture
def config():
    return EunomiaConfig()


@pytest.fixture
def calibration():
    return Calibration()
